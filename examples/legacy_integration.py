"""Integrating a legacy SQL database as a virtual-contributor.

Section 4: "Since a virtual-contributor database only needs to be able to
answer queries, its role can be played by all kinds of DBMS, including
legacy systems that do not have active database capabilities."

Here a hospital's active patient registry (in-memory, announces updates)
is integrated with a legacy billing system (SQLite).  Two export relations
demonstrate the classification rules:

* ``directory`` — materialized, derived from the registry only;
* ``balances`` — a FULLY VIRTUAL join of registry and billing data.

Because nothing materialized depends on billing, the mediator classifies
it as a *virtual-contributor*: it is never asked to announce anything, and
every balance query is compiled to SQL and executed inside SQLite on
demand.  The registry, feeding both the materialized directory and the
virtual balances, is a *hybrid-contributor*.

Run:  python examples/legacy_integration.py
"""

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.relalg import Attribute, RelationSchema
from repro.sources import MemorySource, SQLiteSource, compile_expression

PATIENTS = RelationSchema(
    "patients",
    (
        Attribute("patient_id", "int"),
        Attribute("name", "str"),
        Attribute("ward", "str"),
    ),
    key=("patient_id",),
)
INVOICES = RelationSchema(
    "invoices",
    (
        Attribute("invoice_id", "int"),
        Attribute("pid", "int"),
        Attribute("amount", "int"),
        Attribute("status", "str"),
    ),
    key=("invoice_id",),
)

VIEWS = {
    "patients_p": "patients",
    "open_invoices": "project[pid, amount](select[status = 'open'](invoices))",
    "directory": "project[patient_id, name, ward](patients_p)",
    "balances": (
        "project[patient_id, name, amount]"
        "(patients_p join[patient_id = pid] open_invoices)"
    ),
}

ANNOTATION = {
    "patients_p": "materialized",
    "directory": "materialized",
    "open_invoices": "virtual",
    "balances": "virtual",
}


def main() -> None:
    registry = MemorySource(
        "registry",
        [PATIENTS],
        initial={
            "patients": [
                (1, "ada", "west"),
                (2, "grace", "east"),
                (3, "alan", "west"),
            ]
        },
    )
    billing = SQLiteSource(
        "billing",
        [INVOICES],
        initial={
            "invoices": [
                (100, 1, 250, "open"),
                (101, 1, 80, "paid"),
                (102, 2, 40, "open"),
                (103, 3, 900, "open"),
                (104, 3, 120, "open"),
            ]
        },
    )

    vdp = build_vdp(
        source_schemas={"patients": PATIENTS, "invoices": INVOICES},
        source_of={"patients": "registry", "invoices": "billing"},
        views=VIEWS,
        exports=["directory", "balances"],
    )
    # Build annotations explicitly (keyword forms live in the spec language).
    from repro.core import Annotation

    overrides = {}
    for name, keyword in ANNOTATION.items():
        attrs = vdp.node(name).schema.attribute_names
        overrides[name] = (
            Annotation.all_materialized(attrs)
            if keyword == "materialized"
            else Annotation.all_virtual(attrs)
        )
    annotated = annotate(vdp, overrides)
    mediator = SquirrelMediator(annotated, {"registry": registry, "billing": billing})
    mediator.initialize()

    kinds = {k: str(v) for k, v in mediator.contributor_kinds.items()}
    print("Contributors:", kinds)
    assert kinds["billing"] == "virtual-contributor"

    # Show the SQL the legacy system actually receives for a poll.
    poll_expr = vdp.node("open_invoices").definition
    sql, params = compile_expression(poll_expr, {"invoices": INVOICES})
    print("\nSQL pushed to the legacy DB:\n ", sql, params)

    # Directory query: materialized, zero polls.
    mediator.reset_stats()
    west = mediator.query("project[patient_id, name](select[ward = 'west'](directory))")
    print("\nwest-ward patients:", west.to_sorted_list(), "| polls:", mediator.vap.stats.polls)

    # Balance query: fully virtual — one SQLite poll, fresh numbers.
    owed = mediator.query("project[patient_id, amount](balances)")
    per_patient = {}
    for r, n in owed.items():
        per_patient[r["patient_id"]] = per_patient.get(r["patient_id"], 0) + r["amount"] * n
    print("open balances:", dict(sorted(per_patient.items())), "| polls:", mediator.vap.stats.polls)

    # The legacy side settles an invoice.  No announcement machinery exists
    # or is needed: the next balance query simply sees the new state.
    billing.update(
        "invoices",
        {"invoice_id": 103, "pid": 3, "amount": 900, "status": "open"},
        {"invoice_id": 103, "pid": 3, "amount": 900, "status": "paid"},
    )
    owed = mediator.query("project[patient_id, amount](balances)")
    total = sum(r["amount"] * n for r, n in owed.items())
    print("after settlement, total open:", total)
    assert total == 250 + 40 + 120

    # The registry side announces; the materialized directory is maintained
    # incrementally while billing stays poll-only.
    registry.insert("patients", patient_id=4, name="edsger", ward="east")
    mediator.refresh()
    print(
        "directory now:",
        sorted(r["name"] for r, _ in mediator.query("project[name](directory)").items()),
    )
    print("billing announcements ever requested:", billing.query_count > 0 and "none (polled only)")

    billing.close()


if __name__ == "__main__":
    main()
