"""A simulated day of integration, with mechanized Theorems 7.1 / 7.2.

Runs the Figure 1 mediator inside the discrete-event environment: sources
commit on their own schedules, announcements take real (simulated) time,
the mediator flushes its queue periodically, and analysts query the view
throughout.  Afterwards the Section 3 checkers verify the recorded trace:

* consistency — a ``reflect`` function exists (Theorem 7.1);
* freshness — achieved staleness stays within the analytic Theorem 7.2
  bound computed from the configured delays.

Run:  python examples/simulated_day.py
"""

import random

from repro.core import annotate
from repro.correctness import check_consistency, check_freshness, view_function_from_vdp
from repro.deltas import SetDelta
from repro.relalg import row
from repro.runtime import SimulatedEnvironment
from repro.sim import DelayProfile, EnvironmentDelays
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp

HORIZON = 120.0  # "one day" of simulated minutes


def main() -> None:
    delays = EnvironmentDelays(
        {
            "db1": DelayProfile(ann_delay=2.0, comm_delay=0.5, q_proc_delay=0.2),
            "db2": DelayProfile(ann_delay=10.0, comm_delay=1.0, q_proc_delay=0.2),
        },
        u_hold_delay_med=5.0,   # queue flushed every 5 minutes
        u_proc_delay_med=0.1,
        q_proc_delay_med=0.1,
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    sources = figure1_sources(r_rows=40, s_rows=20, seed=99)
    env = SimulatedEnvironment(annotated, sources, delays)

    rng = random.Random(1234)
    s_keys = sorted(
        r["s1"] for r in sources["db2"].relation("S").rows() if r["s3"] < 50
    )
    for k in range(15):
        t = rng.uniform(1.0, HORIZON - 20)
        delta = SetDelta()
        delta.insert(
            "R",
            row(r1=10_000 + k, r2=s_keys[k % len(s_keys)], r3=rng.randrange(500), r4=100),
        )
        env.schedule_transaction(t, "db1", delta)
    for k in range(4):
        t = rng.uniform(5.0, HORIZON - 20)
        delta = SetDelta()
        delta.insert("S", row(s1=500 + k, s2=rng.randrange(100), s3=5))
        env.schedule_transaction(t, "db2", delta)
    for q in range(12):
        env.schedule_query(rng.uniform(2.0, HORIZON - 1))

    env.run_until(HORIZON)
    print(
        f"simulated {HORIZON:.0f} min: {env.sim.events_processed} events, "
        f"{env.mediator.iup.stats.transactions} update transactions, "
        f"{len(env.trace.view_history())} recorded view states"
    )

    view_fn = view_function_from_vdp(env.mediator.vdp)
    verdict = check_consistency(env.trace, view_fn)
    print(f"\nTheorem 7.1 — consistency: {verdict}")
    if verdict.reflect:
        sample = verdict.reflect[len(verdict.reflect) // 2]
        mid_time = env.trace.view_history()[len(verdict.reflect) // 2].time
        print(f"  e.g. reflect({mid_time:.1f}) = {sample}")

    bound = delays.freshness_bound(materialized=["db1", "db2"], hybrid=[], virtual=[])
    report = check_freshness(env.trace, view_fn, bound)
    print("\nTheorem 7.2 — freshness:")
    for source in sorted(bound):
        print(
            f"  {source}: worst achieved staleness {report.worst[source]:6.2f} "
            f"<= bound {bound[source]:6.2f}   "
            f"(headroom {report.headroom()[source]:.2f})"
        )
    print("  within bound:", report.within_bound)


if __name__ == "__main__":
    main()
