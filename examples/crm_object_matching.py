"""Object matching across two CRMs — the [ZHKF95] companion in action.

Two customer databases describe overlapping people with different keys and
messy formatting.  A :class:`MatchRule` (name casefolded, phone reduced to
digits) drives a :class:`MatchingEngine` whose match table becomes a third
source relation; a Squirrel mediator joins both CRMs *through* it into a
unified customer view that stays maintained as either CRM changes.

Run:  python examples/crm_object_matching.py
"""

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.matching import (
    MatchCriterion,
    MatchRule,
    MatchingEngine,
    casefold_trim,
    digits_only,
)
from repro.relalg import make_schema
from repro.sources import MemorySource

CUSTOMERS = make_schema("customers", ["cid", "name", "phone", "tier"], key=["cid"])
CLIENTS = make_schema("clients", ["clid", "fullname", "tel", "spend"], key=["clid"])


def main() -> None:
    acquired = MemorySource(
        "acquired_crm",
        [CUSTOMERS],
        initial={
            "customers": [
                (1, "Ada Lovelace", "+1 (303) 555-0101", "gold"),
                (2, "Grace Hopper", "303-555-0202", "silver"),
                (3, "Alan Turing", "303.555.0303", "gold"),
            ]
        },
    )
    house = MemorySource(
        "house_crm",
        [CLIENTS],
        initial={
            "clients": [
                (901, "ada   lovelace", "+1 303 555 0101", 1200),
                (902, "GRACE HOPPER", "303 555 0202", 340),
                (903, "Edsger Dijkstra", "303 555 0404", 75),
            ]
        },
    )

    rule = MatchRule(
        "cust_match",
        "customers",
        "clients",
        (
            MatchCriterion("name", "fullname", casefold_trim),
            MatchCriterion("phone", "tel", digits_only),
        ),
        left_keys=("cid",),
        right_keys=("clid",),
    )
    engine = MatchingEngine([rule], acquired, house)
    print("initial match table:", engine.match_table("cust_match").to_sorted_list())

    vdp = build_vdp(
        source_schemas={
            "customers": CUSTOMERS,
            "clients": CLIENTS,
            "cust_match": rule.schema(),
        },
        source_of={
            "customers": "acquired_crm",
            "clients": "house_crm",
            "cust_match": "matcher",
        },
        views={
            "cust_p": "customers",
            "cli_p": "clients",
            "match_p": "cust_match",
            "golden": (
                "project[cid, clid, name, tier, spend]"
                "((cust_p join[cid = l_cid] match_p) join[r_clid = clid] cli_p)"
            ),
        },
        exports=["golden"],
    )
    mediator = SquirrelMediator(
        annotate(vdp, {"golden": "[cid^m, clid^m, name^m, tier^m, spend^v]"}),
        {"acquired_crm": acquired, "house_crm": house, "matcher": engine.source},
    )
    mediator.initialize()

    print("\ngolden records (materialized columns):")
    for values, _ in mediator.query("project[cid, clid, name, tier](golden)").to_sorted_list():
        print("  ", values)

    # Alan appears in the house CRM with messy formatting: the engine pairs
    # him automatically and the mediator's next refresh unifies him.
    house.insert("clients", clid=904, fullname="  alan TURING ", tel="(303) 555-0303", spend=980)
    mediator.refresh()
    print("\nafter the house CRM learns about Alan:")
    for values, _ in mediator.query("project[cid, clid, name, tier](golden)").to_sorted_list():
        print("  ", values)

    # Spend (virtual) is fetched on demand from the house CRM.
    spends = mediator.query("project[name, spend](golden)")
    print("\nspend by matched customer:")
    for (name, spend), _ in spends.to_sorted_list():
        print(f"   {name}: {spend}")


if __name__ == "__main__":
    main()
