"""Quickstart: the paper's Figure 1 view, end to end.

Builds the Squirrel mediator of Examples 2.1-2.3 from a textual spec,
queries it, pushes updates through the incremental pipeline, and shows how
the same VDP supports materialized, virtual, and hybrid annotations.

Run:  python examples/quickstart.py
"""

from repro import generate_mediator, make_sources

SPEC = """
# Two autonomous sources (Figure 1).
source db1 {
    relation R(r1: int key, r2: int, r3: int, r4: int)
}
source db2 {
    relation S(s1: int key, s2: int, s3: int)
}

# The View Decomposition Plan: two leaf-parents and the export T.
view R_p = project[r1, r2, r3](select[r4 = 100](R))
view S_p = project[s1, s2](select[s3 < 50](S))
export T = project[r1, r3, s1, s2](R_p join[r2 = s1] S_p)

# Example 2.3's hybrid annotation: r1/s1 materialized, r3/s2 virtual,
# both auxiliaries fully virtual.
annotate T [r1^m, r3^v, s1^m, s2^v]
annotate R_p virtual
annotate S_p virtual
"""


def main() -> None:
    sources = make_sources(
        SPEC,
        initial={
            "db1": {"R": [(1, 10, 7, 100), (2, 20, 8, 100), (3, 10, 9, 999)]},
            "db2": {"S": [(10, 42, 5), (20, 43, 99), (30, 44, 7)]},
        },
    )
    mediator = generate_mediator(SPEC, sources)

    print("Annotated VDP:")
    print(mediator.annotated.describe())
    print()
    print("Contributor kinds:", {k: str(v) for k, v in mediator.contributor_kinds.items()})
    print()

    # A query over materialized attributes: served from the local store.
    answer = mediator.query("project[r1, s1](T)")
    print("π_{r1,s1}(T) =", answer.to_sorted_list())
    print("  polls so far:", mediator.vap.stats.polls)

    # A query touching virtual attributes: the VAP builds a temporary
    # relation, here via the key-based construction of Example 2.3.
    answer = mediator.query("project[r3, s1](select[r3 < 100](T))")
    print("π_{r3,s1} σ_{r3<100}(T) =", answer.to_sorted_list())
    print(
        "  polls:", mediator.vap.stats.polls,
        "| key-based constructions:", mediator.vap.stats.key_based_used,
    )

    # Sources keep changing; the mediator ingests net deltas incrementally.
    sources["db1"].insert("R", r1=4, r2=30, r3=5, r4=100)
    sources["db2"].delete("S", s1=10, s2=42, s3=5)
    result = mediator.refresh()
    print()
    print(
        f"refresh: {result.flushed_messages} messages, "
        f"{result.rules_fired} rules fired, nodes {list(result.processed_nodes)}"
    )
    print("π_{r1,s1}(T) =", mediator.query("project[r1, s1](T)").to_sorted_list())


if __name__ == "__main__":
    main()
