"""Brokerage portfolio integration — the hybrid approach paying off.

The motivating workload class from the paper's introduction: an integrated
view over sources with very different change rates.

* ``market`` — a ticker feed whose quotes change constantly.  Continuously
  maintaining a materialized copy would be wasted work (Example 2.2's
  regime), so its leaf-parent is kept VIRTUAL.
* ``accounts`` — customer holdings that change rarely; MATERIALIZED.

The export ``portfolio(account, symbol, shares, price)`` is hybrid: the
slow-moving columns are materialized, the live ``price`` column is virtual
and fetched on demand.  The Section 5.3 planner is asked to confirm the
hand-picked annotation from measured workload statistics.

Run:  python examples/brokerage_portfolio.py
"""

import random

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.planner import WorkloadProfile, node_statistics, suggest_annotation
from repro.relalg import Attribute, RelationSchema
from repro.sources import MemorySource
from repro.workloads import UpdateStream, choice_of, uniform_int

SYMBOLS = ["AAA", "BBB", "CCC", "DDD", "EEE", "FFF"]

QUOTES = RelationSchema(
    "quotes", (Attribute("symbol", "str"), Attribute("price", "int")), key=("symbol",)
)
HOLDINGS = RelationSchema(
    "holdings",
    (
        Attribute("account", "int"),
        Attribute("sym", "str"),
        Attribute("shares", "int"),
    ),
    key=("account", "sym"),
)

VIEWS = {
    "quotes_p": "quotes",
    "holdings_p": "select[shares > 0](holdings)",
    "portfolio": (
        "project[account, sym, shares, price]"
        "(holdings_p join[sym = symbol] quotes_p)"
    ),
}

ANNOTATION = {
    "quotes_p": "[symbol^v, price^v]",            # live feed: never copied
    "portfolio": "[account^m, sym^m, shares^m, price^v]",
}


def build() -> tuple:
    rng = random.Random(2024)
    market = MemorySource(
        "market",
        [QUOTES],
        initial={"quotes": [(s, rng.randrange(50, 500)) for s in SYMBOLS]},
    )
    accounts = MemorySource(
        "accounts",
        [HOLDINGS],
        initial={
            "holdings": [
                (acct, rng.choice(SYMBOLS), rng.randrange(1, 100))
                for acct in range(1, 9)
            ]
        },
    )
    vdp = build_vdp(
        source_schemas={"quotes": QUOTES, "holdings": HOLDINGS},
        source_of={"quotes": "market", "holdings": "accounts"},
        views=VIEWS,
        exports=["portfolio"],
    )
    annotated = annotate(vdp, ANNOTATION)
    mediator = SquirrelMediator(annotated, {"market": market, "accounts": accounts})
    mediator.initialize()
    return mediator, market, accounts, vdp


def main() -> None:
    mediator, market, accounts, vdp = build()
    print("Contributors:", {k: str(v) for k, v in mediator.contributor_kinds.items()})

    # Positions (materialized attributes): answered with zero polls.
    mediator.reset_stats()
    positions = mediator.query("project[account, sym, shares](portfolio)")
    print(f"\n{positions.cardinality()} positions, polls used: {mediator.vap.stats.polls}")

    # A market tick storm: the mediator does NOT chase the feed.
    rng = random.Random(7)
    ticker = UpdateStream(
        market,
        "quotes",
        policies={"symbol": choice_of(SYMBOLS), "price": uniform_int(50, 500)},
        rng=rng,
        insert_weight=0.0,
        delete_weight=0.0,
        modify_weight=1.0,
    )
    ticker.run(500)
    print(f"\n500 market ticks committed; mediator rules fired: {mediator.iup.stats.rules_fired}")

    # Valuation (virtual price): one poll of the feed, fresh numbers.
    mediator.reset_stats()
    valued = mediator.query(
        "project[account, sym, shares, price](portfolio)"
    )
    total = sum(r["shares"] * r["price"] * n for r, n in valued.items())
    print(
        f"valuation over {valued.cardinality()} rows = {total} "
        f"(polls: {mediator.vap.stats.polls}, polled rows: {mediator.vap.stats.polled_rows})"
    )

    # A holdings change is rare and IS worth propagating eagerly.
    accounts.insert("holdings", account=9, sym="AAA", shares=10)
    mediator.refresh()
    print(
        "\nafter new account holding:",
        mediator.query(
            "project[account, shares](select[account = 9](portfolio))"
        ).to_sorted_list(),
    )

    # Ask the planner to confirm the annotation from workload numbers.
    profile = WorkloadProfile(
        update_rates={"market": 500.0, "accounts": 0.5},
        query_rate=2.0,
        attr_access={
            ("portfolio", "account"): 1.0,
            ("portfolio", "sym"): 1.0,
            ("portfolio", "shares"): 1.0,
            ("portfolio", "price"): 0.1,
        },
    )
    suggested = suggest_annotation(vdp, profile)
    print("\nPlanner-suggested annotation:")
    print(suggested.describe())


if __name__ == "__main__":
    main()
