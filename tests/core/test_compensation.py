"""Unit tests for the Eager Compensation Algorithm and source links."""

import pytest

from repro.core import DirectLink, compensate
from repro.deltas import SetDelta
from repro.relalg import (
    BagRelation,
    Scan,
    Select,
    Project,
    evaluate,
    lt,
    make_schema,
    row,
    scan,
)
from repro.sources import MemorySource

R = make_schema("R", ["a", "b"], key=["a"])


def make_query_expr():
    return Project(Select(Scan("R"), lt("b", 100)), ("a", "b"))


def test_compensate_rewinds_inserts_and_deletes():
    # Current source state (what the poll returned)...
    current = BagRelation.from_values(R, [(1, 10), (3, 30)])
    # ...reached from the reflected state by: insert (3,30), delete (2,20).
    d = SetDelta()
    d.insert("R", row(a=3, b=30))
    d.delete("R", row(a=2, b=20))

    rewound = compensate(current, "T", make_query_expr(), "R", R, [d])
    assert rewound.to_sorted_list() == [((1, 10), 1), ((2, 20), 1)]


def test_compensate_pushes_through_selection():
    # The deleted row fails the poll query's selection: compensation must
    # NOT resurrect it into the filtered answer.
    current = BagRelation.from_values(R, [(1, 10)])
    d = SetDelta()
    d.delete("R", row(a=2, b=500))  # b >= 100: outside the polled window
    rewound = compensate(current, "T", make_query_expr(), "R", R, [d])
    assert rewound.to_sorted_list() == [((1, 10), 1)]


def test_compensate_noop_without_deltas():
    current = BagRelation.from_values(R, [(1, 10)])
    assert compensate(current, "T", make_query_expr(), "R", R, []) == current


def test_compensate_multiple_deltas_in_order():
    current = BagRelation.from_values(R, [(1, 11)])
    d1 = SetDelta()
    d1.delete("R", row(a=1, b=10))
    d1.insert("R", row(a=1, b=11))
    d2 = SetDelta()
    d2.delete("R", row(a=2, b=20))
    rewound = compensate(current, "T", make_query_expr(), "R", R, [d1, d2])
    assert rewound.to_sorted_list() == [((1, 10), 1), ((2, 20), 1)]


def test_direct_link_flush_before_answer():
    source = MemorySource("db", [R], initial={"R": [(1, 10)]})
    delivered = []
    link = DirectLink(source, announcement_sink=lambda n, d, **kw: delivered.append((n, d)))
    source.insert("R", a=2, b=20)
    answers = link.poll_many({"Q": scan("R")})
    # The pending announcement reached the sink BEFORE the answer was built,
    # and the answer includes the committed row.
    assert len(delivered) == 1
    assert delivered[0][0] == "db"
    assert answers["Q"].contains(row(a=2, b=20))
    assert link.poll_count == 1
    assert link.polled_rows == 2


def test_direct_link_virtual_contributor_drops_announcements():
    source = MemorySource("db", [R], initial={"R": [(1, 10)]})
    delivered = []
    link = DirectLink(
        source, announcement_sink=lambda n, d, **kw: delivered.append((n, d)), announces=False
    )
    source.insert("R", a=2, b=20)
    link.poll_many({"Q": scan("R")})
    assert delivered == []
    assert not source.has_pending_announcement()  # drained, not delivered


def test_direct_link_single_snapshot_for_many_queries():
    source = MemorySource("db", [R], initial={"R": [(1, 10), (2, 200)]})
    link = DirectLink(source)
    answers = link.poll_many(
        {
            "small": scan("R").select(lt("b", 100)),
            "all": scan("R"),
        }
    )
    assert answers["small"].cardinality() == 1
    assert answers["all"].cardinality() == 2
    # One poll round-trip, two queries answered against one snapshot.
    assert link.poll_count == 1
