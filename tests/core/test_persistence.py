"""Tests for mediator snapshot / warm-restart persistence."""

import pytest

from repro.core import annotate
from repro.core.persistence import restore_mediator, save_mediator
from repro.correctness import assert_view_correct
from repro.errors import MediatorError
from repro.workloads import (
    FIGURE1_ANNOTATIONS,
    figure1_mediator,
    figure1_vdp,
    figure4_mediator,
    figure4_vdp,
)


def snapshot_path(tmp_path):
    return str(tmp_path / "mediator.snapshot")


@pytest.mark.parametrize("example", ["ex21", "ex23"])
def test_save_and_restore_roundtrip(tmp_path, example):
    mediator, sources = figure1_mediator(example, seed=91)
    path = snapshot_path(tmp_path)
    written = save_mediator(mediator, path)
    assert written > 0

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS[example])
    restored = restore_mediator(annotated, sources, path)
    assert restored.query_relation("T") == mediator.query_relation("T")
    assert_view_correct(restored)


def test_restore_catches_up_from_source_logs(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=92)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)

    # The mediator "goes down"; sources keep committing.
    sources["db1"].insert("R", r1=95_001, r2=1, r3=1, r4=100)
    sources["db2"].insert("S", s1=1, s2=5, s3=5)
    sources["db1"].insert("R", r1=95_002, r2=2, r3=2, r4=100)
    sources["db1"].delete("R", r1=95_002, r2=2, r3=2, r4=100)  # nets away

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    restored = restore_mediator(annotated, sources, path)
    assert_view_correct(restored)
    # The restart replayed only the missed updates, not a full reload.
    assert restored.iup.stats.transactions == 1


def test_restore_does_not_double_apply_pending_announcements(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=93)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    sources["db1"].insert("R", r1=96_000, r2=1, r3=1, r4=100)

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    restored = restore_mediator(annotated, sources, path)
    assert_view_correct(restored)
    # A later refresh finds nothing new to deliver.
    result = restored.refresh()
    assert result.flushed_messages == 0
    assert_view_correct(restored)


def test_save_requires_quiescence(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=94)
    sources["db1"].insert("R", r1=97_000, r2=1, r3=1, r4=100)
    with pytest.raises(MediatorError):
        save_mediator(mediator, snapshot_path(tmp_path))
    mediator.collect_announcements()
    with pytest.raises(MediatorError):  # queued but unprocessed
        save_mediator(mediator, snapshot_path(tmp_path))
    mediator.run_update_transaction()
    save_mediator(mediator, snapshot_path(tmp_path))


def test_restore_rejects_annotation_mismatch(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=95)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    other = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex23"])
    with pytest.raises(MediatorError):
        restore_mediator(other, sources, path)


def test_restore_with_set_nodes(tmp_path):
    mediator, sources = figure4_mediator("paper", seed=96)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    sources["dbC"].insert("C", c1=900, c2=3)
    annotated = annotate(
        figure4_vdp(),
        {"B_p": "[b1^v, b2^v]", "E": "[a1^m, a2^v, b1^m]", "F": "[a1^v, b1^v]"},
    )
    restored = restore_mediator(annotated, sources, path)
    assert_view_correct(restored)
