"""Tests for mediator snapshot / warm-restart persistence."""

import pytest

from repro.core import annotate
from repro.core.persistence import restore_mediator, save_mediator
from repro.correctness import assert_view_correct
from repro.errors import MediatorError, OrphanStateError
from repro.generator import (
    build_annotated_from_spec,
    generate_mediator,
    make_federation,
    make_sources,
)
from repro.workloads import (
    FIGURE1_ANNOTATIONS,
    figure1_mediator,
    figure1_vdp,
    figure4_mediator,
    figure4_vdp,
    union_mediator,
    union_vdp,
)


def snapshot_path(tmp_path):
    return str(tmp_path / "mediator.snapshot")


@pytest.mark.parametrize("example", ["ex21", "ex23"])
def test_save_and_restore_roundtrip(tmp_path, example):
    mediator, sources = figure1_mediator(example, seed=91)
    path = snapshot_path(tmp_path)
    written = save_mediator(mediator, path)
    assert written > 0

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS[example])
    restored = restore_mediator(annotated, sources, path)
    assert restored.query_relation("T") == mediator.query_relation("T")
    assert_view_correct(restored)


def test_restore_catches_up_from_source_logs(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=92)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)

    # The mediator "goes down"; sources keep committing.
    sources["db1"].insert("R", r1=95_001, r2=1, r3=1, r4=100)
    sources["db2"].insert("S", s1=1, s2=5, s3=5)
    sources["db1"].insert("R", r1=95_002, r2=2, r3=2, r4=100)
    sources["db1"].delete("R", r1=95_002, r2=2, r3=2, r4=100)  # nets away

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    restored = restore_mediator(annotated, sources, path)
    assert_view_correct(restored)
    # The restart replayed only the missed updates, not a full reload.
    assert restored.iup.stats.transactions == 1


def test_restore_does_not_double_apply_pending_announcements(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=93)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    sources["db1"].insert("R", r1=96_000, r2=1, r3=1, r4=100)

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    restored = restore_mediator(annotated, sources, path)
    assert_view_correct(restored)
    # A later refresh finds nothing new to deliver.
    result = restored.refresh()
    assert result.flushed_messages == 0
    assert_view_correct(restored)


def test_save_mid_stream_restores_exactly(tmp_path):
    """A non-quiescent save is legal: queued and unannounced updates are
    not part of the snapshot, and restore recovers them from the source
    logs past the saved cursors — no loss, no double-apply."""
    mediator, sources = figure1_mediator("ex21", seed=94)
    path = snapshot_path(tmp_path)
    # One update announced-and-queued but NOT propagated, one still
    # unannounced at the source: maximum mid-stream-ness.
    sources["db1"].insert("R", r1=97_000, r2=1, r3=1, r4=100)
    mediator.collect_announcements()
    sources["db2"].insert("S", s1=2, s2=7, s3=7)
    save_mediator(mediator, path)

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    restored = restore_mediator(annotated, sources, path)
    assert_view_correct(restored)
    # Catch-up was incremental (one transaction) and complete: a further
    # refresh finds nothing to deliver.
    assert restored.iup.stats.transactions == 1
    assert restored.refresh().flushed_messages == 0


def test_restore_rejects_annotation_mismatch(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=95)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    other = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex23"])
    with pytest.raises(MediatorError):
        restore_mediator(other, sources, path)


def test_restore_with_set_nodes(tmp_path):
    mediator, sources = figure4_mediator("paper", seed=96)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    sources["dbC"].insert("C", c1=900, c2=3)
    annotated = annotate(
        figure4_vdp(),
        {"B_p": "[b1^v, b2^v]", "E": "[a1^m, a2^v, b1^m]", "F": "[a1^v, b1^v]"},
    )
    restored = restore_mediator(annotated, sources, path)
    assert_view_correct(restored)


def test_roundtrip_preserves_bag_multiplicity(tmp_path):
    """Bag nodes keep their exact multiplicities through the snapshot.

    The union scenario's regions have disjoint oids by construction, so a
    west insert colliding with an east row's (o, c, a) projection is the
    cheapest way to force a genuine multiplicity-2 row in ``all_orders``.
    """
    mediator, sources = union_mediator(seed=97)
    east = sources["east"].state()["orders_east"].to_sorted_list()
    row = next(v for v, _ in east if v[2] > 100)
    sources["west"].insert("orders_west", oid=row[0], cust=row[1], amount=row[2])
    mediator.refresh()
    original = mediator.store.repo("all_orders")
    assert any(n > 1 for _, n in original.to_sorted_list())

    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    restored = restore_mediator(annotate(union_vdp(), {}), sources, path)
    back = restored.store.repo("all_orders")
    assert back.is_bag and original.is_bag
    assert back.to_sorted_list() == original.to_sorted_list()


def test_roundtrip_preserves_set_kind(tmp_path):
    """Set nodes (figure 4's difference export ``G``) come back as sets —
    multiplicity-1 rows under set semantics, not bags."""
    mediator, sources = figure4_mediator("paper", seed=97)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    annotated = annotate(
        figure4_vdp(),
        {"B_p": "[b1^v, b2^v]", "E": "[a1^m, a2^v, b1^m]", "F": "[a1^v, b1^v]"},
    )
    restored = restore_mediator(annotated, sources, path)
    saw_set = False
    for name in mediator.annotated.nodes_with_storage():
        original = mediator.store.repo(name)
        back = restored.store.repo(name)
        assert back.is_bag == original.is_bag
        assert back.to_sorted_list() == original.to_sorted_list()
        saw_set = saw_set or not original.is_bag
    # figure 4's G is a set node; the scenario must exercise the set path.
    assert saw_set


# ---------------------------------------------------------------------------
# Orphan snapshot state: a source detached between save and restore
# ---------------------------------------------------------------------------
def _federation_snapshot(tmp_path):
    """A 4-source federation snapshot whose s002 (curated, joined to s001)
    will be detached before the restore — its materialized leaf-parent and
    join repo become orphans, and so does its cursor."""
    fed = make_federation(4, seed=21)
    sources = make_sources(fed.spec_text_for(), fed.initial_data())
    mediator = generate_mediator(fed.spec_text_for(), sources)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    survivors = [n for n in fed.names if n != "s002"]
    annotated = build_annotated_from_spec(fed.spec_text_for(survivors))
    kept = {n: sources[n] for n in survivors}
    return fed, sources, annotated, kept, path


def test_restore_drops_orphan_state_by_default(tmp_path):
    fed, sources, annotated, kept, path = _federation_snapshot(tmp_path)
    restored = restore_mediator(annotated, kept, path)
    assert "s002" not in restored.sources
    assert fed.leaf_parent("s002") not in restored.vdp.nodes
    assert_view_correct(restored)
    # The shrunken mediator equals one generated from scratch over the
    # surviving members — orphan images must not leak into survivors.
    fresh = generate_mediator(fed.spec_text_for(sorted(kept)), kept)
    for export in sorted(fresh.vdp.exports):
        assert restored.query_relation(export) == fresh.query_relation(export)


def test_restore_drop_orphans_then_catches_up(tmp_path):
    fed, sources, annotated, kept, path = _federation_snapshot(tmp_path)
    # Survivors keep committing after the snapshot; the detached source
    # does too, but its log must simply be ignored.
    k, a, b = fed.attributes("s000")
    kept["s000"].insert(fed.relation("s000"), **{k: 999, a: 1, b: 1})
    k2, a2, b2 = fed.attributes("s002")
    sources["s002"].insert(fed.relation("s002"), **{k2: 999, a2: 1, b2: 1})
    restored = restore_mediator(annotated, kept, path)
    assert_view_correct(restored)
    values = {v for v, _ in restored.query_relation(fed.leaf_parent("s000")).to_sorted_list()}
    assert (999, 1, 1) in values


def test_restore_raises_on_orphans_when_asked(tmp_path):
    fed, sources, annotated, kept, path = _federation_snapshot(tmp_path)
    with pytest.raises(OrphanStateError) as excinfo:
        restore_mediator(annotated, kept, path, on_orphan="raise")
    err = excinfo.value
    assert err.cursors == ["s002"]
    assert fed.leaf_parent("s002") in err.nodes
    assert fed.join_name("s001", "s002") in err.nodes
    # The message points at the recovery knob.
    assert "on_orphan" in str(err)


def test_restore_rejects_unknown_on_orphan_mode(tmp_path):
    _, _, annotated, kept, path = _federation_snapshot(tmp_path)
    with pytest.raises(MediatorError):
        restore_mediator(annotated, kept, path, on_orphan="ignore")


def test_restore_missing_nodes_is_an_error_even_with_drop(tmp_path):
    """Orphans (snapshot ⊃ federation) are recoverable; missing nodes
    (snapshot ⊂ federation) never are — the repositories can't be conjured."""
    fed = make_federation(4, seed=21)
    survivors = [n for n in fed.names if n != "s002"]
    sources = make_sources(fed.spec_text_for(), fed.initial_data())
    kept = {n: sources[n] for n in survivors}
    mediator = generate_mediator(fed.spec_text_for(survivors), kept)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    annotated = build_annotated_from_spec(fed.spec_text_for())
    with pytest.raises(MediatorError):
        restore_mediator(annotated, sources, path, on_orphan="drop")


def test_restore_rejects_column_order_mismatch(tmp_path):
    """A snapshot written under a different attribute order than the
    annotation now declares must be refused, not silently transposed."""
    import json
    import sqlite3

    mediator, sources = figure1_mediator("ex21", seed=98)
    path = snapshot_path(tmp_path)
    save_mediator(mediator, path)
    conn = sqlite3.connect(path)
    (payload,) = conn.execute(
        "SELECT payload FROM squirrel_meta WHERE kind='node' AND name='T'"
    ).fetchone()
    columns = json.loads(payload)
    conn.execute(
        "UPDATE squirrel_meta SET payload=? WHERE kind='node' AND name='T'",
        (json.dumps(list(reversed(columns))),),
    )
    conn.commit()
    conn.close()

    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    with pytest.raises(MediatorError):
        restore_mediator(annotated, sources, path)
