"""Tests for the compiled propagation engine (rules compiled at build time).

Three layers of claims:

* **parity** — a rule compiled eagerly (with VDP schemas, as the rulebase
  does) fires identically to one compiled lazily (schemas captured from
  the first catalog), and both match the one-shot ``spj_delta`` wrapper;
* **declarations** — the rulebase collects exactly the join-key indexes
  its compiled plans can probe, excluding synthetic delta aliases;
* **steady state** — a fully materialized mediator propagates updates with
  zero rows hashed and zero index rebuilds, only probes of incrementally
  maintained indexes; the ablation (``indexing_enabled=False``) hashes the
  sibling per firing yet lands in the identical state.
"""

import pytest

from repro.core.rules import CompiledSPJ, build_rule, spj_delta
from repro.deltas import BagDelta, SetDelta
from repro.errors import VDPError
from repro.relalg import BagRelation, make_schema, parse_expression, row
from repro.workloads import figure1_mediator, figure1_sources, figure1_vdp

L = make_schema("L", ["k", "x"])
Rr = make_schema("Rr", ["k2", "y"])


def _catalog():
    return {
        "L": BagRelation.from_values(L, [(1, 10), (2, 20), (3, 10)]),
        "Rr": BagRelation.from_values(Rr, [(10, "a"), (20, "b"), (10, "c")]),
    }


def _delta():
    return BagDelta.from_counts("L", {row(k=4, x=10): 1, row(k=2, x=20): -1})


JOIN_DEF = parse_expression("project[k, y](L join[x = k2] Rr)")


def test_eager_and_lazy_compilation_fire_identically():
    schemas = {"L": L, "Rr": Rr, "T": make_schema("T", ["k", "y"])}
    eager = build_rule("T", JOIN_DEF, "L", L, schemas)
    lazy = build_rule("T", JOIN_DEF, "L", L)
    catalog = _catalog()
    delta = _delta()
    got_eager = eager.fire(delta, catalog)
    got_lazy = lazy.fire(delta, catalog)
    one_shot = spj_delta(JOIN_DEF, "T", "L", delta, catalog, L)
    assert got_eager == got_lazy == one_shot
    assert not got_eager.is_empty()


def test_compiled_rule_probes_declared_index():
    """With the sibling indexed on the planned key, firing probes it."""
    from repro.relalg import EvalCounters

    rule = build_rule("T", JOIN_DEF, "L", L, {"L": L, "Rr": Rr})
    reqs = rule.index_requirements()
    assert reqs == {"Rr": {("k2",)}}

    catalog = _catalog()
    catalog["Rr"].ensure_index(("k2",))
    counters = EvalCounters()
    with_index = rule.fire(_delta(), catalog, counters)
    assert counters.index_probes > 0
    assert counters.rows_hashed == 0
    assert counters.index_rebuilds == 0

    plain_counters = EvalCounters()
    without_index = rule.fire(_delta(), _catalog(), plain_counters)
    assert plain_counters.index_probes == 0
    assert plain_counters.rows_hashed > 0
    assert with_index == without_index


def test_compiled_spj_rejects_unreferenced_child():
    with pytest.raises(VDPError):
        CompiledSPJ(parse_expression("project[k](L)"), "T", "Rr", Rr)
    with pytest.raises(VDPError):
        spj_delta(parse_expression("project[k](L)"), "T", "Rr", _delta(), _catalog(), Rr)


def test_set_rule_parity_eager_vs_lazy():
    schema = make_schema("W", ["k"])
    definition = parse_expression("project[k](L) minus project[k](rename[k2 = k](Rr))")
    catalog = {
        "L": BagRelation.from_values(L, [(1, 10), (2, 20)]),
        "Rr": BagRelation.from_values(Rr, [(2, "a")]),
    }
    delta = BagDelta.from_counts("L", {row(k=3, x=5): 1, row(k=1, x=10): -1})
    schemas = {"L": L, "Rr": Rr, "W": schema}
    eager = build_rule("W", definition, "L", L, schemas)
    lazy = build_rule("W", definition, "L", L)
    assert eager.fire(delta, dict(catalog)) == lazy.fire(delta, dict(catalog))


def test_rulebase_collects_index_requirements():
    from repro.core.rulebase import RuleBase

    rulebase = RuleBase(figure1_vdp())
    reqs = rulebase.index_requirements()
    # T = project(R_p join[r2 = s1] S_p): on ΔR_p probe S_p(s1), on ΔS_p
    # probe R_p(r2).  Leaf-parent chains have no joins, so nothing else.
    assert reqs == {"R_p": {("r2",)}, "S_p": {("s1",)}}
    assert not any(base.startswith("__") for base in reqs)


def _one_update(mediator, k):
    delta = SetDelta()
    delta.insert("R", row(r1=900_000 + k, r2=k % 25, r3=k, r4=100))
    mediator.enqueue_update("db1", delta)
    return mediator.run_update_transaction()


def test_steady_state_propagation_is_rebuild_free():
    """After init, N transactions probe maintained indexes and hash nothing."""
    mediator, _ = figure1_mediator("ex21", sources=figure1_sources(seed=3))
    mediator.reset_stats()
    for k in range(5):
        result = _one_update(mediator, k)
        assert result.rules_fired > 0
    stats = mediator.stats()
    assert stats.index_rebuilds == 0
    assert stats.index_probes >= 5
    assert stats.rows_hashed == 0
    assert stats.propagation_passes == 5


def test_indexing_ablation_hashes_but_agrees():
    indexed, _ = figure1_mediator("ex21", sources=figure1_sources(seed=3))
    legacy, _ = figure1_mediator(
        "ex21", sources=figure1_sources(seed=3), indexing_enabled=False
    )
    indexed.reset_stats()
    legacy.reset_stats()
    for k in range(3):
        _one_update(indexed, k)
        _one_update(legacy, k)
    assert legacy.stats().rows_hashed > 0
    assert legacy.stats().index_probes == 0
    assert indexed.stats().rows_hashed == 0

    def snapshot(med):
        return {
            name: sorted((tuple(sorted(dict(r).items())), n) for r, n in repo.items())
            for name, repo in med.store.repos().items()
        }

    assert snapshot(indexed) == snapshot(legacy)


def test_repository_indexes_survive_apply_delta():
    """The repos' declared indexes are maintained by delta application —
    still present and fresh after transactions, never re-ensured."""
    mediator, _ = figure1_mediator("ex21", sources=figure1_sources(seed=3))
    repo = mediator.store.repo("S_p")
    assert repo.has_index(("s1",))
    before = dict(repo.index_lookup(("s1",), (1,)))
    delta = SetDelta()
    delta.insert("S", row(s1=1, s2=999, s3=5))
    mediator.enqueue_update("db2", delta)
    mediator.run_update_transaction()
    after = dict(repo.index_lookup(("s1",), (1,)))
    assert after.get(row(s1=1, s2=999)) == 1
    for r, n in before.items():
        assert after.get(r) == n
