"""Unit tests for the Query Processor's routing decisions."""

import pytest

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.errors import MediatorError
from repro.relalg import TRUE, lt, make_schema, parse_expression
from repro.sources import MemorySource
from repro.workloads import figure1_mediator


def test_materialized_only_queries_skip_the_vap():
    mediator, _ = figure1_mediator("ex23")
    mediator.reset_stats()
    mediator.query("project[r1](T)")
    mediator.query("project[s1](select[r1 > 0](T))")
    assert mediator.qp.stats.materialized_only == 2
    assert mediator.qp.stats.with_virtual == 0
    assert mediator.vap.stats.polls == 0


def test_predicate_on_virtual_attribute_forces_vap():
    mediator, _ = figure1_mediator("ex23")
    mediator.reset_stats()
    # Output attrs are materialized, but the *selection* touches virtual r3.
    mediator.query("project[r1, s1](select[r3 < 100](T))")
    assert mediator.qp.stats.with_virtual == 1


def test_query_relation_defaults_to_full_width():
    mediator, _ = figure1_mediator("ex21")
    answer = mediator.query_relation("T")
    assert answer.schema.attribute_names == ("r1", "r3", "s1", "s2")
    filtered = mediator.query_relation("T", ["r1"], lt("r3", 100))
    assert filtered.schema.attribute_names == ("r1",)


def test_join_across_two_exports():
    """Queries may combine several mediator relations."""
    mediator, _ = _two_export_mediator()
    answer = mediator.query("project[a, b1](VA join[b = b1] VB)")
    assert answer.to_sorted_list() == [((1, 5), 1)]


def test_query_chain_detection_handles_nested_projections():
    mediator, _ = figure1_mediator("ex23")
    mediator.reset_stats()
    # Outer π over inner σπ chain: still one request for T.
    mediator.query("project[r1](select[s1 > 0](project[r1, s1](T)))")
    assert mediator.qp.stats.materialized_only == 1


def test_unknown_relation_rejected():
    mediator, _ = figure1_mediator("ex21")
    from repro.errors import VDPError

    with pytest.raises(VDPError):
        mediator.query("project[x](NOPE)")


def test_full_scan_of_virtual_relation_goes_generic_path():
    mediator, _ = figure1_mediator("ex23")
    mediator.reset_stats()
    answer = mediator.query(parse_expression("T"))
    assert mediator.qp.stats.with_virtual == 1
    assert answer.schema.attribute_names == ("r1", "r3", "s1", "s2")


def _two_export_mediator():
    a = make_schema("A", ["a", "b"], key=["a"])
    b = make_schema("B", ["b1", "c"], key=["b1"])
    vdp = build_vdp(
        source_schemas={"A": a, "B": b},
        source_of={"A": "s1", "B": "s2"},
        views={
            "A_pp": "A",
            "B_pp": "B",
            "VA": "project[a, b](A_pp)",
            "VB": "project[b1](B_pp)",
        },
        exports=["VA", "VB"],
    )
    sources = {
        "s1": MemorySource("s1", [a], initial={"A": [(1, 5), (2, 6)]}),
        "s2": MemorySource("s2", [b], initial={"B": [(5, 0), (7, 0)]}),
    }
    mediator = SquirrelMediator(annotate(vdp, {}), sources)
    mediator.initialize()
    return mediator, sources


# ---------------------------------------------------------------------------
# _as_chain: single-relation chain detection
# ---------------------------------------------------------------------------
def _chain(text):
    from repro.core.query_processor import QueryProcessor

    return QueryProcessor._as_chain(parse_expression(text))


def test_as_chain_project_over_select():
    relation, attrs, predicate = _chain("project[r1, s1](select[r3 < 100](T))")
    assert relation == "T"
    assert attrs == frozenset({"r1", "s1", "r3"})  # predicate attrs included
    assert str(predicate) == "r3 < 100"


def test_as_chain_select_above_project():
    # σ above π: the predicate still pushes into the request, and the
    # projection (the *innermost* width) sets the attribute set.
    relation, attrs, predicate = _chain("select[s1 > 0](project[r1, s1](T))")
    assert relation == "T"
    assert attrs == frozenset({"r1", "s1"})
    assert str(predicate) == "s1 > 0"


def test_as_chain_stacked_selects_conjoin():
    from repro.relalg import conjuncts

    relation, attrs, predicate = _chain(
        "select[r1 > 0](select[r3 < 100](project[r1](T)))"
    )
    assert relation == "T"
    assert attrs == frozenset({"r1", "r3"})
    assert {str(c) for c in conjuncts(predicate)} == {"r1 > 0", "r3 < 100"}


def test_as_chain_outermost_projection_wins():
    relation, attrs, _ = _chain("project[r1](project[r1, s1](T))")
    assert relation == "T"
    assert attrs == frozenset({"r1"})


def test_as_chain_bare_scan_falls_through():
    # A full scan carries no width: the generic lineage walk handles it.
    assert _chain("T") is None
    assert _chain("select[r3 < 100](T)") is None


def test_as_chain_rejects_non_chain_shapes():
    assert _chain("project[r1, s1](T join[s1 = s1] T)") is None
    assert _chain("project[o](rename[r1 = o](T))") is None
