"""Sharded parallel propagation ≡ serial propagation.

The shard plan is pure layout and scheduling: hash-partitioned
repositories, per-shard indexes, and (rule × shard) parallel firing must
land every repository in exactly the state the serial kernel produces —
multiplicities, counters, and export answers included.  Random annotated
VDPs cover the Section 5.1 node shapes plus a two-parent shape whose
non-aligned join keys force cross-shard exchange reads.
"""

import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Annotation, AnnotatedVDP, SquirrelMediator, build_vdp
from repro.core.sharding import plan_shards
from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.deltas import BagDelta
from repro.errors import AnnotationError, MediatorError
from repro.relalg import (
    BagRelation,
    PartitionedRelation,
    make_schema,
    row,
    stable_shard_hash,
)
from repro.sources import MemorySource
from repro.workloads import figure1_mediator, figure4_mediator

X = make_schema("X", ["x1", "x2", "x3"], key=["x1"])
Y = make_schema("Y", ["y1", "y2"], key=["y1"])


# ---------------------------------------------------------------------------
# stable_shard_hash / PartitionedRelation units
# ---------------------------------------------------------------------------
def test_stable_shard_hash_is_deterministic_and_type_sensitive():
    assert stable_shard_hash((1, "a")) == stable_shard_hash((1, "a"))
    # Values that collide under Python's == across types must not collide
    # here: routing is over the canonical (type, repr) encoding.
    assert stable_shard_hash((1,)) != stable_shard_hash(("1",))
    # And it must never depend on the process hash seed (crc32, not hash()).
    assert stable_shard_hash(("row", 7)) == stable_shard_hash(("row", 7))


def _bag_with(rows):
    rel = BagRelation(X)
    for values, n in rows:
        rel.insert(row(x1=values[0], x2=values[1], x3=values[2]), n)
    return rel


def test_partition_round_trips_and_routes():
    flat = _bag_with([((i, i % 3, i % 5), 1 + i % 2) for i in range(30)])
    part = PartitionedRelation.partition(flat, ("x2",), 4)
    assert part.num_shards == 4
    assert part.cardinality() == flat.cardinality()
    # Every row lives in exactly the shard its key hashes to.
    for shard_idx, shard in enumerate(part.shards()):
        for r, _ in shard.items():
            assert stable_shard_hash((r["x2"],)) % 4 == shard_idx
    # Round trip back to a flat relation preserves multiplicities.
    back = part.unpartitioned()
    assert back.to_sorted_list() == flat.to_sorted_list()


def test_partitioned_relation_mutations_route_to_owner():
    part = PartitionedRelation(X, ("x1",), 3)
    r = row(x1=11, x2=0, x3=0)
    part.insert(r, 2)
    owner = part.shard_of(r)
    assert part.shard(owner).count(r) == 2
    assert part.count(r) == 2
    part.delete(r, 1)
    assert part.count(r) == 1


def test_partitioned_index_lookup_local_vs_fanout():
    flat = _bag_with([((i, i % 4, i % 7), 1) for i in range(40)])
    part = PartitionedRelation.partition(flat, ("x2",), 4)
    part.ensure_index(("x2",))
    part.ensure_index(("x3",))
    # Probe covering the shard key: must agree with a flat scan.
    expect = sorted(
        (tuple(sorted(dict(r).items())), n) for r, n in flat.items() if r["x2"] == 2
    )
    got = sorted(
        (tuple(sorted(dict(r).items())), n)
        for r, n in part.index_lookup(("x2",), (2,))
    )
    assert got == expect
    # Probe NOT covering the shard key: fans out and still agrees.
    expect = sorted(
        (tuple(sorted(dict(r).items())), n) for r, n in flat.items() if r["x3"] == 3
    )
    got = sorted(
        (tuple(sorted(dict(r).items())), n)
        for r, n in part.index_lookup(("x3",), (3,))
    )
    assert got == expect


# ---------------------------------------------------------------------------
# ShardPlan units
# ---------------------------------------------------------------------------
def test_plan_infers_probed_join_keys_and_classifies_edges():
    mediator, _ = figure1_mediator("ex21", shards=2)
    plan = mediator.shard_plan
    assert plan is not None and plan.num_shards == 2
    # S_p is probed on its join key s1 by the rule out of R_p — that's the
    # shard key the planner must pick.
    assert plan.key_for("S_p") == ("s1",)
    # Both T-edges read their sibling through a probe that covers the
    # sibling's shard key: shard-local, no exchange.
    for parent, child in mediator.rulebase.edges():
        info = plan.edge_info(parent, child)
        assert info is not None
        assert not info.exchange_siblings, (parent, child)


def test_plan_split_partitions_delta_exactly():
    mediator, _ = figure1_mediator("ex21", shards=3)
    plan = mediator.shard_plan
    delta = BagDelta()
    for k in range(20):
        delta.add("S_p", row(s1=k, s2=k % 5), 1 + k % 2)
    parts = plan.split("S_p", delta)
    assert len(parts) == 3
    merged = BagDelta()
    for shard_idx, part in enumerate(parts):
        if part is None:
            continue
        for r, n in part.entries_for("S_p"):
            assert stable_shard_hash((r["s1"],)) % 3 == shard_idx
        merged = merged.smash(part)
    assert sorted(merged.entries_for("S_p"), key=repr) == sorted(
        delta.entries_for("S_p"), key=repr
    )


def test_mediator_rejects_bad_shard_count():
    with pytest.raises(MediatorError):
        figure1_mediator("ex21", shards=0)


def test_exchange_reads_are_counted_and_traced():
    from repro.obs import Tracer

    tracer = Tracer(enabled=True)
    mediator, sources = figure4_mediator("all_m", shards=4, tracer=tracer)
    mediator.reset_stats()
    sources["dbC"].insert("C", c1=1, c2=2)
    mediator.refresh()
    stats = mediator.stats()
    assert stats.shard_batches > 0
    assert stats.exchange_reads > 0
    events = [r for r in tracer.records() if r.get("name") == "exchange"]
    assert events, "exchange reads must be traced"
    spans = [r for r in tracer.records() if r.get("name") == "shard_worker"]
    assert spans, "parallel firings must record shard_worker spans"


# ---------------------------------------------------------------------------
# Hypothesis: sharded ≡ serial on random annotated VDPs
# ---------------------------------------------------------------------------
@st.composite
def vdp_specs(draw):
    """Random VDPs over the §5.1 shapes plus a two-parent shape whose
    non-aligned join keys (Yp probed on y1 by one parent, y2 by the other)
    force cross-shard exchange."""
    shape = draw(st.sampled_from(["join", "union", "difference", "nonaligned"]))
    threshold = draw(st.integers(min_value=1, max_value=9))
    views = {
        "Xp": f"select[x3 < {threshold}](X)",
        "Yp": "Y",
    }
    if shape == "join":
        views["V"] = "project[x1, x3, y2](Xp join[x2 = y1] Yp)"
        exports = ["V"]
    elif shape == "union":
        views["V"] = (
            "project[x1, x2](Xp) union project[x1, x2](rename[y1 = x1, y2 = x2](Yp))"
        )
        exports = ["V"]
    elif shape == "difference":
        views["V"] = (
            "project[x2](Xp) minus project[x2](rename[y1 = x2](project[y1](Yp)))"
        )
        exports = ["V"]
    else:
        views["V"] = "project[x1, x3, y2](Xp join[x2 = y1] Yp)"
        views["W"] = "project[x1, y1](Xp join[x3 = y2] Yp)"
        exports = ["V", "W"]
    return shape, views, exports


@st.composite
def annotations_for(draw, vdp):
    marks = {}
    for name in vdp.non_leaves():
        attrs = vdp.node(name).schema.attribute_names
        choice = draw(st.sampled_from(["m", "m", "hybrid"]))
        if choice == "m" or len(attrs) < 2:
            marks[name] = Annotation.all_materialized(attrs)
        else:
            split = draw(st.integers(min_value=1, max_value=len(attrs) - 1))
            marks[name] = Annotation.of(
                {a: ("m" if i < split else "v") for i, a in enumerate(attrs)}
            )
    return marks


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["ix", "dx", "iy", "dy"]),
        st.integers(min_value=0, max_value=9_999),
    ),
    min_size=1,
    max_size=10,
)


def build_mediator(views, exports, marks, shards, seed=7):
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=exports,
    )
    annotated = AnnotatedVDP(vdp, marks)
    rng = random.Random(seed)
    sources = {
        "sx": MemorySource(
            "sx",
            [X],
            initial={"X": [(i, rng.randrange(10), rng.randrange(10)) for i in range(12)]},
        ),
        "sy": MemorySource(
            "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
        ),
    }
    mediator = SquirrelMediator(annotated, sources, shards=shards)
    mediator.initialize()
    return mediator, sources


def apply_op(sources, op, arg, counter):
    if op == "ix":
        sources["sx"].insert("X", x1=counter, x2=arg % 10, x3=arg % 13)
    elif op == "iy":
        sources["sy"].insert("Y", y1=counter, y2=arg % 10)
    else:
        source, relation = (
            (sources["sx"], "X") if op == "dx" else (sources["sy"], "Y")
        )
        rows = sorted(source.relation(relation).rows(), key=lambda r: sorted(r.items()))
        if rows:
            source.delete(relation, **dict(rows[arg % len(rows)]))


def snapshot(mediator):
    return {
        name: sorted((tuple(sorted(dict(r).items())), n) for r, n in repo.items())
        for name, repo in mediator.store.repos().items()
    }


@given(st.data())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_sharded_equals_serial(data):
    shape, views, exports = data.draw(vdp_specs())
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=exports,
    )
    marks = data.draw(annotations_for(vdp))
    shards = data.draw(st.sampled_from([2, 3, 4]))
    try:
        serial, serial_sources = build_mediator(views, exports, marks, 1)
        sharded, sharded_sources = build_mediator(views, exports, marks, shards)
    except AnnotationError:
        return  # e.g. hybrid on a set node: not a legal configuration
    ops = data.draw(ops_strategy)

    for counter, (op, arg) in enumerate(ops):
        apply_op(serial_sources, op, arg, 1000 + counter)
        apply_op(sharded_sources, op, arg, 1000 + counter)
    serial.refresh()
    sharded.refresh()

    assert snapshot(sharded) == snapshot(serial)
    s_stats, p_stats = serial.stats(), sharded.stats()
    assert p_stats.rules_fired == s_stats.rules_fired
    assert p_stats.index_probes == s_stats.index_probes
    assert_materialized_correct(sharded)
    assert_view_correct(sharded)
    if shape == "nonaligned" and p_stats.shard_batches:
        # Yp's probes (y1 and y2) cannot both cover one shard key, so any
        # fired batch that read Yp had to take the exchange path.
        info = [
            sharded.shard_plan.edge_info(parent, child)
            for parent, child in sharded.rulebase.edges()
        ]
        assert any(i.exchange_siblings for i in info if i is not None)


# ---------------------------------------------------------------------------
# Determinism: repeated runs byte-agree, across process hash seeds too
# ---------------------------------------------------------------------------
_DIGEST_SCRIPT = r"""
import hashlib, json, sys
from repro.workloads import figure1_mediator, figure1_sources

mediator, sources = figure1_mediator(
    "ex21", sources=figure1_sources(r_rows=120, s_rows=60, seed=5), shards=4
)
sources["db1"].insert("R", r1=900_001, r2=7, r3=3, r4=100)
sources["db2"].delete("S", **dict(sorted(sources["db2"].relation("S").rows(),
                                         key=lambda r: sorted(r.items()))[0]))
mediator.refresh()
payload = {
    "repos": {
        name: sorted((tuple(sorted(dict(r).items())), n) for r, n in repo.items())
        for name, repo in mediator.store.repos().items()
    },
    "stats": mediator.stats().as_dict(),
}
print(hashlib.sha256(json.dumps(payload, sort_keys=True, default=str).encode()).hexdigest())
"""


def _run_digest(hash_seed: str) -> str:
    import os

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    out = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


def test_sharded_run_is_hash_seed_independent():
    """The same sharded workload under different PYTHONHASHSEED values must
    produce identical repositories AND identical counters — shard routing
    (crc32) and delta diff order (sorted) may not leak hash order."""
    assert _run_digest("1") == _run_digest("2")


def test_repeated_sharded_runs_agree_exactly():
    """Two identical in-process runs: same repositories, same counters,
    same trace record sequence (deterministic merge order)."""
    from repro.obs import Tracer

    def one_run():
        tracer = Tracer(enabled=True, clock=lambda: 0.0)
        mediator, sources = figure4_mediator("all_m", shards=3, tracer=tracer)
        sources["dbC"].insert("C", c1=2, c2=4)
        sources["dbD"].insert("D", d1=2, d2=9)
        mediator.refresh()
        names = [r.get("name") for r in tracer.records()]
        return snapshot(mediator), mediator.stats().as_dict(), names

    first = one_run()
    second = one_run()
    assert first == second
