"""Multi-level VDP tests: propagation through intermediate (and virtual)
internal nodes across three join levels.

The paper's examples are two-level; "in general VDPs can be of any size".
This scenario stacks ``offers = catalog ⋈ parts`` under
``enriched = offers ⋈ suppliers`` and drives updates into all three
sources under several annotations of the middle layer.
"""

import random

import pytest

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.correctness import assert_view_correct
from repro.relalg import make_schema
from repro.sources import MemorySource

PARTS = make_schema("parts", ["p_id", "cost"], key=["p_id"])
SUPPLIERS = make_schema("suppliers", ["s_id", "region"], key=["s_id"])
CATALOG = make_schema("catalog", ["c_p", "c_s", "price"], key=["c_p", "c_s"])

VIEWS = {
    "parts_p": "parts",
    "suppliers_p": "suppliers",
    "catalog_p": "select[price > 0](catalog)",
    "offers": "project[c_s, p_id, cost, price](catalog_p join[c_p = p_id] parts_p)",
    "enriched": (
        "project[p_id, s_id, region, cost, price]"
        "(offers join[c_s = s_id] suppliers_p)"
    ),
}


def build(overrides=None, seed=4):
    rng = random.Random(seed)
    n_parts, n_sup = 15, 6
    catalog_rows = {
        (rng.randrange(n_parts), rng.randrange(n_sup), rng.randrange(1, 100))
        for _ in range(25)
    }
    sources = {
        "erp": MemorySource(
            "erp",
            [PARTS],
            initial={"parts": [(i, rng.randrange(5, 50)) for i in range(n_parts)]},
        ),
        "crm": MemorySource(
            "crm",
            [SUPPLIERS],
            initial={"suppliers": [(i, rng.choice(["eu", "us", "apac"])) for i in range(n_sup)]},
        ),
        "market": MemorySource(
            "market", [CATALOG], initial={"catalog": sorted(catalog_rows)}
        ),
    }

    vdp = build_vdp(
        source_schemas={"parts": PARTS, "suppliers": SUPPLIERS, "catalog": CATALOG},
        source_of={"parts": "erp", "suppliers": "crm", "catalog": "market"},
        views=VIEWS,
        exports=["enriched"],
    )
    mediator = SquirrelMediator(annotate(vdp, overrides or {}), sources)
    mediator.initialize()
    return mediator, sources


def drive(mediator, sources, seed, steps=25):
    rng = random.Random(seed)
    for k in range(steps):
        which = rng.choice(["erp", "crm", "market"])
        if which == "erp":
            sources["erp"].insert("parts", p_id=100 + k, cost=rng.randrange(5, 50))
        elif which == "crm":
            rows = list(sources["crm"].relation("suppliers").rows())
            if rows and rng.random() < 0.4:
                sources["crm"].delete("suppliers", **dict(rng.choice(rows)))
            else:
                sources["crm"].insert("suppliers", s_id=100 + k, region="eu")
        else:
            from repro.relalg import row

            candidate = row(
                c_p=rng.randrange(15), c_s=rng.randrange(6), price=rng.randrange(1, 100)
            )
            if not sources["market"].relation("catalog").contains(candidate):
                sources["market"].insert("catalog", **dict(candidate))
        if rng.random() < 0.4:
            mediator.refresh()
    mediator.refresh()


def test_three_level_structure():
    mediator, _ = build()
    vdp = mediator.vdp
    assert vdp.children("enriched") == ("offers", "suppliers_p")
    assert vdp.children("offers") == ("catalog_p", "parts_p")
    assert vdp.sources_below("enriched") == {"erp", "crm", "market"}


def test_fully_materialized_three_levels():
    mediator, sources = build()
    assert_view_correct(mediator)
    drive(mediator, sources, seed=10)
    assert_view_correct(mediator)
    assert mediator.vap.stats.polls == 0


def test_virtual_middle_layer():
    """`offers` virtual: deltas pass through it; rules into `enriched`
    need an offers temporary built from the materialized level below."""
    mediator, sources = build({"offers": "[c_s^v, p_id^v, cost^v, price^v]"})
    assert_view_correct(mediator)
    drive(mediator, sources, seed=11)
    assert_view_correct(mediator)
    # offers temps are built from catalog_p/parts_p repos — no source polls.
    assert mediator.vap.stats.polls == 0
    assert mediator.vap.stats.temps_built > 0


def test_virtual_middle_and_leaf_layer():
    """Both `offers` and its children virtual: rebuilding offers requires
    polling erp and market."""
    mediator, sources = build(
        {
            "offers": "[c_s^v, p_id^v, cost^v, price^v]",
            "catalog_p": "[c_p^v, c_s^v, price^v]",
            "parts_p": "[p_id^v, cost^v]",
        }
    )
    assert_view_correct(mediator)
    drive(mediator, sources, seed=12, steps=15)
    assert_view_correct(mediator)
    assert mediator.vap.stats.polls > 0


def test_hybrid_export_over_deep_plan():
    mediator, sources = build(
        {"enriched": "[p_id^m, s_id^m, region^v, cost^v, price^m]"}
    )
    assert_view_correct(mediator)
    drive(mediator, sources, seed=13, steps=15)
    assert_view_correct(mediator)
    # Hot query on materialized attrs: no reconstruction.
    mediator.reset_stats()
    mediator.query("project[p_id, s_id, price](enriched)")
    assert mediator.qp.stats.materialized_only == 1
