"""End-to-end mediator tests over the paper's Figure 1 and Figure 4 scenarios.

These are the core integration tests: drive source updates through the
announcement → queue → IUP pipeline and check every export against a full
bottom-up recomputation (ground truth), under each of the paper's
annotations.
"""

import random

import pytest

from repro.correctness.recompute import assert_view_correct, recompute
from repro.deltas import SetDelta
from repro.relalg import eq, lt, row
from repro.sources import ContributorKind
from repro.workloads import figure1_mediator, figure4_mediator


def drive_random_updates(sources, rng, steps, refresh=None):
    """Apply a random mix of inserts/deletes/updates across sources."""
    for _ in range(steps):
        source = rng.choice(sorted(sources))
        db = sources[source]
        rel_name = sorted(db.schemas)[0]
        current = list(db.relation(rel_name).rows())
        if current and rng.random() < 0.45:
            victim = rng.choice(current)
            db.delete(rel_name, **dict(victim))
        else:
            db.execute(_fresh_insert(db, rel_name, rng))
        if refresh is not None and rng.random() < 0.5:
            refresh()


def _fresh_insert(db, rel_name, rng):
    schema = db.schemas[rel_name]
    existing = db.relation(rel_name)
    delta = SetDelta()
    while True:
        values = {a.name: rng.randrange(10_000) for a in schema.attributes}
        # keep selection/join attributes in interesting ranges
        for attr_name in values:
            if attr_name in ("r2", "s1"):
                values[attr_name] = rng.randrange(50)
            if attr_name == "r4":
                values[attr_name] = 100 if rng.random() < 0.5 else 200
            if attr_name == "s3":
                values[attr_name] = rng.randrange(100)
            if attr_name in ("a2",):
                values[attr_name] = rng.randrange(20)
            if attr_name in ("b2",):
                values[attr_name] = rng.randrange(3, 12)
        candidate = row(**values)
        if not existing.contains(candidate):
            delta.insert(rel_name, candidate)
            return delta


@pytest.mark.parametrize("example", ["ex21", "ex22", "ex23"])
def test_figure1_initial_state_matches_ground_truth(example):
    mediator, sources = figure1_mediator(example)
    assert_view_correct(mediator)


@pytest.mark.parametrize("example", ["ex21", "ex22", "ex23"])
def test_figure1_incremental_maintenance(example):
    mediator, sources = figure1_mediator(example)
    rng = random.Random(42)
    drive_random_updates(sources, rng, steps=40, refresh=mediator.refresh)
    mediator.refresh()
    assert_view_correct(mediator)


def test_figure1_contributor_classification():
    mediator, _ = figure1_mediator("ex21")
    kinds = mediator.contributor_kinds
    assert kinds == {
        "db1": ContributorKind.MATERIALIZED,
        "db2": ContributorKind.MATERIALIZED,
    }

    mediator22, _ = figure1_mediator("ex22")
    # R' virtual makes db1 a hybrid-contributor (it is polled on S-updates).
    assert mediator22.contributor_kinds["db1"] is ContributorKind.HYBRID
    assert mediator22.contributor_kinds["db2"] is ContributorKind.MATERIALIZED

    mediator23, _ = figure1_mediator("ex23")
    # Both sources feed materialized and virtual attributes of T.
    assert mediator23.contributor_kinds["db1"] is ContributorKind.HYBRID
    assert mediator23.contributor_kinds["db2"] is ContributorKind.HYBRID


def test_figure1_ex21_maintenance_never_polls():
    """Example 2.1: fully materialized support — no source queries at all."""
    mediator, sources = figure1_mediator("ex21")
    rng = random.Random(1)
    drive_random_updates(sources, rng, steps=30, refresh=mediator.refresh)
    mediator.refresh()
    assert mediator.vap.stats.polls == 0
    assert_view_correct(mediator)


def test_figure1_ex22_polls_only_on_s_updates():
    """Example 2.2: ΔR propagates without polling; ΔS forces a poll of R."""
    mediator, sources = figure1_mediator("ex22")
    rng = random.Random(2)

    # Updates to R only: no polls needed (rule #1 uses ΔR' and S').
    drive_random_updates({"db1": sources["db1"]}, rng, steps=10)
    mediator.refresh()
    assert mediator.vap.stats.polls == 0

    # An update to S forces the mediator to query R (R' is virtual).
    drive_random_updates({"db2": sources["db2"]}, rng, steps=3)
    mediator.refresh()
    assert mediator.vap.stats.polls > 0
    assert_view_correct(mediator)


def test_figure1_ex23_materialized_query_needs_no_polls():
    """Example 2.3: queries over r1, s1 are served from the local store."""
    mediator, _ = figure1_mediator("ex23")
    mediator.reset_stats()
    answer = mediator.query("project[r1, s1](T)")
    assert mediator.vap.stats.polls == 0
    assert mediator.qp.stats.materialized_only == 1
    assert answer.cardinality() > 0


def test_figure1_ex23_virtual_query_uses_key_based_construction():
    """Example 2.3's query π_{r3,s1} σ_{r3<100} T: key-based beats polling S."""
    mediator, sources = figure1_mediator("ex23")
    mediator.reset_stats()
    answer = mediator.query("project[r3, s1](select[r3 < 100](T))")
    assert mediator.qp.stats.with_virtual == 1
    assert mediator.vap.stats.key_based_used == 1
    # Only db1 (for R') is polled; db2 is untouched.
    assert mediator.links["db1"].poll_count == 1
    assert mediator.links["db2"].poll_count == 0
    expected = mediator.query("project[r3, s1](select[r3 < 100](T))")
    truth = recompute(mediator.vdp, sources, "T")
    filtered = sorted(
        set(
            (r["r3"], r["s1"])
            for r, _ in truth.items()
            if r["r3"] < 100
        )
    )
    got = sorted(set((r["r3"], r["s1"]) for r, _ in answer.items()))
    assert got == filtered


def test_figure1_ex23_key_based_disabled_polls_both_sources():
    mediator, _ = figure1_mediator("ex23", key_based_enabled=False)
    mediator.reset_stats()
    mediator.query("project[r3, s1](select[r3 < 100](T))")
    assert mediator.vap.stats.key_based_used == 0
    assert mediator.links["db1"].poll_count == 1
    assert mediator.links["db2"].poll_count == 1


def test_figure1_consistency_under_uncollected_announcements():
    """A query between announcement and refresh sees the *old* consistent
    state for hybrid contributions (eager compensation at work)."""
    mediator, sources = figure1_mediator("ex23")
    before = mediator.query_relation("T")
    # Commit at the source but do not refresh the mediator.
    sources["db1"].insert("R", r1=99_999, r2=1, r3=1, r4=100)
    after = mediator.query_relation("T")
    assert after == before


def test_figure4_initial_and_incremental_maintenance():
    mediator, sources = figure4_mediator("paper")
    assert_view_correct(mediator)
    rng = random.Random(3)
    drive_random_updates(sources, rng, steps=30, refresh=mediator.refresh)
    mediator.refresh()
    assert_view_correct(mediator)


def test_figure4_all_materialized():
    mediator, sources = figure4_mediator("all_m")
    assert_view_correct(mediator)
    rng = random.Random(4)
    drive_random_updates(sources, rng, steps=20, refresh=mediator.refresh)
    mediator.refresh()
    assert_view_correct(mediator)
    assert mediator.vap.stats.polls == 0  # fully materialized support


def test_figure4_all_virtual():
    mediator, sources = figure4_mediator("all_v")
    assert_view_correct(mediator)
    rng = random.Random(5)
    drive_random_updates(sources, rng, steps=10)
    # No refresh needed: queries always reconstruct from the sources.
    assert_view_correct(mediator)
    assert mediator.vap.stats.polls > 0


def test_figure4_difference_node_updates_from_both_sides():
    mediator, sources = figure4_mediator("paper")
    g_before = mediator.query_relation("G")
    # Remove every C row: F becomes empty, G grows to all of π(E).
    db_c = sources["dbC"]
    for r in list(db_c.relation("C").rows()):
        db_c.delete("C", **dict(r))
    mediator.refresh()
    assert_view_correct(mediator, "G")
    g_after = mediator.query_relation("G")
    assert g_after.cardinality() >= g_before.cardinality()


def test_all_annotations_answer_queries_identically():
    """The annotation is an implementation choice: for the same sources and
    updates, every annotation must answer every query with the same bag."""
    rng_updates = random.Random(55)
    mediators = {}
    for example in ("ex21", "ex22", "ex23"):
        mediator, sources = figure1_mediator(example, seed=55)
        drive_random_updates(sources, random.Random(77), steps=15, refresh=mediator.refresh)
        mediator.refresh()
        mediators[example] = mediator

    queries = [
        "project[r1, s1](T)",
        "project[r3, s2](T)",
        "project[r1](select[r3 < 500](T))",
        "project[s1, s2](select[s2 > 100 or r1 < 50](T))",
    ]
    for query in queries:
        answers = {ex: m.query(query) for ex, m in mediators.items()}
        assert answers["ex21"] == answers["ex22"] == answers["ex23"], query


def test_mediator_requires_initialization():
    from repro.core import SquirrelMediator, annotate
    from repro.errors import MediatorError
    from repro.workloads import figure1_sources, figure1_vdp

    annotated = annotate(figure1_vdp(), {})
    mediator = SquirrelMediator(annotated, figure1_sources())
    with pytest.raises(MediatorError):
        mediator.query("project[r1](T)")


def test_mediator_rejects_queries_on_leaves():
    mediator, _ = figure1_mediator("ex21")
    from repro.errors import MediatorError

    with pytest.raises(MediatorError):
        mediator.query("project[r1](R)")


def test_export_state_and_stats():
    mediator, _ = figure1_mediator("ex21")
    state = mediator.export_state("T")
    assert state.schema.attribute_names == ("r1", "r3", "s1", "s2")
    stats = mediator.stats()
    assert stats.stored_rows > 0
    assert stats.queries >= 1
    from repro.errors import MediatorError

    with pytest.raises(MediatorError):
        mediator.export_state("R_p")
