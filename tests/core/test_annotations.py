"""Unit tests for m/v annotations."""

import pytest

from repro.core import Annotation
from repro.errors import AnnotationError


def test_parse_paper_notation():
    ann = Annotation.parse("[r1^m, r3^v, s1^m, s2^v]")
    assert ann.materialized_attrs == ("r1", "s1")
    assert ann.virtual_attrs == ("r3", "s2")
    assert ann.hybrid


def test_parse_without_brackets():
    ann = Annotation.parse("a^m, b^v")
    assert ann.mark("a") == "m"
    assert ann.mark("b") == "v"


def test_parse_errors():
    with pytest.raises(AnnotationError):
        Annotation.parse("[a^x]")
    with pytest.raises(AnnotationError):
        Annotation.parse("[a]")
    with pytest.raises(AnnotationError):
        Annotation.parse("[a^m, a^v]")


def test_all_materialized_and_virtual():
    m = Annotation.all_materialized(["a", "b"])
    assert m.fully_materialized and not m.fully_virtual and not m.hybrid
    v = Annotation.all_virtual(["a", "b"])
    assert v.fully_virtual and not v.fully_materialized


def test_roundtrip_str():
    ann = Annotation.parse("[a^m, b^v]")
    assert Annotation.parse(str(ann)) == ann


def test_mark_lookup_and_covers():
    ann = Annotation.parse("[a^m, b^v, c^m]")
    assert ann.is_materialized("a")
    assert not ann.is_materialized("b")
    assert ann.covers(["a", "c"])
    assert not ann.covers(["a", "b"])
    with pytest.raises(AnnotationError):
        ann.mark("zzz")


def test_invalid_mark_rejected():
    with pytest.raises(AnnotationError):
        Annotation.of({"a": "q"})
