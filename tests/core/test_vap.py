"""Unit tests for the Virtual Attribute Processor's two phases."""

import pytest

from repro.core import TempRequest
from repro.errors import MediatorError
from repro.relalg import TRUE, parse_predicate, row
from repro.workloads import figure1_mediator, figure4_mediator


def request(relation, attrs, pred=TRUE):
    return TempRequest(relation, frozenset(attrs), pred)


def test_plan_empty_when_storage_covers():
    mediator, _ = figure1_mediator("ex21")
    planned = mediator.vap.plan([request("T", ["r1", "s1"])])
    assert planned == []


def test_plan_poll_for_leaf_parent():
    mediator, _ = figure1_mediator("ex23")
    planned = mediator.vap.plan([request("R_p", ["r1", "r3"])])
    assert len(planned) == 1
    assert planned[0].strategy == "poll"
    assert planned[0].relation == "R_p"


def test_plan_key_based_for_example_23_query():
    mediator, _ = figure1_mediator("ex23")
    planned = mediator.vap.plan(
        [request("T", ["r3", "s1"], parse_predicate("r3 < 100"))]
    )
    strategies = {p.relation: p.strategy for p in planned}
    assert strategies["T"] == "key-based"
    # Only the R' fetch is planned; S' is never touched.
    assert "S_p" not in strategies
    assert strategies["R_p"] == "poll"
    t_plan = next(p for p in planned if p.relation == "T")
    assert t_plan.key_attrs == ("r1",)
    assert t_plan.virtual_children == ("R_p",)


def test_plan_children_based_when_key_based_disabled():
    mediator, _ = figure1_mediator("ex23", key_based_enabled=False)
    planned = mediator.vap.plan(
        [request("T", ["r3", "s1"], parse_predicate("r3 < 100"))]
    )
    strategies = {p.relation: p.strategy for p in planned}
    assert strategies["T"] == "children"
    assert strategies["R_p"] == "poll"
    assert strategies["S_p"] == "poll"


def test_plan_merges_requests_for_same_relation():
    mediator, _ = figure1_mediator("ex23", key_based_enabled=False)
    planned = mediator.vap.plan(
        [
            request("T", ["r3"], parse_predicate("r3 < 10")),
            request("T", ["s2"], parse_predicate("s2 > 5")),
        ]
    )
    t_plan = next(p for p in planned if p.relation == "T")
    assert {"r3", "s2"} <= set(t_plan.request.attrs)
    assert "or" in str(t_plan.request.predicate)  # f ∨ g merge (step 2b)


def test_plan_orders_parents_first():
    mediator, _ = figure4_mediator("all_v")
    planned = mediator.vap.plan([request("G", ["a1", "b1"])])
    order = [p.relation for p in planned]
    assert order.index("G") < order.index("E")
    assert order.index("E") < order.index("A_p")


def test_construct_polls_once_per_source():
    mediator, _ = figure1_mediator("ex23", key_based_enabled=False)
    mediator.reset_stats()
    temps = mediator.vap.materialize(
        [request("T", ["r3", "s2", "s1", "r1"])]
    )
    assert set(temps) == {"T", "R_p", "S_p"}
    assert mediator.vap.stats.polled_sources == 2
    assert mediator.links["db1"].poll_count == 1
    assert mediator.links["db2"].poll_count == 1


def test_constructed_temp_matches_direct_evaluation():
    mediator, sources = figure1_mediator("ex23")
    temps = mediator.vap.materialize([request("T", ["r1", "r3", "s1", "s2"])])
    from repro.correctness import recompute

    truth = recompute(mediator.vdp, sources, "T")
    got = {tuple(sorted(r.items())): n for r, n in temps["T"].items()}
    want = {tuple(sorted(r.items())): n for r, n in truth.items()}
    assert got == want


def test_missing_link_raises():
    mediator, _ = figure1_mediator("ex23")
    del mediator.vap.links["db1"]
    with pytest.raises(MediatorError):
        mediator.vap.materialize([request("R_p", ["r1", "r3"])])


def test_resolve_failure_without_repo_or_temp():
    mediator, _ = figure1_mediator("ex23")
    with pytest.raises(MediatorError):
        mediator.vap._resolve("R_p", {})


def test_stats_reset():
    mediator, _ = figure1_mediator("ex23")
    mediator.query("project[r3](T)")
    assert mediator.vap.stats.temps_built > 0
    mediator.vap.stats.reset()
    assert mediator.vap.stats.temps_built == 0
    assert mediator.vap.stats.polls == 0


def test_plan_refuses_key_based_for_union_nodes():
    """Key-based construction assumes every output row embeds a row of each
    virtual child (true for SPJ).  A union row may come wholly from the
    other branch, so the planner must pick children-based reconstruction
    even when the hybrid node stores a key of both children."""
    from repro.workloads import union_mediator

    mediator, _ = union_mediator({"all_orders": "[o^m, c^m, a^v]"})
    planned = mediator.vap.plan([request("all_orders", ["o", "a"])])
    strategies = {p.relation: p.strategy for p in planned}
    assert strategies["all_orders"] == "children"
    assert "key-based" not in strategies.values()
    assert mediator.vap.stats.key_based_used == 0
