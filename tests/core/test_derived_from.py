"""Unit tests for derived_from / child_requirements / narrow_definition."""

import pytest

from repro.core import TempRequest, derived_from
from repro.core.derived_from import child_requirements, narrow_definition
from repro.errors import VDPError
from repro.relalg import TRUE, lt, make_schema, parse_expression, parse_predicate
from repro.workloads import figure1_vdp, figure4_vdp


def request_map(requests):
    return {r.relation: r for r in requests}


def test_case1_project_select_chain():
    """Paper case (1): B = A ∪ D (selection attrs), f pushed down."""
    vdp = figure1_vdp()
    out = request_map(derived_from(vdp, "R_p", frozenset(["r1"])))
    # R_p = π_{r1,r2,r3} σ_{r4=100}(R): needs r1 plus the selection attr r4.
    assert out["R"].attrs == frozenset({"r1", "r4"})


def test_case2_join_splits_needs_and_adds_condition_attrs():
    """Paper case (2): B_i = (A ∩ attrs(S_i)) ∪ D_i."""
    vdp = figure1_vdp()
    out = request_map(
        derived_from(vdp, "T", frozenset(["r3", "s1"]), parse_predicate("r3 < 100"))
    )
    assert out["R_p"].attrs == frozenset({"r3", "r2"})  # r2 joins, r3 requested
    assert out["S_p"].attrs == frozenset({"s1"})
    # f = r3 < 100 only mentions R_p attributes: pushed there, not to S_p.
    assert str(out["R_p"].predicate) == "r3 < 100"
    assert out["S_p"].predicate is TRUE


def test_case4_difference_needs_full_output_on_both_sides():
    """Paper case (4): both operands additionally need all output attrs C."""
    vdp = figure4_vdp()
    out = request_map(derived_from(vdp, "G", frozenset(["a1"])))
    assert out["E"].attrs == frozenset({"a1", "b1"})
    assert out["F"].attrs == frozenset({"a1", "b1"})


def test_derived_from_validates_inputs():
    vdp = figure1_vdp()
    with pytest.raises(VDPError):
        derived_from(vdp, "R", frozenset(["r1"]))  # leaf
    with pytest.raises(VDPError):
        derived_from(vdp, "T", frozenset(["zzz"]))


def test_merge_requests():
    a = TempRequest("X", frozenset(["a"]), parse_predicate("a < 5"))
    b = TempRequest("X", frozenset(["b"]), parse_predicate("b > 2"))
    merged = a.merge(b)
    assert merged.attrs == frozenset({"a", "b"})
    # Selections are OR-ed (the paper's f ∨ g).
    assert "or" in str(merged.predicate)
    with pytest.raises(VDPError):
        a.merge(TempRequest("Y", frozenset(["a"]), TRUE))


def test_child_requirements_on_query_expressions():
    vdp = figure1_vdp()
    expr = parse_expression("project[r1, s2](select[r3 < 10](T))")
    out = child_requirements(
        expr, frozenset(["r1", "s2"]), TRUE, vdp.schemas()
    )
    assert out["T"].attrs == frozenset({"r1", "s2", "r3"})


def test_requirements_through_rename():
    schemas = {"X": make_schema("X", ["a", "b"])}
    expr = parse_expression("project[z](select[z < 5](rename[a = z](X)))")
    out = child_requirements(expr, frozenset(["z"]), TRUE, schemas)
    assert out["X"].attrs == frozenset({"a"})


def test_requirements_union_both_sides():
    schemas = {
        "X": make_schema("X", ["a", "b"]),
        "Y": make_schema("Y", ["a", "b"]),
    }
    expr = parse_expression("project[a](select[b < 5](X)) union project[a](Y)")
    out = child_requirements(expr, frozenset(["a"]), TRUE, schemas)
    assert out["X"].attrs == frozenset({"a", "b"})
    assert out["Y"].attrs == frozenset({"a"})


def test_narrow_definition_trims_projections():
    vdp = figure1_vdp()
    definition = vdp.node("T").definition
    narrowed = narrow_definition(definition, frozenset(["r3", "s1"]), vdp.schemas())
    # The top projection keeps only what is needed...
    assert set(narrowed.attrs) == {"r3", "s1"}
    # ...and the join condition attributes survive underneath.
    from repro.relalg import Join

    join = narrowed.child
    assert isinstance(join, Join)


def test_narrow_definition_keeps_difference_operands_full():
    vdp = figure4_vdp()
    definition = vdp.node("G").definition
    narrowed = narrow_definition(definition, frozenset(["a1"]), vdp.schemas())
    assert narrowed == definition


def test_narrow_never_produces_empty_projection():
    schemas = {"X": make_schema("X", ["a", "b"])}
    expr = parse_expression("project[a, b](X)")
    narrowed = narrow_definition(expr, frozenset(), schemas)
    assert len(narrowed.attrs) >= 1
