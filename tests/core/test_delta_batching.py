"""Property tests: batched propagation ≡ one-at-a-time propagation.

N source announcements flushed in one IUP transaction are folded into one
net delta per source (``UpdateQueue.flush``) and propagated in a single
kernel pass — and that must land the store in exactly the state that N
separate transactions (one per announcement) produce.  Random VDPs cover
the Section 5.1 node shapes (join, union, difference) under random legal
annotations, mirroring the chaos-suite generator.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Annotation, AnnotatedVDP, SquirrelMediator, build_vdp
from repro.correctness import assert_view_correct
from repro.errors import AnnotationError
from repro.relalg import make_schema, row
from repro.deltas import SetDelta
from repro.sources import MemorySource
from repro.workloads import figure1_mediator, figure1_sources

X = make_schema("X", ["x1", "x2", "x3"], key=["x1"])
Y = make_schema("Y", ["y1", "y2"], key=["y1"])


@st.composite
def vdp_specs(draw):
    """A compact random VDP: one of the paper's §5.1 node shapes on top of
    a filtered leaf-parent (modeled on the chaos-suite generator)."""
    shape = draw(st.sampled_from(["join", "union", "difference"]))
    threshold = draw(st.integers(min_value=1, max_value=9))
    views = {
        "Xp": f"select[x3 < {threshold}](X)",
        "Yp": "Y",
    }
    if shape == "join":
        views["V"] = "project[x1, x3, y2](Xp join[x2 = y1] Yp)"
    elif shape == "union":
        views["V"] = (
            "project[x1, x2](Xp) union project[x1, x2](rename[y1 = x1, y2 = x2](Yp))"
        )
    else:
        views["V"] = (
            "project[x2](Xp) minus project[x2](rename[y1 = x2](project[y1](Yp)))"
        )
    return views


@st.composite
def annotations_for(draw, vdp):
    marks = {}
    for name in vdp.non_leaves():
        attrs = vdp.node(name).schema.attribute_names
        choice = draw(st.sampled_from(["m", "m", "hybrid"]))
        if choice == "m" or len(attrs) < 2:
            marks[name] = Annotation.all_materialized(attrs)
        else:
            split = draw(st.integers(min_value=1, max_value=len(attrs) - 1))
            marks[name] = Annotation.of(
                {a: ("m" if i < split else "v") for i, a in enumerate(attrs)}
            )
    return marks


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["ix", "dx", "iy", "dy"]),
        st.integers(min_value=0, max_value=9_999),
    ),
    min_size=1,
    max_size=10,
)


def build_mediator(views, marks, seed=7):
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=["V"],
    )
    annotated = AnnotatedVDP(vdp, marks)
    rng = random.Random(seed)
    sources = {
        "sx": MemorySource(
            "sx",
            [X],
            initial={"X": [(i, rng.randrange(10), rng.randrange(10)) for i in range(12)]},
        ),
        "sy": MemorySource(
            "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
        ),
    }
    mediator = SquirrelMediator(annotated, sources)
    mediator.initialize()
    return mediator, sources


def apply_op(sources, op, arg, counter):
    if op == "ix":
        sources["sx"].insert("X", x1=counter, x2=arg % 10, x3=arg % 13)
    elif op == "iy":
        sources["sy"].insert("Y", y1=counter, y2=arg % 10)
    else:
        source, relation = (
            (sources["sx"], "X") if op == "dx" else (sources["sy"], "Y")
        )
        rows = sorted(source.relation(relation).rows(), key=lambda r: sorted(r.items()))
        if rows:
            source.delete(relation, **dict(rows[arg % len(rows)]))


def snapshot(mediator):
    return {
        name: sorted((tuple(sorted(dict(r).items())), n) for r, n in repo.items())
        for name, repo in mediator.store.repos().items()
    }


@given(st.data())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_batched_equals_one_at_a_time(data):
    views = data.draw(vdp_specs())
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=["V"],
    )
    marks = data.draw(annotations_for(vdp))
    try:
        batched, batched_sources = build_mediator(views, marks)
        serial, serial_sources = build_mediator(views, marks)
    except AnnotationError:
        return  # e.g. hybrid on a set node: not a legal configuration
    ops = data.draw(ops_strategy)

    # Batched: every announcement enqueued individually (one message per
    # op), then a single update transaction over the whole batch.
    batched.reset_stats()
    for counter, (op, arg) in enumerate(ops):
        apply_op(batched_sources, op, arg, 1000 + counter)
        batched.collect_announcements()
    messages = len(batched.queue)
    batched.run_update_transaction()

    # Serial: the same announcements propagated one transaction each.
    for counter, (op, arg) in enumerate(ops):
        apply_op(serial_sources, op, arg, 1000 + counter)
        serial.refresh()

    assert snapshot(batched) == snapshot(serial)
    assert_view_correct(batched)

    # The whole batch cost at most one propagation pass, however many
    # messages were queued (zero when every op was a no-op delete).
    assert batched.iup.stats.propagation_passes <= 1
    if messages:
        assert batched.iup.stats.propagation_passes == 1
        assert batched.iup.stats.batched_messages == messages
        assert batched.queue.messages_folded == messages
        # Per-source folding: at most one batch per announcing source.
        assert batched.queue.batches_flushed <= 2


def test_n_messages_one_pass_counters():
    """Deterministic pin of the batching counters on the Figure 1 mediator."""
    mediator, _ = figure1_mediator("ex21", sources=figure1_sources(seed=3))
    mediator.reset_stats()
    for k in range(8):
        delta = SetDelta()
        delta.insert("R", row(r1=700_000 + k, r2=k % 25, r3=k, r4=100))
        mediator.enqueue_update("db1", delta)
    result = mediator.run_update_transaction()
    assert result.flushed_messages == 8
    assert mediator.iup.stats.propagation_passes == 1
    assert mediator.iup.stats.batched_messages == 8
    assert mediator.queue.batches_flushed == 1  # one source → one batch
    assert mediator.queue.messages_folded == 8
    # One pass fires each affected edge rule once, not once per message.
    assert result.rules_fired == len(mediator.rulebase.rules_out_of("R")) + len(
        mediator.rulebase.rules_out_of("R_p")
    )


def test_insert_then_delete_nets_to_nothing_in_one_batch():
    """+X then -X in one flush cancels: no spurious multiplicity drift."""
    mediator, _ = figure1_mediator("ex21", sources=figure1_sources(seed=3))
    before = snapshot(mediator)
    r = row(r1=800_000, r2=3, r3=1, r4=100)
    plus, minus = SetDelta(), SetDelta()
    plus.insert("R", r)
    minus.delete("R", r)
    mediator.enqueue_update("db1", plus)
    mediator.enqueue_update("db1", minus)
    mediator.run_update_transaction()
    assert snapshot(mediator) == before


def test_multi_source_batch_folds_per_source():
    mediator, sources = figure1_mediator("ex21", sources=figure1_sources(seed=3))
    mediator.reset_stats()
    sources["db1"].insert("R", r1=810_000, r2=4, r3=2, r4=100)
    sources["db2"].insert("S", s1=810_001, s2=9, s3=5)
    assert mediator.collect_announcements() == 2
    result = mediator.run_update_transaction()
    assert result.flushed_messages == 2
    assert mediator.queue.batches_flushed == 2  # one net batch per source
    assert mediator.iup.stats.propagation_passes == 1
    assert_view_correct(mediator)
