"""End-to-end tests for a union-node export (Section 5.1 shape (c)).

Two regional order sources feed a bag-union export through renamed
leaf-parents; maintenance, annotations, and queries are checked against
ground truth.
"""

import random

import pytest

from repro.correctness import assert_view_correct
from repro.core import NodeKind
from repro.sources import ContributorKind
from repro.workloads import UpdateStream, uniform_int, union_mediator, union_vdp


def make_streams(sources, seed):
    rng = random.Random(seed)
    return [
        UpdateStream(
            sources["east"],
            "orders_east",
            {"cust": uniform_int(0, 10), "amount": uniform_int(0, 1000)},
            rng,
            key_start=1_000_000,
        ),
        UpdateStream(
            sources["west"],
            "orders_west",
            {"cust": uniform_int(0, 10), "amount": uniform_int(0, 1000)},
            rng,
            key_start=2_000_000,
        ),
    ]


def test_union_vdp_structure():
    vdp = union_vdp()
    assert vdp.node("all_orders").kind is NodeKind.BAG
    assert set(vdp.children("all_orders")) == {"east_p", "west_p"}
    assert vdp.node("all_orders").schema.attribute_names == ("o", "c", "a")


def test_union_initial_state():
    mediator, sources = union_mediator()
    assert_view_correct(mediator)
    # Both regions contribute.
    regions = {r["o"] % 2 for r, _ in mediator.query_relation("all_orders").items()}
    assert regions == {0, 1}


def test_union_incremental_maintenance():
    mediator, sources = union_mediator()
    for stream in make_streams(sources, seed=5):
        stream.run(25)
    mediator.refresh()
    assert_view_correct(mediator)
    assert mediator.vap.stats.polls == 0  # fully materialized support


def test_union_updates_to_one_side_leave_other_alone():
    mediator, sources = union_mediator()
    west_filter = "select[o < 1000000 and o % 2 = 1](all_orders)"  # initial west oids
    before_west = {r for r, _ in mediator.query(west_filter).items()}
    east_stream, _ = make_streams(sources, seed=6)
    east_stream.run(10)
    mediator.refresh()
    after_west = {r for r, _ in mediator.query(west_filter).items()}
    assert before_west == after_west
    assert_view_correct(mediator)


def test_union_with_virtual_side():
    """One region virtual: its updates still flow (deltas pass through the
    virtual node), and queries needing it poll."""
    mediator, sources = union_mediator({"east_p": "[o^v, c^v, a^v]"})
    kinds = mediator.contributor_kinds
    assert kinds["east"] is ContributorKind.HYBRID
    assert kinds["west"] is ContributorKind.MATERIALIZED

    for stream in make_streams(sources, seed=7):
        stream.run(15)
    mediator.refresh()
    assert_view_correct(mediator)


def test_union_fully_virtual_export():
    mediator, sources = union_mediator(
        {
            "east_p": "[o^v, c^v, a^v]",
            "west_p": "[o^v, c^v, a^v]",
            "all_orders": "[o^v, c^v, a^v]",
        }
    )
    assert mediator.stats().stored_rows == 0
    assert_view_correct(mediator)
    assert mediator.vap.stats.polls > 0
    # Sources update; the next query just sees it (no refresh needed).
    sources["east"].insert("orders_east", oid=999_998, cust=1, amount=500)
    assert_view_correct(mediator)


def test_union_hybrid_export_never_uses_key_based_construction():
    """Regression: key-based construction is unsound for union nodes — a
    row of the union may come entirely from the *other* branch, so
    π_{K∪A_v}(V) ⊄ π(child).  The VAP must fall back to children-based
    reconstruction (found by the random-VDP property test)."""
    mediator, _ = union_mediator({"all_orders": "[o^m, c^m, a^v]"})
    mediator.reset_stats()
    answer = mediator.query("project[o, a](all_orders)")
    assert mediator.vap.stats.key_based_used == 0
    assert_view_correct(mediator)
    # Both regions are present in the reconstructed virtual column.
    parities = {r["o"] % 2 for r, _ in answer.items()}
    assert parities == {0, 1}


def test_union_duplicate_rows_counted():
    """Bag union: identical (c, a) pairs from both regions keep multiplicity."""
    mediator, sources = union_mediator()
    sources["east"].insert("orders_east", oid=500_000, cust=7, amount=777)
    sources["west"].insert("orders_west", oid=500_001, cust=7, amount=777)
    mediator.refresh()
    pairs = mediator.query("project[c, a](all_orders)")
    from repro.relalg import row

    assert pairs.count(row(c=7, a=777)) >= 2
