"""Targeted tests for less-travelled paths across packages."""

import io

import pytest

from repro.core import annotate, build_vdp
from repro.correctness import FreshnessReport, IntegrationTrace, check_freshness
from repro.errors import VDPError
from repro.relalg import Evaluator, SetRelation, make_schema, row, scan
from repro.sources import MemorySource


# ---------------------------------------------------------------------------
# Builder: hoisting inside set/union node operands
# ---------------------------------------------------------------------------
SCHEMAS = {
    "R": make_schema("R", ["a", "b"], key=["a"]),
    "S": make_schema("S", ["a", "c"], key=["a"]),
}
SOURCE_OF = {"R": "d1", "S": "d2"}


def test_builder_hoists_inside_difference_operands():
    vdp = build_vdp(
        SCHEMAS,
        SOURCE_OF,
        {"V": "project[a](select[b < 5](R)) minus project[a](S)"},
        ["V"],
    )
    # Both operands' source chains were hoisted into leaf-parents, so the
    # set node's children are mediator relations, per restriction (a).
    assert set(vdp.children("V")) == {"R_p", "S_p"}
    from repro.core import NodeKind

    assert vdp.node("V").kind is NodeKind.SET


def test_builder_hoists_inside_union_operands():
    vdp = build_vdp(
        SCHEMAS,
        SOURCE_OF,
        {"V": "project[a](R) union project[a](S)"},
        ["V"],
    )
    assert set(vdp.children("V")) == {"R_p", "S_p"}


def test_builder_rejects_name_collision_with_source():
    with pytest.raises(VDPError):
        build_vdp(SCHEMAS, SOURCE_OF, {"R": "project[a](S)"}, ["R"])


def test_builder_rejects_missing_source_owner():
    with pytest.raises(VDPError):
        build_vdp(SCHEMAS, {"R": "d1"}, {"V": "project[a](S)"}, ["V"])


# ---------------------------------------------------------------------------
# End-to-end maintenance over the hoisted difference
# ---------------------------------------------------------------------------
def test_hoisted_difference_maintenance():
    from repro.core import SquirrelMediator
    from repro.correctness import assert_view_correct

    vdp = build_vdp(
        SCHEMAS,
        SOURCE_OF,
        {"V": "project[a](select[b < 5](R)) minus project[a](S)"},
        ["V"],
    )
    sources = {
        "d1": MemorySource("d1", [SCHEMAS["R"]], initial={"R": [(1, 1), (2, 9), (3, 2)]}),
        "d2": MemorySource("d2", [SCHEMAS["S"]], initial={"S": [(3, 0)]}),
    }
    mediator = SquirrelMediator(annotate(vdp, {}), sources)
    mediator.initialize()
    assert {r["a"] for r, _ in mediator.query_relation("V").items()} == {1}
    sources["d2"].insert("S", a=1, c=0)
    sources["d1"].insert("R", a=4, b=0)
    mediator.refresh()
    assert_view_correct(mediator)
    assert {r["a"] for r, _ in mediator.query_relation("V").items()} == {4}


# ---------------------------------------------------------------------------
# Generator keyword annotations
# ---------------------------------------------------------------------------
def test_generator_materialized_keyword():
    from repro.generator import generate_mediator, make_sources

    spec = """
source d1 { relation R(a key, b) }
view base = project[a, b](R)
export V = project[a](base)
annotate V materialized
annotate base m
"""
    sources = make_sources(spec, initial={"d1": {"R": [(1, 2)]}})
    mediator = generate_mediator(spec, sources)
    assert mediator.annotated.is_fully_materialized("V")
    assert mediator.annotated.is_fully_materialized("base")


# ---------------------------------------------------------------------------
# Freshness edge cases
# ---------------------------------------------------------------------------
def test_freshness_infinite_for_invalid_view_state():
    from repro.correctness import measure_staleness

    schema = make_schema("R", ["x"])
    trace = IntegrationTrace(["db"])
    trace.record_source_state("db", 0.0, {"R": SetRelation.from_values(schema, [(1,)])})
    trace.record_view_state(1.0, "query", {"V": SetRelation.from_values(schema, [(999,)])})

    def view_fn(states):
        return {"V": states["db"]["R"]}

    staleness = measure_staleness(trace, view_fn)
    assert staleness[0]["db"] == float("inf")
    report = check_freshness(trace, view_fn, {"db": 100.0})
    assert not report.within_bound


def test_freshness_report_headroom_none_without_bound():
    report = FreshnessReport(per_record=[], worst={})
    assert report.headroom() is None


# ---------------------------------------------------------------------------
# Evaluator with explicit schemas catalog
# ---------------------------------------------------------------------------
def test_evaluator_with_explicit_schemas():
    schema = make_schema("R", ["x"])
    rel = SetRelation.from_values(schema, [(1,), (2,)])
    evaluator = Evaluator({"ALIAS": rel}, schemas={"ALIAS": schema.rename_relation("ALIAS")})
    out = evaluator.evaluate(scan("ALIAS").project(["x"]), "out")
    assert out.cardinality() == 2


# ---------------------------------------------------------------------------
# CLI repl loop with piped input
# ---------------------------------------------------------------------------
def test_cli_repl_loop_with_stdin(tmp_path, monkeypatch):
    from repro.cli import main

    spec = tmp_path / "m.spec"
    spec.write_text(
        "source d1 { relation R(a key, b) }\nexport V = project[a](R)\n"
    )
    lines = iter(["project[a](V)", "\\bogus syntax((", "\\quit"])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
    out = io.StringIO()
    assert main(["repl", str(spec)], out=out) == 0
    text = out.getvalue()
    assert "[0 rows]" in text
    assert "error:" in text  # the bad line was reported, not fatal
