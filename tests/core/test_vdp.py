"""Unit tests for VDP structure, validation, and classification."""

import pytest

from repro.core import AnnotatedVDP, Annotation, NodeKind, VDPNode, annotate, build_vdp, classify_definition
from repro.errors import AnnotationError, VDPError
from repro.relalg import make_schema, parse_expression
from repro.sources import ContributorKind
from repro.workloads import figure1_vdp, figure4_vdp

SCHEMAS = {
    "R": make_schema("R", ["r1", "r2"], key=["r1"]),
    "S": make_schema("S", ["s1", "s2"], key=["s1"]),
}
SOURCE_OF = {"R": "db1", "S": "db2"}


def build(views, exports):
    return build_vdp(SCHEMAS, SOURCE_OF, views, exports)


def test_classify_definitions():
    assert classify_definition(parse_expression("project[r1](R)")) is NodeKind.BAG
    assert classify_definition(parse_expression("R join[r1 = s1] S")) is NodeKind.BAG
    assert classify_definition(parse_expression("project[r1](R) union project[r1](R)")) is NodeKind.BAG
    assert classify_definition(parse_expression("project[r1](R) minus project[r1](R)")) is NodeKind.SET
    with pytest.raises(VDPError):
        classify_definition(parse_expression("dproject[r1](R)"))
    with pytest.raises(VDPError):
        # difference under a join is outside the grammar
        classify_definition(parse_expression("(project[r1](A) minus project[r1](B)) join[r1 = s1] S"))


def test_figure1_vdp_structure():
    vdp = figure1_vdp()
    assert set(vdp.leaves()) == {"R", "S"}
    assert set(vdp.leaf_parents()) == {"R_p", "S_p"}
    assert vdp.exports == ("T",)
    assert vdp.children("T") == ("R_p", "S_p")
    assert vdp.parents("R_p") == ("T",)
    assert vdp.sources_below("T") == {"db1", "db2"}
    assert vdp.leaf_descendants("T") == {"R", "S"}
    order = vdp.topological_order()
    assert order.index("R") < order.index("R_p") < order.index("T")


def test_figure4_vdp_structure():
    vdp = figure4_vdp()
    assert vdp.node("G").kind is NodeKind.SET
    assert vdp.node("E").kind is NodeKind.BAG
    assert set(vdp.children("G")) == {"E", "F"}
    assert vdp.ancestors("A_p") == {"E", "G"}
    assert vdp.leaves_of_source("dbA") == ("A",)


def test_fds_propagate_to_nodes():
    vdp = figure1_vdp()
    assert vdp.fds("T").determines(["r1"], "r3")
    assert vdp.fds("T").determines(["s1"], "s2")


def test_unknown_reference_rejected():
    with pytest.raises(VDPError):
        build({"V": "project[r1](NOPE)"}, ["V"])


def test_cycle_rejected():
    with pytest.raises(VDPError):
        build({"A1": "project[r1](B1)", "B1": "project[r1](A1)"}, ["A1"])


def test_maximal_node_must_be_exported():
    nodes = [
        VDPNode("R", SCHEMAS["R"], NodeKind.LEAF, source="db1"),
        VDPNode(
            "V",
            SCHEMAS["R"].project(["r1"], "V"),
            NodeKind.BAG,
            definition=parse_expression("project[r1](R)"),
        ),
    ]
    from repro.core.vdp import VDP

    with pytest.raises(VDPError):
        VDP(nodes, exports=[])


def test_export_cannot_be_leaf():
    from repro.core.vdp import VDP

    nodes = [VDPNode("R", SCHEMAS["R"], NodeKind.LEAF, source="db1")]
    with pytest.raises(VDPError):
        VDP(nodes, exports=["R"])


def test_leaf_parent_restriction_enforced():
    # Joining a leaf directly with a non-leaf violates restriction (a);
    # the builder hoists it away, so construct the node by hand.
    from repro.core.vdp import VDP

    join_def = parse_expression("R join[r2 = s1] S")
    schema = join_def.infer_schema(SCHEMAS, "V")
    nodes = [
        VDPNode("R", SCHEMAS["R"], NodeKind.LEAF, source="db1"),
        VDPNode("S", SCHEMAS["S"], NodeKind.LEAF, source="db2"),
        VDPNode("V", schema, NodeKind.BAG, definition=join_def),
    ]
    with pytest.raises(VDPError):
        VDP(nodes, exports=["V"])


def test_builder_hoists_source_chains():
    vdp = build(
        {"V": "project[r1, s2](select[r2 < 10](R) join[r1 = s1] S)"},
        ["V"],
    )
    # Both R (with its selection) and bare S were hoisted into leaf-parents.
    assert "R_p" in vdp.nodes
    assert "S_p" in vdp.nodes
    assert vdp.children("V") == ("R_p", "S_p")


def test_builder_reuses_identical_hoists_and_numbers_different_ones():
    vdp = build(
        {
            "V1": "project[r1](select[r2 < 10](R) join[r1 = s1] S)",
            "V2": "project[r1](select[r2 < 10](R) join[r1 = s2] S)",
            "V3": "project[r1](select[r2 > 90](R) join[r1 = s1] S)",
        },
        ["V1", "V2", "V3"],
    )
    # select[r2<10](R) shared between V1 and V2; the r2>90 chain is new.
    r_parents = [n for n in vdp.nodes if n.startswith("R_p")]
    assert sorted(r_parents) == ["R_p", "R_p2"]


def test_node_kind_mismatch_rejected():
    from repro.core.vdp import VDP

    expr = parse_expression("project[r1](R)")
    schema = expr.infer_schema(SCHEMAS, "V")
    nodes = [
        VDPNode("R", SCHEMAS["R"], NodeKind.LEAF, source="db1"),
        VDPNode("V", schema, NodeKind.SET, definition=expr),
    ]
    with pytest.raises(VDPError):
        VDP(nodes, exports=["V"])


def test_annotation_validation():
    vdp = figure1_vdp()
    with pytest.raises(AnnotationError):
        annotate(vdp, {"T": "[r1^m]"})  # wrong attribute coverage
    with pytest.raises(AnnotationError):
        annotate(vdp, {"NOPE": "[x^m]"})
    annotated = annotate(vdp, {"T": "[r1^m, r3^v, s1^m, s2^v]"})
    assert annotated.virtual_attrs("T") == ("r3", "s2")
    assert annotated.is_fully_materialized("R_p")


def test_set_node_cannot_be_hybrid():
    vdp = figure4_vdp()
    with pytest.raises(AnnotationError):
        annotate(vdp, {"G": "[a1^m, b1^v]"})


def test_missing_annotation_detected():
    vdp = figure1_vdp()
    with pytest.raises(AnnotationError):
        AnnotatedVDP(vdp, {"T": Annotation.all_materialized(vdp.node("T").schema.attribute_names)})


def test_contributor_kinds_figure4_paper_annotation():
    vdp = figure4_vdp()
    annotated = annotate(
        vdp,
        {"B_p": "[b1^v, b2^v]", "E": "[a1^m, a2^v, b1^m]", "F": "[a1^v, b1^v]"},
    )
    kinds = annotated.contributor_kinds()
    # Everything reaches the materialized portion (E, G); dbA and dbB also
    # feed E's virtual a2 (dbA) and the virtual B'/F relations.
    assert kinds["dbB"] is ContributorKind.HYBRID
    assert kinds["dbA"] is ContributorKind.HYBRID
    assert kinds["dbC"] is ContributorKind.HYBRID
    assert kinds["dbD"] is ContributorKind.HYBRID


def test_describe_renders():
    vdp = figure1_vdp()
    text = vdp.describe()
    assert "T" in text and "leaf" in text
    annotated = annotate(vdp, {})
    assert "R_p" in annotated.describe()
