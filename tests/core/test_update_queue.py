"""Unit tests for the update queue."""

from repro.core import UpdateQueue
from repro.deltas import SetDelta
from repro.relalg import row


def delta_insert(rel, **values):
    d = SetDelta()
    d.insert(rel, row(**values))
    return d


def test_enqueue_and_flush_nets_in_order():
    q = UpdateQueue()
    assert q.is_empty()
    d1 = delta_insert("R", a=1)
    d2 = SetDelta()
    d2.delete("R", row(a=1))
    q.enqueue("db1", d1, send_time=1.0, arrival_time=2.0)
    q.enqueue("db1", d2, send_time=3.0, arrival_time=4.0)
    combined, entries = q.flush()
    # Insert-then-delete across two in-order messages nets to NOTHING —
    # smash would keep a spurious deletion atom (regression for the
    # multi-message-per-flush bug found in simulation).
    assert combined.sign("R", row(a=1)) == 0
    assert combined.is_empty()
    assert [e.send_time for e in entries] == [1.0, 3.0]
    assert q.is_empty()
    assert q.total_enqueued == 2
    assert q.total_flushed == 2


def test_flush_nets_delete_then_reinsert_cycle():
    q = UpdateQueue()
    d1 = SetDelta()
    d1.delete("R", row(a=1))
    q.enqueue("db1", d1)
    q.enqueue("db1", delta_insert("R", a=1))
    d3 = SetDelta()
    d3.delete("R", row(a=1))
    q.enqueue("db1", d3)
    combined, _ = q.flush()
    assert combined.sign("R", row(a=1)) == -1  # odd number of flips: net delete


def test_flush_empty_queue():
    q = UpdateQueue()
    combined, entries = q.flush()
    assert combined is None
    assert entries == []


def test_pending_for_source_preserves_order_without_consuming():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1))
    q.enqueue("db2", delta_insert("S", b=1))
    q.enqueue("db1", delta_insert("R", a=2))
    pending = q.pending_for_source("db1")
    assert len(pending) == 2
    assert pending[0].sign("R", row(a=1)) == 1
    assert len(q) == 3  # not consumed


def test_last_send_time():
    q = UpdateQueue()
    assert q.last_send_time("db1") is None
    q.enqueue("db1", delta_insert("R", a=1), send_time=5.0)
    q.enqueue("db1", delta_insert("R", a=2), send_time=9.0)
    assert q.last_send_time("db1") == 9.0


def test_peek_is_a_copy():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1))
    peeked = q.peek()
    peeked.clear()
    assert len(q) == 1
