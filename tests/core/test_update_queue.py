"""Unit tests for the update queue."""

from repro.core import UpdateQueue
from repro.deltas import SetDelta
from repro.relalg import row


def delta_insert(rel, **values):
    d = SetDelta()
    d.insert(rel, row(**values))
    return d


def test_enqueue_and_flush_nets_in_order():
    q = UpdateQueue()
    assert q.is_empty()
    d1 = delta_insert("R", a=1)
    d2 = SetDelta()
    d2.delete("R", row(a=1))
    q.enqueue("db1", d1, send_time=1.0, arrival_time=2.0)
    q.enqueue("db1", d2, send_time=3.0, arrival_time=4.0)
    combined, entries = q.flush()
    # Insert-then-delete across two in-order messages nets to NOTHING —
    # smash would keep a spurious deletion atom (regression for the
    # multi-message-per-flush bug found in simulation).
    assert combined.sign("R", row(a=1)) == 0
    assert combined.is_empty()
    assert [e.send_time for e in entries] == [1.0, 3.0]
    assert q.is_empty()
    assert q.total_enqueued == 2
    assert q.total_flushed == 2


def test_flush_nets_delete_then_reinsert_cycle():
    q = UpdateQueue()
    d1 = SetDelta()
    d1.delete("R", row(a=1))
    q.enqueue("db1", d1)
    q.enqueue("db1", delta_insert("R", a=1))
    d3 = SetDelta()
    d3.delete("R", row(a=1))
    q.enqueue("db1", d3)
    combined, _ = q.flush()
    assert combined.sign("R", row(a=1)) == -1  # odd number of flips: net delete


def test_flush_empty_queue():
    q = UpdateQueue()
    combined, entries = q.flush()
    assert combined is None
    assert entries == []


def test_pending_for_source_preserves_order_without_consuming():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1))
    q.enqueue("db2", delta_insert("S", b=1))
    q.enqueue("db1", delta_insert("R", a=2))
    pending = q.pending_for_source("db1")
    assert len(pending) == 2
    assert pending[0].sign("R", row(a=1)) == 1
    assert len(q) == 3  # not consumed


def test_last_send_time():
    q = UpdateQueue()
    assert q.last_send_time("db1") is None
    q.enqueue("db1", delta_insert("R", a=1), send_time=5.0)
    q.enqueue("db1", delta_insert("R", a=2), send_time=9.0)
    assert q.last_send_time("db1") == 9.0


def test_peek_is_a_copy():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1))
    peeked = q.peek()
    peeked.clear()
    assert len(q) == 1


# ----------------------------------------------------------------------
# Sequenced announcements: dedup + reorder defense (faulty channels)
# ----------------------------------------------------------------------
def test_duplicate_seq_is_smashed_idempotently():
    q = UpdateQueue()
    d = delta_insert("R", a=1)
    assert q.enqueue("db1", d, seq=0) is True
    assert q.enqueue("db1", d, seq=0) is False  # retransmit of the same message
    assert q.enqueue("db1", d, seq=0) is False
    assert len(q) == 1
    assert q.duplicates_dropped == 2
    combined, entries = q.flush()
    # The net effect is ONE insert, not three: a duplicated announcement
    # must not inflate bag multiplicities downstream.
    assert combined.sign("R", row(a=1)) == 1
    assert len(entries) == 1


def test_duplicate_seq_after_flush_still_dropped():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1), seq=0)
    q.flush()
    # A stale retransmit arriving after its original was already flushed.
    assert q.enqueue("db1", delta_insert("R", a=1), seq=0) is False
    assert q.is_empty()
    assert q.duplicates_dropped == 1


def test_out_of_order_seqs_drain_in_sequence_order():
    q = UpdateQueue()
    # Source timeline: insert (seq 0) then delete (seq 1).  The channel
    # reordered them; folding in arrival order would net to a spurious
    # insert instead of nothing.
    d_del = SetDelta()
    d_del.delete("R", row(a=1))
    q.enqueue("db1", d_del, seq=1)
    q.enqueue("db1", delta_insert("R", a=1), seq=0)
    assert q.reordered_arrivals == 1
    assert [e.seq for e in q.peek()] == [0, 1]
    combined, entries = q.flush()
    assert combined.is_empty()  # insert-then-delete nets to nothing
    assert [e.seq for e in entries] == [0, 1]


def test_reorder_defense_is_per_source():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1), seq=5)
    q.enqueue("db2", delta_insert("S", b=1), seq=0)  # lower seq, other source
    q.enqueue("db1", delta_insert("R", a=2), seq=4)  # overtook db1's seq 5
    # db2's entry is untouched by db1's reordering (cross-source arrival
    # order is irrelevant: different sources mention disjoint relations);
    # what matters is that db1's entries end up in sequence order.
    db1_seqs = [e.seq for e in q.peek() if e.source == "db1"]
    assert db1_seqs == [4, 5]
    assert sum(1 for e in q.peek() if e.source == "db2") == 1
    assert q.reordered_arrivals == 1


def test_pending_for_source_reflects_sequence_order():
    """ECA's inverse-smash reads pending deltas; they must appear in the
    source's commit order even when arrivals were shuffled."""
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=2), seq=1)
    q.enqueue("db1", delta_insert("R", a=1), seq=0)
    pending = q.pending_for_source("db1")
    assert pending[0].sign("R", row(a=1)) == 1
    assert pending[1].sign("R", row(a=2)) == 1


def test_unsequenced_enqueues_keep_arrival_order():
    q = UpdateQueue()
    assert q.enqueue("db1", delta_insert("R", a=1)) is True
    assert q.enqueue("db1", delta_insert("R", a=1)) is True  # no seq: no dedup
    assert len(q) == 2
    assert q.duplicates_dropped == 0
    assert q.reordered_arrivals == 0


def test_requeue_front_retries_before_new_arrivals():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1), send_time=1.0, seq=0)
    combined, entries = q.flush()
    assert combined is not None
    q.enqueue("db1", delta_insert("R", a=2), send_time=2.0, seq=1)
    q.requeue_front(entries)
    assert [e.seq for e in q.peek()] == [0, 1]
    assert q.total_requeued == 1
    # A deferred transaction is not "reflected": staleness accounting only
    # advances when the IUP kernel actually ran.
    assert q.last_flushed_send_time("db1") is None
    q.flush()


def test_mark_reflected_records_newest_send_time_per_source():
    q = UpdateQueue()
    q.enqueue("db1", delta_insert("R", a=1), send_time=1.0, seq=0)
    q.enqueue("db1", delta_insert("R", a=2), send_time=3.0, seq=1)
    q.enqueue("db2", delta_insert("S", b=1), send_time=2.0, seq=0)
    _, entries = q.flush()
    q.mark_reflected(entries)
    assert q.last_flushed_send_time("db1") == 3.0
    assert q.last_flushed_send_time("db2") == 2.0
    assert q.last_flushed_send_time("db3") is None


def test_flush_counts_compacted_delta_atoms():
    """deltas_compacted = gross flushed atoms − net atoms handed to the IUP
    (cancellation AND per-source coalescing both count as saved work)."""
    q = UpdateQueue()
    assert q.stats.deltas_compacted == 0
    # +a then -a from one source: 2 gross atoms, 0 net.
    q.enqueue("db1", delta_insert("R", a=1))
    d = SetDelta()
    d.delete("R", row(a=1))
    q.enqueue("db1", d)
    # An unrelated atom from another source: 1 gross, 1 net.
    q.enqueue("db2", delta_insert("S", b=7))
    combined, _ = q.flush()
    assert combined.atom_count() == 1
    assert q.stats.deltas_compacted == 2
    # Nothing compacted when every atom survives the fold.
    q.enqueue("db1", delta_insert("R", a=5))
    q.flush()
    assert q.stats.deltas_compacted == 2
    q.stats.reset()
    assert q.stats.deltas_compacted == 0


def test_compaction_counter_surfaces_through_mediator_stats():
    from repro.workloads import figure1_mediator

    mediator, _ = figure1_mediator("ex21")
    mediator.reset_stats()
    r = row(r1=900_000, r2=1, r3=1, r4=100)
    plus, minus = SetDelta(), SetDelta()
    plus.insert("R", r)
    minus.delete("R", r)
    mediator.enqueue_update("db1", plus)
    mediator.enqueue_update("db1", minus)
    mediator.run_update_transaction()
    assert mediator.stats().deltas_compacted == 2
