"""Unit tests for dynamic federation membership (attach/detach)."""

import pytest

from repro.core import AttachResult, DetachResult
from repro.core.links import DirectLink
from repro.correctness import assert_view_correct
from repro.errors import MediatorError, SourceUnavailableError
from repro.generator import generate_mediator, make_sources

SPEC_BOTH = """
source sa { relation A(a1 key, a2) }
source sb { relation B(b1 key, b2) }
export A_p = project[a1, a2](A)
export B_p = project[b1, b2](B)
export J = project[a1, b1](A_p join[a2 = b1] B_p)
annotate J materialized
"""

SPEC_A_ONLY = """
source sa { relation A(a1 key, a2) }
export A_p = project[a1, a2](A)
annotate A_p materialized
"""

DATA = {
    "sa": {"A": [(1, 10), (2, 20), (3, 10)]},
    "sb": {"B": [(10, 100), (30, 300)]},
}

B_VIEWS = {
    "B_p": "project[b1, b2](B)",
    "J": "project[a1, b1](A_p join[a2 = b1] B_p)",
}


def _single_source_mediator():
    sources = make_sources(SPEC_BOTH, DATA)
    mediator = generate_mediator(SPEC_A_ONLY, {"sa": sources["sa"]})
    return mediator, sources


def test_attach_result_describes_the_extension():
    mediator, sources = _single_source_mediator()
    result = mediator.attach_source(sources["sb"], B_VIEWS)
    assert isinstance(result, AttachResult)
    assert result.source == "sb"
    assert set(result.new_nodes) >= {"B_p", "J"}
    # Unannotated new nodes default to fully materialized, so both new
    # views backfill; J has two matching rows (a2=10 twice against b1=10).
    assert set(result.backfill_nodes) == {"B_p", "J"}
    assert result.backfill_rows == 4
    # New views are exported by default; existing exports survive.
    assert {"A_p", "B_p", "J"} <= set(mediator.vdp.exports)
    assert mediator.query_relation("J").to_sorted_list() == [
        ((1, 10), 1),
        ((3, 10), 1),
    ]
    assert_view_correct(mediator)


def test_attach_twice_raises():
    mediator, sources = _single_source_mediator()
    mediator.attach_source(sources["sb"], B_VIEWS)
    with pytest.raises(MediatorError):
        mediator.attach_source(sources["sb"], B_VIEWS)


def test_detach_unknown_source_raises():
    mediator, _ = _single_source_mediator()
    with pytest.raises(MediatorError):
        mediator.detach_source("nobody")


def test_detach_removes_dependent_subtree():
    sources = make_sources(SPEC_BOTH, DATA)
    mediator = generate_mediator(SPEC_BOTH, sources)
    result = mediator.detach_source("sb")
    assert isinstance(result, DetachResult)
    assert set(result.removed_nodes) == {"B", "B_p", "J"}
    assert "J" not in mediator.vdp.nodes
    assert "sb" not in mediator.sources
    assert set(mediator.vdp.exports) == {"A_p"}
    assert_view_correct(mediator)


def test_detach_auto_exports_newly_maximal_node():
    """When the only export over a surviving view leaves with the detached
    source, the survivor is auto-exported to keep the VDP valid."""
    spec = """
source sa { relation A(a1 key, a2) }
source sb { relation B(b1 key, b2) }
view A_p = project[a1, a2](A)
view B_p = project[b1, b2](B)
export J = project[a1, b1](A_p join[a2 = b1] B_p)
annotate J materialized
"""
    sources = make_sources(spec, DATA)
    mediator = generate_mediator(spec, sources)
    mediator.detach_source("sb")
    assert set(mediator.vdp.exports) == {"A_p"}
    assert mediator.query_relation("A_p").to_sorted_list() == [
        ((1, 10), 1),
        ((2, 20), 1),
        ((3, 10), 1),
    ]


def test_attach_mid_queue_applies_pending_update_exactly_once():
    """An announcement queued before the attach must propagate through the
    extended rule base exactly once — the backfill polls exclude it."""
    mediator, sources = _single_source_mediator()
    sources["sa"].insert("A", a1=4, a2=30)
    mediator.collect_announcements()

    mediator.attach_source(sources["sb"], B_VIEWS)
    mediator.run_update_transaction()
    assert_view_correct(mediator)
    assert mediator.query_relation("J").to_sorted_list() == [
        ((1, 10), 1),
        ((3, 10), 1),
        ((4, 30), 1),
    ]


def test_attach_virtual_only_source_does_not_announce():
    mediator, sources = _single_source_mediator()
    mediator.attach_source(
        sources["sb"], B_VIEWS, annotations={"B_p": "virtual", "J": "virtual"}
    )
    kind = mediator.contributor_kinds["sb"]
    assert not kind.announces
    assert not mediator.links["sb"].announces
    # The materialized contributor still announces.
    assert mediator.contributor_kinds["sa"].announces


SPEC_A_VIRTUAL = """
source sa { relation A(a1 key, a2) }
export A_p = project[a1, a2](A)
annotate A_p virtual
"""


class _DownableLink(DirectLink):
    """A DirectLink with a switchable outage, for failure-path tests."""

    def __init__(self, source, **kwargs):
        super().__init__(source, **kwargs)
        self.down = False

    def is_available(self):
        return not self.down

    def poll_many(self, queries):
        if self.down:
            raise SourceUnavailableError(f"source {self.source_name!r} is down")
        return super().poll_many(queries)


def test_failed_backfill_rolls_back_the_attach():
    """A partner link down mid-backfill must leave the mediator exactly as
    before the attach — no registration, link, queue cursor, structure
    extension, or orphan repository survives — and once the partner is
    back, the identical attach call simply succeeds."""
    sources = make_sources(SPEC_BOTH, DATA)
    mediator = generate_mediator(SPEC_A_VIRTUAL, {"sa": sources["sa"]})
    link = _DownableLink(
        sources["sa"], announcement_sink=mediator.enqueue_update, announces=False
    )
    mediator.links["sa"] = link
    mediator.vap.links = dict(mediator.links)
    nodes_before = set(mediator.vdp.nodes)
    exports_before = set(mediator.vdp.exports)

    # Backfilling J (materialized) needs A_p, which is virtual, so the
    # attach must poll sa — down, so the backfill fails mid-attach.
    link.down = True
    with pytest.raises(SourceUnavailableError):
        mediator.attach_source(sources["sb"], B_VIEWS)

    assert "sb" not in mediator.sources
    assert "sb" not in mediator.links
    assert set(mediator.vdp.nodes) == nodes_before
    assert set(mediator.vdp.exports) == exports_before
    assert not mediator.store.has_repo("B_p")
    assert not mediator.store.has_repo("J")
    assert mediator.queue.reflected_cursor("sb") is None
    assert mediator.resyncing_sources() == ()

    link.down = False
    result = mediator.attach_source(sources["sb"], B_VIEWS)
    assert set(result.backfill_nodes) == {"B_p", "J"}
    assert mediator.query_relation("J").to_sorted_list() == [
        ((1, 10), 1),
        ((3, 10), 1),
    ]
    assert_view_correct(mediator)


def test_reattach_starts_a_fresh_timeline():
    """Queue state of a detached source is forgotten; a re-attach backfills
    the current source state and later commits propagate normally."""
    sources = make_sources(SPEC_BOTH, DATA)
    mediator = generate_mediator(SPEC_BOTH, sources)
    # Leave an undelivered announcement in the queue, then detach.
    sources["sb"].insert("B", b1=20, b2=200)
    mediator.collect_announcements()
    result = mediator.detach_source("sb")
    assert result.dropped_messages == 1

    # Commits while detached accumulate at the source.
    sources["sb"].insert("B", b1=40, b2=400)
    attach = mediator.attach_source(sources["sb"], B_VIEWS)
    assert attach.backfill_rows > 0
    assert mediator.query_relation("B_p").to_sorted_list() == [
        ((10, 100), 1),
        ((20, 200), 1),
        ((30, 300), 1),
        ((40, 400), 1),
    ]
    sources["sb"].insert("B", b1=50, b2=500)
    mediator.refresh()
    assert_view_correct(mediator)
    assert ((50, 500), 1) in mediator.query_relation("B_p").to_sorted_list()
