"""Key-based construction with multiple virtual-attribute-supplying children.

Generalizes Example 2.3: a three-way join export whose virtual attributes
come from TWO different children; the VAP's key-based plan joins the stored
projection with key+attribute projections of both suppliers.
"""

import pytest

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.correctness import assert_view_correct, recompute
from repro.relalg import make_schema
from repro.sources import MemorySource

A = make_schema("A", ["ak", "av", "lnk"], key=["ak"])
B = make_schema("B", ["bk", "bv"], key=["bk"])
C = make_schema("C", ["ck", "cv"], key=["ck"])

VIEWS = {
    "A_x": "A",
    "B_x": "B",
    "C_x": "C",
    # ak, bk, ck are all keys; av/bv/cv are payloads.
    "V": (
        "project[ak, av, bk, bv, ck, cv]"
        "((A_x join[lnk = bk] B_x) join[ak = ck] C_x)"
    ),
}

ANNOTATION = {
    # keys materialized, every payload virtual; children fully virtual.
    "V": "[ak^m, av^v, bk^m, bv^v, ck^m, cv^v]",
    "A_x": "[ak^v, av^v, lnk^v]",
    "B_x": "[bk^v, bv^v]",
    "C_x": "[ck^v, cv^v]",
}


def build():
    sources = {
        "sa": MemorySource(
            "sa", [A], initial={"A": [(i, 10 * i, i % 4) for i in range(8)]}
        ),
        "sb": MemorySource("sb", [B], initial={"B": [(i, 100 + i) for i in range(4)]}),
        "sc": MemorySource("sc", [C], initial={"C": [(i, 200 + i) for i in range(8)]}),
    }
    vdp = build_vdp(
        source_schemas={"A": A, "B": B, "C": C},
        source_of={"A": "sa", "B": "sb", "C": "sc"},
        views=VIEWS,
        exports=["V"],
    )
    mediator = SquirrelMediator(annotate(vdp, ANNOTATION), sources)
    mediator.initialize()
    return mediator, sources


def test_multi_child_key_based_plan():
    mediator, _ = build()
    mediator.reset_stats()
    # av comes from A, cv from C: the key-based plan fetches both suppliers
    # but NOT B (bv is not requested and bk is materialized).
    mediator.query("project[av, cv, bk](V)")
    assert mediator.vap.stats.key_based_used == 1
    assert mediator.links["sa"].poll_count == 1
    assert mediator.links["sc"].poll_count == 1
    assert mediator.links["sb"].poll_count == 0


def test_multi_child_key_based_answers_match_truth():
    mediator, sources = build()
    answer = mediator.query("project[av, cv, bk](V)")
    truth = recompute(mediator.vdp, sources, "V")
    expected = {}
    for r, n in truth.items():
        key = (r["av"], r["cv"], r["bk"])
        expected[key] = expected.get(key, 0) + n
    got = {tuple(r.values_for(["av", "cv", "bk"])): n for r, n in answer.items()}
    assert got == expected


def test_maintenance_under_multi_child_hybrid():
    mediator, sources = build()
    sources["sa"].insert("A", ak=50, av=500, lnk=1)
    sources["sc"].insert("C", ck=50, cv=250)
    mediator.refresh()
    assert_view_correct(mediator)
    sources["sb"].delete("B", bk=1, bv=101)
    mediator.refresh()
    assert_view_correct(mediator)
