"""Unit tests for the mediator's local store."""

import pytest

from repro.core import LocalStore, annotate
from repro.deltas import BagDelta, SetDelta
from repro.errors import MediatorError
from repro.relalg import SetRelation, row
from repro.workloads import figure1_schemas, figure1_vdp


def leaf_values():
    schemas = figure1_schemas()
    return {
        "R": SetRelation.from_values(
            schemas["R"], [(1, 10, 7, 100), (2, 20, 8, 100), (3, 10, 9, 999)]
        ),
        "S": SetRelation.from_values(schemas["S"], [(10, 42, 5), (20, 43, 99)]),
    }


def make_store(overrides=None):
    annotated = annotate(figure1_vdp(), overrides or {})
    store = LocalStore(annotated)
    store.initialize(leaf_values())
    return store


def test_initialize_populates_bottom_up():
    store = make_store()
    assert store.initialized
    assert store.repo("R_p").cardinality() == 2  # r4=100 rows only
    assert store.repo("S_p").cardinality() == 1  # s3<50 row only
    assert store.repo("T").to_sorted_list() == [((1, 7, 10, 42), 1)]


def test_fully_virtual_nodes_store_nothing():
    store = make_store({"R_p": "[r1^v, r2^v, r3^v]"})
    assert not store.has_repo("R_p")
    with pytest.raises(MediatorError):
        store.repo("R_p")
    # T was still computable through the transient value.
    assert store.repo("T").cardinality() == 1


def test_hybrid_node_stores_projection():
    store = make_store({"T": "[r1^m, r3^v, s1^m, s2^v]"})
    t = store.repo("T")
    assert t.schema.attribute_names == ("r1", "s1")
    assert t.to_sorted_list() == [((1, 10), 1)]
    assert store.stored_schema("T").attribute_names == ("r1", "s1")


def test_missing_leaf_value_rejected():
    annotated = annotate(figure1_vdp(), {})
    store = LocalStore(annotated)
    with pytest.raises(MediatorError):
        store.initialize({"R": leaf_values()["R"]})


def test_delta_accumulation_and_clear():
    store = make_store()
    assert not store.has_pending_delta("T")
    d = BagDelta.from_counts("T", {row(r1=9, r3=9, s1=9, s2=9): 1})
    store.accumulate("T", d)
    assert store.has_pending_delta("T")
    assert store.pending_nodes() == ("T",)
    store.clear_delta("T")
    assert not store.has_pending_delta("T")


def test_accumulate_converts_delta_kinds():
    store = make_store()
    sd = SetDelta()
    sd.insert("T", row(r1=9, r3=9, s1=9, s2=9))
    store.accumulate("T", sd)  # set delta into a bag node
    assert store.delta("T").count("T", row(r1=9, r3=9, s1=9, s2=9)) == 1


def test_apply_delta_projects_for_hybrid_nodes():
    store = make_store({"T": "[r1^m, r3^v, s1^m, s2^v]"})
    d = BagDelta.from_counts("T", {row(r1=5, r3=1, s1=10, s2=42): 1})
    store.apply_delta("T", d)
    assert store.repo("T").count(row(r1=5, s1=10)) == 1


def test_apply_delta_on_virtual_node_is_noop():
    store = make_store({"R_p": "[r1^v, r2^v, r3^v]"})
    d = BagDelta.from_counts("R_p", {row(r1=5, r2=1, r3=1): 1})
    store.apply_delta("R_p", d)  # no repo; must not raise


def test_space_accounting():
    store = make_store()
    rows = store.total_stored_rows()
    cells = store.total_stored_cells()
    assert rows == 2 + 1 + 1
    assert cells == 2 * 3 + 1 * 2 + 1 * 4


def test_normalize_set_delta():
    from repro.core import annotate as _annotate
    from repro.workloads import figure4_schemas, figure4_vdp

    annotated = _annotate(figure4_vdp(), {})
    store = LocalStore(annotated)
    schemas = figure4_schemas()
    store.initialize(
        {
            "A": SetRelation.from_values(schemas["A"], [(1, 1)]),
            "B": SetRelation.from_values(schemas["B"], [(2, 10)]),
            "C": SetRelation.from_values(schemas["C"], []),
            "D": SetRelation.from_values(schemas["D"], []),
        }
    )
    g = store.repo("G")
    assert g.contains(row(a1=1, b1=2))
    d = SetDelta()
    d.insert("G", row(a1=1, b1=2))   # redundant insert
    d.delete("G", row(a1=9, b1=9))   # redundant delete
    normalized = store.normalize_set_delta("G", d)
    assert normalized.is_empty()
    # Both dropped atoms count as smashed net-effect compaction.
    assert store.stats.deltas_smashed == 2


def test_accumulate_counts_smashed_atoms():
    store = make_store()
    assert store.stats.deltas_smashed == 0
    r = row(r1=9, r3=9, s1=9, s2=9)
    store.accumulate("T", BagDelta.from_counts("T", {r: 1}))
    assert store.stats.deltas_smashed == 0  # nothing to cancel yet
    store.accumulate("T", BagDelta.from_counts("T", {r: -1}))
    # +1 and -1 annihilate: two gross entries, zero net.
    assert store.stats.deltas_smashed == 2
    assert not store.has_pending_delta("T")


def test_invalid_layout_rejected():
    annotated = annotate(figure1_vdp(), {})
    with pytest.raises(MediatorError):
        LocalStore(annotated, layout="diagonal")


def test_columnar_layout_stores_columnar_repos():
    from repro.relalg import ColumnarRelation

    annotated = annotate(figure1_vdp(), {})
    store = LocalStore(annotated, layout="columnar")
    store.initialize(leaf_values())
    row_store = make_store()
    for name in ("R_p", "S_p", "T"):
        repo = store.repo(name)
        assert isinstance(repo, ColumnarRelation)
        assert repo.to_sorted_list() == row_store.repo(name).to_sorted_list()


def test_storage_metrics_per_node():
    store = make_store()
    metrics = store.storage_metrics()
    by_node = {m["node"]: m for m in metrics}
    assert set(by_node) == {"R_p", "S_p", "T"}
    assert by_node["R_p"]["rows_stored"] == 2
    assert by_node["T"]["rows_stored"] == 1
    assert by_node["T"]["distinct_rows"] == 1
    assert by_node["T"]["estimated_bytes"] > 0
    assert store.total_stored_bytes() == sum(
        m["estimated_bytes"] for m in metrics
    )
