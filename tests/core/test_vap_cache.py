"""The delta-aware VAP temp cache: subsumption, invalidation, ablations.

Unit tests drive :class:`VAPTempCache` directly; integration tests pin the
mediator-level contract (repeated queries poll nothing, updates invalidate
precisely, ablations re-poll); the Hypothesis property interleaves random
updates and queries over random VDPs and demands every cache-served answer
be bit-identical to a cold-cache recompute of the same query.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Annotation,
    AnnotatedVDP,
    SquirrelMediator,
    TempRequest,
    VAPTempCache,
    build_vdp,
)
from repro.core.vap_cache import _narrow_safe
from repro.correctness import assert_view_correct
from repro.deltas import BagDelta
from repro.errors import AnnotationError
from repro.relalg import (
    TRUE,
    lt,
    make_schema,
    parse_expression,
    parse_predicate,
    row,
)
from repro.sources import MemorySource
from repro.workloads import figure1_mediator, figure4_mediator


def request(relation, attrs, pred=TRUE):
    return TempRequest(relation, frozenset(attrs), pred)


def full_t(mediator):
    """A full-width temp for T, built cold (bypassing the cache)."""
    with mediator.vap.cache_bypassed():
        temps = mediator.vap.materialize([request("T", ["r1", "r3", "s1", "s2"])])
    return temps["T"]


# ---------------------------------------------------------------------------
# VAPTempCache unit tests
# ---------------------------------------------------------------------------
def test_exact_hit_returns_private_copy():
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp)
    req = request("T", ["r1", "r3", "s1", "s2"])
    value = full_t(mediator)
    cache.store(req, value)

    served, subsumed = cache.lookup(req)
    assert not subsumed
    assert served == value
    # Mutating a served value must not corrupt the retained entry.
    served.insert(row(r1=-1, r3=-1, s1=-1, s2=-1))
    again, _ = cache.lookup(req)
    assert again == value


def test_weaker_predicate_subsumes_narrower_request():
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp)
    wide = request("T", ["r1", "r3", "s1", "s2"], parse_predicate("r3 < 100"))
    cache.store(wide, full_t(mediator))

    narrow = request("T", ["r1", "r3", "s1", "s2"], parse_predicate("r3 < 40"))
    hit = cache.lookup(narrow)
    assert hit is not None
    served, subsumed = hit
    assert subsumed
    with mediator.vap.cache_bypassed():
        expected = mediator.vap.materialize([narrow])["T"]
    assert served == expected
    # The reverse direction must miss: a narrow entry cannot answer wide.
    cache.clear()
    cache.store(narrow, mediator.vap.materialize([narrow])["T"])
    assert cache.lookup(wide) is None


def test_attr_narrowing_served_for_bag_definitions():
    # T's definition is a non-dedup π over a join — multiplicities survive
    # attribute narrowing, so a full-width entry answers a narrower request.
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp)
    cache.store(request("T", ["r1", "r3", "s1", "s2"]), full_t(mediator))

    narrow = request("T", ["r1", "r3", "s1"], parse_predicate("r3 < 100"))
    hit = cache.lookup(narrow)
    assert hit is not None
    served, subsumed = hit
    assert subsumed
    with mediator.vap.cache_bypassed():
        expected = mediator.vap.materialize([narrow])["T"]
    assert served == expected


def test_narrow_safe_walker_rejects_dedup_projections():
    # The VDP grammar currently forbids dproject in node definitions, so the
    # walker is exercised directly: if the grammar ever admits dedup, the
    # cache must refuse attribute narrowing over those nodes.
    safe = parse_expression("project[x1, x2](select[x3 < 5](X))")
    assert _narrow_safe(safe)
    assert _narrow_safe(parse_expression("X join[x2 = y1] Y"))
    assert not _narrow_safe(parse_expression("dproject[x1, x2](X)"))
    assert not _narrow_safe(
        parse_expression("select[x1 < 3](dproject[x1, x2](X))")
    )


def test_attr_narrowing_refused_for_non_narrow_safe_nodes():
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp)
    cache.store(request("T", ["r1", "r3", "s1", "s2"]), full_t(mediator))
    # Force the memoized verdict a dedup-bearing definition would produce.
    cache._narrow_safe_memo["T"] = False

    # Attribute narrowing is refused...
    assert cache.lookup(request("T", ["r1", "s1"])) is None
    # ...but exact-width hits and predicate-only narrowing still serve.
    assert cache.lookup(request("T", ["r1", "r3", "s1", "s2"])) is not None
    hit = cache.lookup(
        request("T", ["r1", "r3", "s1", "s2"], parse_predicate("r3 < 40"))
    )
    assert hit is not None and hit[1]


def test_store_drops_entries_the_new_one_subsumes():
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp)
    value = full_t(mediator)
    cache.store(request("T", ["r1", "s1"], parse_predicate("r3 < 10")), value)
    cache.store(request("T", ["r3", "s2"], parse_predicate("r3 < 50")), value)
    assert cache.entry_count() == 2  # incomparable attr sets: both kept
    # Wider and weaker than both: they are now redundant.
    cache.store(request("T", ["r1", "r3", "s1", "s2"]), value)
    assert cache.entry_count() == 1


def test_store_caps_entries_per_relation():
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp, max_entries_per_relation=3)
    value = full_t(mediator)
    for bound in range(10, 100, 10):  # all incomparable-ish, none subsumed
        cache.store(
            request("T", ["r1", "s1"], parse_predicate(f"r3 = {bound}")), value
        )
    assert cache.entry_count() == 3


def test_invalidate_kills_touched_lineage_only():
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp)
    value = full_t(mediator)
    cache.store(request("T", ["r1", "r3", "s1", "s2"]), value)
    with mediator.vap.cache_bypassed():
        rp = mediator.vap.materialize([request("R_p", ["r1", "r2", "r3"])])["R_p"]
    cache.store(request("R_p", ["r1", "r2", "r3"]), rp)

    delta = BagDelta()
    delta.insert("S", row(s1=1, s2=2, s3=3))  # passes S_p's s3 < 50 filter
    dropped = cache.invalidate({"S": delta})
    assert dropped == 1
    assert cache.entries_for("T") == ()
    assert len(cache.entries_for("R_p")) == 1  # untouched subtree survives


def test_invalidate_ignores_deltas_outside_leaf_parent_selection():
    mediator, _ = figure1_mediator("ex23")
    cache = VAPTempCache(mediator.vdp)
    cache.store(request("T", ["r1", "r3", "s1", "s2"]), full_t(mediator))

    delta = BagDelta()
    delta.insert("S", row(s1=900, s2=2, s3=90))  # fails S_p's s3 < 50 filter
    assert cache.invalidate({"S": delta}) == 0
    assert len(cache.entries_for("T")) == 1


# ---------------------------------------------------------------------------
# Mediator integration
# ---------------------------------------------------------------------------
def test_repeated_queries_poll_nothing_when_quiescent():
    mediator, _ = figure1_mediator("ex23")
    mediator.reset_stats()
    q = "project[r1, s1](select[r3 < 100](T))"
    first = mediator.query(q)
    polls_after_first = mediator.vap.stats.polls
    assert polls_after_first > 0
    for _ in range(5):
        assert mediator.query(q) == first
    assert mediator.vap.stats.polls == polls_after_first  # flat, not linear
    assert mediator.vap.stats.cache_hits >= 5


def test_narrower_query_served_by_subsumption():
    mediator, _ = figure1_mediator("ex23")
    mediator.query("project[r1, s1](select[r3 < 100](T))")
    polls = mediator.vap.stats.polls
    narrower = mediator.query("project[r1, s1](select[r3 < 40](T))")
    assert mediator.vap.stats.polls == polls  # no new poll
    assert mediator.vap.stats.subsumption_hits >= 1
    with mediator.vap.cache_bypassed():
        assert narrower == mediator.query("project[r1, s1](select[r3 < 40](T))")


def test_update_transaction_invalidates_and_repolls_affected_subtree_only():
    mediator, sources = figure1_mediator("ex23")
    # Warm a T entry and a full-width R_p entry.
    mediator.query("project[r1, s1](select[r3 < 100](T))")
    mediator.query_relation("R_p", ["r1", "r2", "r3"])
    assert len(mediator.vap.cache.entries_for("T")) == 1
    assert len(mediator.vap.cache.entries_for("R_p")) == 1

    sources["db2"].insert("S", s1=999, s2=1, s3=10)  # relevant: s3 < 50
    mediator.refresh()
    # T's lineage includes S: its entry died.  R_p's (R only) survived.
    assert mediator.vap.stats.cache_invalidations >= 1
    assert mediator.vap.cache.entries_for("T") == ()
    assert len(mediator.vap.cache.entries_for("R_p")) == 1
    # An R_p query is still served without a poll...
    polls = mediator.vap.stats.polls
    sources_polled = mediator.vap.stats.polled_sources
    mediator.query_relation("R_p", ["r1", "r2", "r3"])
    assert mediator.vap.stats.polls == polls
    # ...and a query needing S-side virtual attrs re-polls db2 ONLY: the
    # R-side of the reconstruction rides the surviving R_p entry.
    mediator.query("project[r1, s2](select[r3 < 100](T))")
    assert mediator.vap.stats.polls == polls + 1
    assert mediator.vap.stats.polled_sources == sources_polled + 1
    assert_view_correct(mediator)


def test_update_outside_leaf_parent_filter_invalidates_nothing():
    mediator, sources = figure1_mediator("ex23")
    q = "project[r1, s1](select[r3 < 100](T))"
    mediator.query(q)
    assert len(mediator.vap.cache.entries_for("T")) == 1
    sources["db2"].insert("S", s1=998, s2=1, s3=90)  # fails s3 < 50
    mediator.refresh()  # the IUP transaction itself may poll; that's fine
    assert mediator.vap.stats.cache_invalidations == 0
    assert len(mediator.vap.cache.entries_for("T")) == 1  # entry survived
    polls = mediator.vap.stats.polls
    mediator.query(q)
    assert mediator.vap.stats.polls == polls  # still served from cache
    assert_view_correct(mediator)


def test_cache_ablation_polls_linearly():
    mediator, _ = figure1_mediator("ex23", vap_cache_enabled=False)
    mediator.reset_stats()
    q = "project[r1, s1](select[r3 < 100](T))"
    mediator.query(q)
    per_query = mediator.vap.stats.polls
    assert per_query > 0
    for _ in range(4):
        mediator.query(q)
    assert mediator.vap.stats.polls == 5 * per_query
    assert mediator.vap.stats.cache_hits == 0
    assert mediator.vap.cache.entry_count() == 0


def test_no_caching_without_eager_compensation():
    # Without ECA a constructed temp tracks the *source* state, which can
    # run ahead of the materialized state — unsound to retain.
    mediator, _ = figure1_mediator("ex23", eca_enabled=False)
    mediator.query("project[r1, s1](select[r3 < 100](T))")
    assert mediator.vap.cache.entry_count() == 0
    assert mediator.vap.stats.cache_hits == 0


def test_no_caching_over_non_announcing_sources():
    # all_v Figure 4: every source is a pure virtual-contributor — their
    # commits are never announced, so cached temps could go silently stale.
    mediator, sources = figure4_mediator("all_v")
    mediator.query_relation("E")
    assert mediator.vap.cache.entry_count() == 0
    polls = mediator.vap.stats.polls
    sources["dbB"].insert("B", b1=999, b2=11)  # changes E, no announcement
    answer = mediator.query_relation("E")
    assert mediator.vap.stats.polls > polls  # re-polled, saw the new row
    assert any(r["b1"] == 999 for r in answer.rows())


def test_cache_bypassed_context_neither_serves_nor_fills():
    mediator, _ = figure1_mediator("ex23")
    q = "project[r1, s1](select[r3 < 100](T))"
    mediator.query(q)
    entries = mediator.vap.cache.entry_count()
    hits = mediator.vap.stats.cache_hits
    polls = mediator.vap.stats.polls
    with mediator.vap.cache_bypassed():
        mediator.query(q)
    assert mediator.vap.stats.polls > polls  # polled despite warm cache
    assert mediator.vap.stats.cache_hits == hits
    assert mediator.vap.cache.entry_count() == entries


def test_initialize_clears_cache():
    mediator, _ = figure1_mediator("ex23")
    mediator.query("project[r1, s1](select[r3 < 100](T))")
    assert mediator.vap.cache.entry_count() > 0
    mediator.initialize()
    assert mediator.vap.cache.entry_count() == 0


def test_iup_temps_flow_through_cache_and_stay_correct():
    # ex22 keeps R_p virtual while T is materialized: every update
    # transaction requests an R_p temp.  Those fills/hits must never change
    # what the kernel computes.
    mediator, sources = figure1_mediator("ex22")
    for k in range(4):
        sources["db2"].insert("S", s1=900 + k, s2=k, s3=5)
        mediator.refresh()
    assert mediator.vap.stats.cache_hits >= 1  # later transactions reuse R_p
    assert_view_correct(mediator)


# ---------------------------------------------------------------------------
# Hypothesis: cached answers == cold-cache recompute under interleavings
# ---------------------------------------------------------------------------
X = make_schema("X", ["x1", "x2", "x3"], key=["x1"])
Y = make_schema("Y", ["y1", "y2"], key=["y1"])


@st.composite
def vdp_specs(draw):
    shape = draw(st.sampled_from(["join", "union", "difference"]))
    threshold = draw(st.integers(min_value=1, max_value=9))
    views = {"Xp": f"select[x3 < {threshold}](X)", "Yp": "Y"}
    if shape == "join":
        attrs = sorted(
            draw(
                st.sets(
                    st.sampled_from(["x1", "x2", "x3", "y1", "y2"]),
                    min_size=1,
                    max_size=5,
                )
            )
        )
        views["V"] = f"project[{', '.join(attrs)}](Xp join[x2 = y1] Yp)"
    elif shape == "union":
        views["V"] = (
            "project[x1, x2](Xp) union project[x1, x2](rename[y1 = x1, y2 = x2](Yp))"
        )
    else:
        views["V"] = (
            "project[x2](Xp) minus project[x2](rename[y1 = x2](project[y1](Yp)))"
        )
    return shape, views


@st.composite
def annotations_for(draw, annotated_nodes, vdp):
    marks = {}
    for name in annotated_nodes:
        node = vdp.node(name)
        attrs = node.schema.attribute_names
        choice = draw(st.sampled_from(["m", "v", "hybrid"]))
        if choice == "m" or (choice == "hybrid" and len(attrs) < 2):
            marks[name] = Annotation.all_materialized(attrs)
        elif choice == "v":
            marks[name] = Annotation.all_virtual(attrs)
        else:
            split = draw(st.integers(min_value=1, max_value=len(attrs) - 1))
            marks[name] = Annotation.of(
                {a: ("m" if i < split else "v") for i, a in enumerate(attrs)}
            )
    return marks


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["ix", "dx", "iy", "dy", "refresh", "query", "query"]),
        st.integers(min_value=0, max_value=9_999),
    ),
    max_size=18,
)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_cached_answers_match_cold_recompute_under_interleavings(data):
    shape, views = data.draw(vdp_specs())
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=["V"],
    )
    marks = data.draw(annotations_for(vdp.non_leaves(), vdp))
    try:
        annotated = AnnotatedVDP(vdp, marks)
    except AnnotationError:
        return

    rng = random.Random(7)
    sx = MemorySource(
        "sx",
        [X],
        initial={"X": [(i, rng.randrange(10), rng.randrange(10)) for i in range(12)]},
    )
    sy = MemorySource("sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]})
    mediator = SquirrelMediator(annotated, {"sx": sx, "sy": sy})
    mediator.initialize()

    v_attrs = mediator.vdp.node("V").schema.attribute_names
    ops = data.draw(ops_strategy)
    counter = 1000
    for op, arg in ops:
        counter += 1
        if op == "refresh":
            mediator.refresh()
        elif op == "query":
            attrs = v_attrs[: 1 + arg % len(v_attrs)]
            pred = lt(v_attrs[arg % len(v_attrs)], arg) if arg % 3 else TRUE
            cached = mediator.query_relation("V", attrs, pred)
            with mediator.vap.cache_bypassed():
                cold = mediator.query_relation("V", attrs, pred)
            assert cached == cold  # bit-identical: no stale reads, ever
        elif op == "ix":
            sx.insert("X", x1=counter, x2=arg % 10, x3=arg % 13)
        elif op == "iy":
            sy.insert("Y", y1=counter, y2=arg % 10)
        else:
            source, relation = (sx, "X") if op == "dx" else (sy, "Y")
            rows = sorted(
                source.relation(relation).rows(), key=lambda r: sorted(r.items())
            )
            if rows:
                source.delete(relation, **dict(rows[arg % len(rows)]))
    mediator.refresh()
    assert_view_correct(mediator)  # includes its own cached-vs-cold check
