"""Tests for source-side announcement prefiltering (Section 6.2, end)."""

import pytest

from repro.correctness import assert_view_correct
from repro.deltas import LeafParentFilter
from repro.errors import DeltaError
from repro.relalg import parse_expression, row
from repro.workloads import figure1_mediator


def test_from_chain_extracts_selection():
    chain = parse_expression("project[r1, r2, r3](select[r4 = 100](R))")
    filt = LeafParentFilter.from_chain("R_p", chain)
    assert filt.source_relation == "R"
    assert filt.predicate.evaluate(row(r4=100))
    assert not filt.predicate.evaluate(row(r4=200))


def test_from_chain_translates_through_rename():
    chain = parse_expression("select[z < 5](rename[a = z](X))")
    filt = LeafParentFilter.from_chain("X_p", chain)
    assert filt.source_relation == "X"
    assert filt.predicate.evaluate(row(a=3))
    assert not filt.predicate.evaluate(row(a=9))


def test_from_chain_bare_scan_is_true():
    filt = LeafParentFilter.from_chain("X_p", parse_expression("X"))
    assert filt.predicate.evaluate(row(anything=1))


def test_from_chain_rejects_non_chain():
    with pytest.raises(DeltaError):
        LeafParentFilter.from_chain("V", parse_expression("X join[a = b] Y"))


def test_mediator_installs_prefilters_and_stays_correct():
    mediator, sources = figure1_mediator("ex21")
    installed = mediator.install_source_prefilters()
    assert installed == 2  # R_p at db1, S_p at db2

    # An update failing R_p's selection is dropped at the source...
    sources["db1"].insert("R", r1=91_000, r2=1, r3=1, r4=200)
    assert sources["db1"].take_announcement() is None
    # ...a relevant one still flows, and the view stays exact.
    sources["db1"].insert("R", r1=91_001, r2=1, r3=1, r4=100)
    mediator.refresh()
    assert_view_correct(mediator)


def test_prefilter_reduces_transferred_atoms():
    plain_mediator, plain_sources = figure1_mediator("ex21", seed=71)
    filtered_mediator, filtered_sources = figure1_mediator("ex21", seed=71)
    filtered_mediator.install_source_prefilters()

    # 20 updates, most failing the r4 = 100 selection.
    for k in range(20):
        for sources in (plain_sources, filtered_sources):
            sources["db1"].insert(
                "R", r1=92_000 + k, r2=k % 50, r3=k, r4=100 if k % 5 == 0 else 200
            )
    plain_mediator.refresh()
    filtered_mediator.refresh()

    plain_atoms = plain_mediator.queue.total_flushed and plain_mediator.iup.stats.delta_atoms_applied
    assert_view_correct(plain_mediator)
    assert_view_correct(filtered_mediator)
    # Equal final states, fewer transferred atoms with prefiltering.
    assert (
        filtered_mediator.query_relation("T") == plain_mediator.query_relation("T")
    )


@pytest.mark.parametrize("example", ["ex22", "ex23"])
def test_prefilters_compose_with_virtual_annotations(example):
    """Prefiltering only drops atoms irrelevant to every leaf-parent, so it
    is safe even when the leaf-parents themselves are virtual (their deltas
    still flow through during propagation)."""
    mediator, sources = figure1_mediator(example, seed=72)
    mediator.install_source_prefilters()
    s_keys = sorted(r["s1"] for r in sources["db2"].relation("S").rows() if r["s3"] < 50)
    for k in range(10):
        sources["db1"].insert(
            "R",
            r1=98_000 + k,
            r2=s_keys[k % len(s_keys)],
            r3=k,
            r4=100 if k % 2 == 0 else 200,
        )
    sources["db2"].insert("S", s1=98_500, s2=1, s3=5)
    mediator.refresh()
    assert_view_correct(mediator)
    # Queries through the VAP still see exact data.
    got = mediator.query("project[r3, s1](T)")
    assert got.cardinality() > 0


def test_prefilter_skipped_for_non_announcing_sources():
    mediator, _ = figure1_mediator("ex21")
    # Pretend db2 is a pure virtual contributor.
    from repro.sources import ContributorKind

    mediator.contributor_kinds["db2"] = ContributorKind.VIRTUAL
    installed = mediator.install_source_prefilters()
    assert installed == 1  # only db1's filter
