"""Unit tests for the Section 5.2 update-propagation rules."""

import pytest

from repro.core.rules import (
    BagNodeRule,
    SetNodeRule,
    build_rule,
    operand_support_delta,
    spj_delta,
)
from repro.deltas import BagDelta
from repro.errors import VDPError
from repro.relalg import (
    BagRelation,
    SetRelation,
    evaluate,
    make_schema,
    parse_expression,
    row,
)

L = make_schema("L", ["k", "x"])
Rr = make_schema("Rr", ["k", "y"])


def incremental_equals_recompute(definition, catalogs_before, delta, child, child_schema):
    """Check ΔT(rule) == T(after) - T(before) under bag semantics."""
    before = evaluate(definition, catalogs_before, "T")
    after_catalog = {n: r.copy() for n, r in catalogs_before.items()}
    delta.apply_to(after_catalog[child], child)
    after = evaluate(definition, after_catalog, "T")
    expected = BagDelta.diff("T", _as_bag(before), _as_bag(after))
    got = spj_delta(definition, "T", child, delta, catalogs_before, child_schema)
    assert got == expected, f"{got} != {expected}"


def _as_bag(rel):
    out = BagRelation(rel.schema)
    for r, n in rel.items():
        out.insert(r, n)
    return out


def test_spj_rule_select_project():
    definition = parse_expression("project[x](select[x < 10](L))")
    cat = {"L": BagRelation.from_values(L, [(1, 5), (2, 20)])}
    delta = BagDelta.from_counts("L", {row(k=3, x=7): 1, row(k=1, x=5): -1})
    incremental_equals_recompute(definition, cat, delta, "L", L)


def test_spj_rule_join_insert_and_delete():
    definition = parse_expression("L join[k = k2] rename[k = k2](Rr)")
    # rename gives Rr attrs (k2, y) to keep the theta join disjoint
    cat = {
        "L": BagRelation.from_values(L, [(1, "a"), (2, "b")]),
        "Rr": BagRelation.from_values(Rr, [(1, "p"), (2, "q")]),
    }
    delta = BagDelta.from_counts("L", {row(k=1, x="a"): -1, row(k=2, x="z"): 1})
    incremental_equals_recompute(definition, cat, delta, "L", L)


def test_spj_rule_self_join_occurrences():
    """A child appearing twice (footnote 2): each occurrence contributes."""
    definition = parse_expression("L join[x = k2] rename[k = k2, x = x2](L)")
    cat = {"L": BagRelation.from_values(L, [(1, 2), (2, 3)])}
    delta = BagDelta.from_counts("L", {row(k=3, x=1): 1})
    incremental_equals_recompute(definition, cat, delta, "L", L)


def test_spj_rule_union_only_touches_matching_side():
    x = make_schema("X", ["a"])
    y = make_schema("Y", ["a"])
    definition = parse_expression("project[a](X) union project[a](rename[a = a](Y))")
    # Build via build_rule to exercise the union-side dispatch.
    rule = build_rule("T", definition, "X", x)
    assert isinstance(rule, BagNodeRule)
    cat = {
        "X": BagRelation.from_values(x, [(1,)]),
        "Y": BagRelation.from_values(y, [(9,)]),
    }
    delta = BagDelta.from_counts("X", {row(a=2): 1})
    out = rule.fire(delta, cat)
    # Only the insertion flows; Y's contents are NOT re-emitted.
    assert out.counts_for("T") == {row(a=2): 1}
    assert rule.sibling_names() == ()


def test_spj_delta_requires_reference():
    definition = parse_expression("project[x](L)")
    with pytest.raises(VDPError):
        spj_delta(definition, "T", "NOPE", BagDelta(), {}, L)


def test_operand_support_delta_counts_transitions():
    definition = parse_expression("project[x](L)")
    cat = {"L": BagRelation.from_values(L, [(1, 7), (2, 7), (3, 8)])}
    # Removing one of the two x=7 rows: support unchanged; removing x=8: leaves.
    delta = BagDelta.from_counts("L", {row(k=1, x=7): -1, row(k=3, x=8): -1, row(k=4, x=9): 1})
    entering, leaving = operand_support_delta(definition, "L", delta, cat, L)
    assert entering == [row(x=9)]
    assert leaving == [row(x=8)]


def test_set_rule_diff1_corrected_deletion_semantics():
    """The paper prints (ΔT)- = (ΔR1)- ∩ R2 for diff1; the correct rule is
    set-minus — a row leaving R1 leaves T only when NOT in R2."""
    a = make_schema("A", ["v"])
    b = make_schema("B", ["v"])
    definition = parse_expression("project[v](A) minus project[v](B)")
    rule = build_rule("T", definition, "A", a)
    assert isinstance(rule, SetNodeRule)
    cat = {
        "A": BagRelation.from_values(a, [(1,), (2,)]),
        "B": BagRelation.from_values(b, [(2,)]),
    }
    # Row 1 leaves A (was in T since 1 not in B) -> -1 must appear.
    # Row 2 leaves A (was NOT in T, shadowed by B) -> nothing.
    delta = BagDelta.from_counts("A", {row(v=1): -1, row(v=2): -1})
    out = rule.fire(delta, cat)
    assert out.sign("T", row(v=1)) == -1
    assert out.sign("T", row(v=2)) == 0  # the paper's ∩ version would emit -2


def test_set_rule_diff2_both_directions():
    a = make_schema("A", ["v"])
    b = make_schema("B", ["v"])
    definition = parse_expression("project[v](A) minus project[v](B)")
    rule = build_rule("T", definition, "B", b)
    cat = {
        "A": BagRelation.from_values(a, [(1,), (2,)]),
        "B": BagRelation.from_values(b, [(2,)]),
    }
    # 1 enters B: evicts 1 from T.  2 leaves B: re-admits 2 into T.
    delta = BagDelta.from_counts("B", {row(v=1): 1, row(v=2): -1})
    out = rule.fire(delta, cat)
    assert out.sign("T", row(v=1)) == -1
    assert out.sign("T", row(v=2)) == 1


def test_set_rule_ignores_support_preserving_changes():
    a = make_schema("A", ["k", "v"])
    b = make_schema("B", ["v"])
    definition = parse_expression("project[v](A) minus project[v](B)")
    rule = build_rule("T", definition, "A", a)
    cat = {
        "A": BagRelation.from_values(a, [(1, 7), (2, 7)]),
        "B": BagRelation(b),
    }
    # One of two supporting rows for v=7 goes away: support survives.
    delta = BagDelta.from_counts("A", {row(k=1, v=7): -1})
    out = rule.fire(delta, cat)
    assert out.is_empty()


def test_set_rule_sibling_names_cover_both_children():
    a = make_schema("A", ["v"])
    definition = parse_expression("project[v](A) minus project[v](B)")
    rule = build_rule("T", definition, "A", a)
    assert rule.sibling_names() == ("A", "B")
