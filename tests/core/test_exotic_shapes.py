"""End-to-end tests for unusual but legal VDP shapes.

* a difference node whose BOTH operands read the same child;
* a self-join node (the same child referenced twice, via renaming);
* a diamond (one child feeding two parents that merge above).
"""

import random

import pytest

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.correctness import assert_view_correct
from repro.relalg import make_schema
from repro.sources import MemorySource

X = make_schema("X", ["a", "b"], key=["a"])


def deploy(views, exports, initial, overrides=None):
    vdp = build_vdp(
        source_schemas={"X": X},
        source_of={"X": "sx"},
        views=views,
        exports=exports,
    )
    sources = {"sx": MemorySource("sx", [X], initial={"X": initial})}
    mediator = SquirrelMediator(annotate(vdp, overrides or {}), sources)
    mediator.initialize()
    return mediator, sources


def churn(mediator, sources, seed, steps=20):
    rng = random.Random(seed)
    counter = 1000
    for _ in range(steps):
        counter += 1
        if rng.random() < 0.6:
            sources["sx"].insert("X", a=counter, b=rng.randrange(10))
        else:
            rows = sorted(sources["sx"].relation("X").rows(), key=lambda r: sorted(r.items()))
            if rows:
                sources["sx"].delete("X", **dict(rng.choice(rows)))
        if rng.random() < 0.4:
            mediator.refresh()
    mediator.refresh()


def test_difference_with_shared_child():
    """T = π_b σ_{b<6}(Xp) − π_b σ_{b>3}(Xp): one child feeds both operands."""
    views = {
        "Xp": "X",
        "V": "project[b](select[b < 6](Xp)) minus project[b](select[b > 3](Xp))",
    }
    mediator, sources = deploy(views, ["V"], [(1, 2), (2, 5), (3, 8)])
    assert_view_correct(mediator)
    # b=2 is in the left side only; b=5 is in both (subtracted); b=8 neither.
    assert {r["b"] for r, _ in mediator.query_relation("V").items()} == {2}
    churn(mediator, sources, seed=1)
    assert_view_correct(mediator)


def test_self_join_node_end_to_end():
    """V pairs rows of X with rows whose key equals their b value."""
    views = {
        "Xp": "X",
        "V": "Xp join[b = a2] rename[a = a2, b = b2](Xp)",
    }
    mediator, sources = deploy(views, ["V"], [(1, 2), (2, 3), (3, 1)])
    assert_view_correct(mediator)
    assert mediator.query_relation("V").cardinality() == 3  # 1→2, 2→3, 3→1
    churn(mediator, sources, seed=2)
    assert_view_correct(mediator)


def test_diamond_shape():
    """Xp feeds two intermediate selections that re-merge via union."""
    views = {
        "Xp": "X",
        "low": "project[a](select[b < 5](Xp))",
        "high": "project[a](select[b >= 5](Xp))",
        "V": "project[a](low) union project[a](high)",
    }
    mediator, sources = deploy(views, ["V"], [(1, 2), (2, 7)])
    assert_view_correct(mediator)
    assert mediator.query_relation("V").cardinality() == 2
    churn(mediator, sources, seed=3)
    assert_view_correct(mediator)


def test_diamond_with_virtual_arms():
    views = {
        "Xp": "X",
        "low": "project[a](select[b < 5](Xp))",
        "high": "project[a](select[b >= 5](Xp))",
        "V": "project[a](low) union project[a](high)",
    }
    mediator, sources = deploy(
        views,
        ["V"],
        [(1, 2), (2, 7)],
        overrides={"low": "[a^v]", "high": "[a^v]"},
    )
    assert_view_correct(mediator)
    churn(mediator, sources, seed=4)
    assert_view_correct(mediator)


def test_self_join_with_virtual_node():
    views = {
        "Xp": "X",
        "V": "Xp join[b = a2] rename[a = a2, b = b2](Xp)",
    }
    mediator, sources = deploy(
        views,
        ["V"],
        [(1, 2), (2, 3), (3, 1)],
        overrides={"Xp": "[a^v, b^v]"},
    )
    assert_view_correct(mediator)
    churn(mediator, sources, seed=5, steps=12)
    assert_view_correct(mediator)
