"""Churned ≡ static: the headline dynamic-membership property.

After *any* interleaving of joins, leaves, source commits, and update
transactions, the churned mediator must be indistinguishable from a
mediator freshly generated over the final member set and the same live
sources — every export equal, every materialized repository equal to a
from-scratch rebuild.  The Hypothesis property drives ≥100 randomized
interleavings; the targeted tests pin the two nastiest interactions
(detach of a source the IUP is currently deferred on, and re-attach of a
source that kept committing while detached).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.links import DirectLink
from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.errors import SourceUnavailableError
from repro.generator import generate_mediator, make_federation, make_sources
from repro.generator.federation import KEY_DOMAIN


def _build(fed, members):
    members = sorted(members)
    sources = make_sources(fed.spec_text_for(members), fed.initial_data(members))
    mediator = generate_mediator(fed.spec_text_for(members), sources)
    return mediator, sources


def _attach(mediator, fed, sources, members, name):
    if name not in sources:
        sources.update(
            make_sources(fed.spec_text_for([name]), fed.initial_data([name]))
        )
    views, annotations = fed.attach_payload(name, members)
    return mediator.attach_source(sources[name], views, annotations)


def _insert(fed, sources, name, key):
    k, a, b = fed.attributes(name)
    sources[name].insert(
        fed.relation(name), **{k: key, a: key % KEY_DOMAIN, b: key}
    )


def _assert_matches_static(mediator, fed, sources, members):
    members = sorted(members)
    fresh = generate_mediator(
        fed.spec_text_for(members), {n: sources[n] for n in members}
    )
    assert set(mediator.vdp.exports) == set(fresh.vdp.exports)
    for export in sorted(fresh.vdp.exports):
        assert mediator.query_relation(export) == fresh.query_relation(export), export


@given(
    n=st.integers(min_value=4, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_churned_equals_static(n, seed, data):
    fed = make_federation(n, seed=seed)
    names = list(fed.names)
    members = set(names[: max(2, n // 2)])
    mediator, sources = _build(fed, members)
    fresh_key = KEY_DOMAIN
    ops = data.draw(
        st.lists(
            st.sampled_from(["join", "leave", "update", "txn"]),
            min_size=1,
            max_size=8,
        ),
        label="ops",
    )
    for op in ops:
        if op == "join":
            absent = sorted(set(names) - members)
            if not absent:
                continue
            name = data.draw(st.sampled_from(absent), label="joiner")
            _attach(mediator, fed, sources, sorted(members), name)
            members.add(name)
        elif op == "leave":
            if len(members) <= 2:
                continue
            name = data.draw(st.sampled_from(sorted(members)), label="leaver")
            mediator.detach_source(name)
            members.discard(name)
        elif op == "update":
            # Detached sources keep committing too — the divergence must
            # be backfilled if they later rejoin.
            name = data.draw(st.sampled_from(sorted(sources)), label="updated")
            _insert(fed, sources, name, fresh_key)
            fresh_key += 1
        else:
            mediator.run_update_transaction()
    mediator.refresh()
    assert_view_correct(mediator)
    assert_materialized_correct(mediator)
    _assert_matches_static(mediator, fed, sources, members)


class _FlakyLink(DirectLink):
    """A DirectLink with a harness-controlled outage switch."""

    supports_parallel_poll = False

    def __init__(self, source, **kwargs):
        super().__init__(source, **kwargs)
        self.down = False

    def is_available(self):
        return not self.down

    def poll_many(self, queries):
        if self.down:
            raise SourceUnavailableError(
                f"source {self.source_name!r} is down for the test"
            )
        return super().poll_many(queries)


def _find_fed_with_virtual_join_endpoint():
    """A federation holding a join whose one endpoint is a bulk (fully
    virtual) source and whose other endpoint announces."""
    for seed in range(64):
        fed = make_federation(8, seed=seed)
        for left, right in fed.joins:
            for down in (left, right):
                other = right if down == left else left
                if fed.source(down).tier == "bulk" and fed.source(other).tier != "bulk":
                    return fed, down, other
    raise AssertionError("no suitable federation found in the seed sweep")


def test_detach_during_deferred_iup_converges():
    """Detaching the very source an update transaction is deferred on must
    not wedge the IUP: the departed source's requeued messages are
    forgotten with it, and the next transaction applies the survivors."""
    fed, down, other = _find_fed_with_virtual_join_endpoint()
    members = set(fed.names)
    mediator, sources = _build(fed, members)
    flaky = _FlakyLink(sources[down], announces=False)
    mediator.links[down] = flaky
    mediator.vap.links = dict(mediator.links)

    _insert(fed, sources, other, KEY_DOMAIN + 1)
    mediator.collect_announcements()
    flaky.down = True
    result = mediator.run_update_transaction()
    assert result.deferred, "the outage must defer the transaction"

    mediator.detach_source(down)
    members.discard(down)
    result = mediator.run_update_transaction()
    assert not result.deferred
    mediator.refresh()
    assert_view_correct(mediator)
    _assert_matches_static(mediator, fed, sources, members)


def _find_fed_with_materialized_joiner():
    """A federation with a curated (fully materialized) source that
    participates in at least one join — re-attaching it must backfill."""
    for seed in range(64):
        fed = make_federation(8, seed=seed)
        for s in fed.sources:
            if s.tier == "curated" and fed.joins_of(s.name, fed.names):
                return fed, s.name
    raise AssertionError("no suitable federation found in the seed sweep")


def test_reattach_backfills_commits_made_while_detached():
    fed, victim = _find_fed_with_materialized_joiner()
    members = set(fed.names)
    mediator, sources = _build(fed, members)

    mediator.detach_source(victim)
    members.discard(victim)
    mediator.refresh()
    _assert_matches_static(mediator, fed, sources, members)

    # The detached source keeps committing on its own timeline.
    for key in (KEY_DOMAIN + 10, KEY_DOMAIN + 11):
        _insert(fed, sources, victim, key)

    views, annotations = fed.attach_payload(victim, sorted(members))
    result = mediator.attach_source(sources[victim], views, annotations)
    members.add(victim)
    assert result.backfill_rows > 0
    assert fed.leaf_parent(victim) in result.backfill_nodes
    # The backfill reflects the divergence committed while detached.
    leaf = mediator.query_relation(fed.leaf_parent(victim))
    assert leaf.cardinality() == len(fed.initial_rows(victim)) + 2
    mediator.refresh()
    assert_view_correct(mediator)
    _assert_matches_static(mediator, fed, sources, members)

    # The re-attached source's timeline is fresh: a post-rejoin commit
    # propagates like any other announcement.
    _insert(fed, sources, victim, KEY_DOMAIN + 12)
    mediator.refresh()
    _assert_matches_static(mediator, fed, sources, members)
