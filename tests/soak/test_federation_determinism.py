"""Determinism contract of the federation/churn generator.

Everything the soak suite replays — the federation topology, the spec
text for any member subset, the initial data, the churn schedule — must
be a pure function of ``(seed, inputs)``: same seed twice, byte-identical
artifacts.  Creation order and random draws must never depend on dict or
set iteration order.
"""

import pytest

from repro.generator import make_federation, make_sources, plan_events
from repro.generator.federation import TIERS


def test_same_seed_same_federation():
    assert make_federation(40, seed=11) == make_federation(40, seed=11)


def test_different_seeds_differ():
    assert (
        make_federation(40, seed=11).spec_text_for()
        != make_federation(40, seed=12).spec_text_for()
    )


def test_spec_text_byte_identical_across_runs():
    fed = make_federation(30, seed=5)
    twin = make_federation(30, seed=5)
    assert fed.spec_text_for() == twin.spec_text_for()
    subset = list(fed.names)[::3]
    # Input order must not matter either: members are a set, the text is
    # emitted in sorted order.
    assert fed.spec_text_for(subset) == twin.spec_text_for(reversed(subset))


def test_spec_text_rejects_unknown_members():
    fed = make_federation(6, seed=0)
    with pytest.raises(KeyError):
        fed.spec_text_for(["s000", "nobody"])


def test_all_tiers_appear_and_volumes_track_tier():
    fed = make_federation(60, seed=2)
    seen = {s.tier for s in fed.sources}
    assert seen == set(TIERS)
    for s in fed.sources:
        assert len(fed.initial_rows(s.name)) == s.rows


def test_initial_rows_independent_of_federation_size():
    """A source carries the same data into every federation size — the
    backfill-cost benchmark (BENCH_soak) depends on exactly this."""
    small = make_federation(10, seed=7)
    large = make_federation(200, seed=7)
    for name in small.names:
        assert small.initial_rows(name) == large.initial_rows(name)
        assert small.source(name) == large.source(name)


def test_make_sources_deterministic_and_sorted():
    fed = make_federation(12, seed=3)
    first = make_sources(fed.spec_text_for(), fed.initial_data())
    second = make_sources(fed.spec_text_for(), fed.initial_data())
    assert list(first) == sorted(first)
    assert list(first) == list(second)
    for name in first:
        state_a = first[name].state()
        state_b = second[name].state()
        assert set(state_a) == set(state_b)
        for relation in state_a:
            assert (
                state_a[relation].to_sorted_list()
                == state_b[relation].to_sorted_list()
            )


def test_plan_events_deterministic():
    fed = make_federation(25, seed=9)
    assert plan_events(fed, 30) == plan_events(make_federation(25, seed=9), 30)


def test_plan_final_members_matches_simulation():
    fed = make_federation(25, seed=9)
    plan = plan_events(fed, 40)
    members = set(plan.initial_members)
    for event in plan.events:
        if event.kind == "join":
            assert event.source not in members
            members.add(event.source)
        elif event.kind == "leave":
            assert event.source in members
            members.discard(event.source)
        elif event.kind in ("outage", "update"):
            # outages target current members; updates may also target
            # detached sources (they keep committing while away).
            if event.kind == "outage":
                assert event.source in members
    assert tuple(sorted(members)) == plan.final_members()


def test_plan_never_schedules_a_join_during_an_outage():
    """A join's backfill may need to poll a virtual-contributor partner,
    so the planner must keep joins out of active outage windows."""
    fed = make_federation(30, seed=4)
    plan = plan_events(fed, 60, outage_prob=0.5, join_prob=0.5)
    outage_until = {}
    saw_overlap_opportunity = False
    for event in plan.events:  # events are appended in execution order
        if event.kind == "outage":
            outage_until[event.source] = event.step + event.duration
        elif event.kind == "join":
            assert all(end <= event.step for end in outage_until.values())
        if any(end > event.step for end in outage_until.values()):
            saw_overlap_opportunity = True
    assert saw_overlap_opportunity, "plan produced no outage windows to dodge"
