"""The soak harness end to end: seeded chaos, crashes, and the report.

Quick bounded runs stay in tier-1; the medium/large federations carry the
``soak`` marker and run in the dedicated CI job (``pytest -m soak``).
"""

import json

import pytest

from repro.soak import SoakConfig, run_soak, slo_report, write_slo_report
from repro.soak.harness import SoakHarness


def test_small_soak_run_converges():
    result = run_soak(SoakConfig(sources=8, seed=3, steps=12, checkpoint_every=6))
    assert result.ok, (result.convergence_violations, result.slo_violations)
    assert result.steps_run == 12
    assert result.final_members
    assert result.stats.updates_applied > 0
    assert result.stats.messages_sent > 0
    assert result.stats.convergence_checks == 2
    assert len(result.checkpoints) == 2
    assert all(cp["violations"] == 0 for cp in result.checkpoints)
    # Soak counters are exported through the mediator's metrics registry.
    assert result.metrics.get("soak.updates_applied") == result.stats.updates_applied


def test_soak_with_crash_points_recovers_and_converges():
    result = run_soak(
        SoakConfig(
            sources=8,
            seed=5,
            steps=12,
            checkpoint_every=6,
            crash_points=((2, "post-wal-append"), (6, "torn-wal")),
        )
    )
    assert result.ok, (result.convergence_violations, result.slo_violations)
    assert result.stats.crashes >= 1
    assert result.stats.recoveries == result.stats.crashes


def test_soak_is_deterministic_for_a_seed():
    config = SoakConfig(sources=8, seed=9, steps=10, checkpoint_every=5)
    first = run_soak(config)
    second = run_soak(config)
    assert first.final_members == second.final_members
    assert first.stats == second.stats
    assert first.worst_staleness == second.worst_staleness


def test_join_while_partner_link_down_waits_out_outage_and_converges():
    """A join scheduled while a partner link is down (the crash/recovery
    timing the harness's SourceUnavailableError branch models): the first
    attach attempt fails mid-backfill and rolls back, the harness clears
    the outage and retries, and the federation still converges."""
    harness = SoakHarness(SoakConfig(sources=10, seed=0, steps=4, checkpoint_every=2))
    # s001 joins against s000, whose leaf parent is fully virtual (bulk
    # tier) — backfilling the join view must poll s000, which is down.
    joiner, partner = "s001", "s000"
    assert {joiner, partner} <= harness.members
    assert harness.fed.source(partner).tier == "bulk"
    assert (partner, joiner) in harness.fed.joins or (joiner, partner) in harness.fed.joins

    harness._detach(joiner)
    harness.links[partner].down_until = harness.step + 10_000
    harness._attach(joiner)

    # down_until is cleared for *partner* links only by the retry branch,
    # so this proves the first attempt failed and the retry succeeded.
    assert harness.links[partner].down_until is None
    assert joiner in harness.members
    assert harness.stats.attaches == 1
    harness._check_convergence()
    assert not harness.result.convergence_violations


def test_slo_report_roundtrip(tmp_path):
    result = run_soak(SoakConfig(sources=6, seed=1, steps=8, checkpoint_every=4))
    path = tmp_path / "slo.json"
    document = write_slo_report(result, str(path))
    loaded = json.loads(path.read_text())
    assert loaded == document
    assert loaded["kind"] == "soak-slo-report"
    assert loaded["ok"] is True
    assert loaded["steps_run"] == 8
    assert loaded["freshness"]["bound"] == result.config.staleness_bound
    assert loaded["counters"]["updates_applied"] == result.stats.updates_applied
    assert loaded["convergence"]["checkpoints"]
    assert sorted(loaded["final_members"]) == list(result.final_members)
    assert slo_report(result) == document


@pytest.mark.soak
def test_soak_medium_federation_with_churn_and_crashes():
    result = run_soak(
        SoakConfig(
            sources=60,
            seed=7,
            steps=30,
            checkpoint_every=10,
            crash_points=(
                (5, "post-wal-append"),
                (12, "torn-wal"),
                (20, "mid-checkpoint"),
            ),
        )
    )
    assert result.ok, (result.convergence_violations, result.slo_violations)
    assert result.stats.attaches > 0
    assert result.stats.detaches > 0
    assert result.stats.recoveries >= 1


@pytest.mark.soak
def test_soak_large_federation_acceptance():
    """The ISSUE 6 acceptance run: 200 sources, seed 7, zero violations."""
    result = run_soak(SoakConfig(sources=200, seed=7))
    assert result.ok, (result.convergence_violations, result.slo_violations)
    assert result.stats.convergence_checks == 4
    assert result.stats.attaches > 0
    assert result.stats.backfill_rows > 0


def test_sharded_soak_converges_and_matches_serial():
    """The churn harness against a sharded mediator: dynamic attach/detach
    repartitions repositories (the plan is re-inferred per structural
    swap), convergence checkpoints still pass, the freshness SLO holds,
    and the final state matches the serial run of the same seed."""
    serial = run_soak(SoakConfig(sources=8, seed=3, steps=12, checkpoint_every=6))
    sharded = run_soak(
        SoakConfig(sources=8, seed=3, steps=12, checkpoint_every=6, shards=4)
    )
    assert sharded.ok, (sharded.convergence_violations, sharded.slo_violations)
    assert sharded.final_members == serial.final_members
    assert sharded.worst_staleness == serial.worst_staleness
    assert all(cp["violations"] == 0 for cp in sharded.checkpoints)
    # The parallel kernel actually ran: shard batches were scheduled.
    assert sharded.metrics.get("iup.shard_batches", 0) > 0


def test_sharded_soak_with_crashes_recovers():
    """Crash/recovery under sharding: checkpoints encode partitioned
    repositories, recovery reinstalls them through the shard plan."""
    result = run_soak(
        SoakConfig(
            sources=8,
            seed=5,
            steps=12,
            checkpoint_every=6,
            crash_points=((2, "post-wal-append"), (6, "torn-wal")),
            shards=3,
        )
    )
    assert result.ok, (result.convergence_violations, result.slo_violations)
    assert result.stats.crashes >= 1
    assert result.stats.recoveries == result.stats.crashes


def test_columnar_soak_converges_and_matches_row():
    """The churn harness over columnar repositories: attach/detach swaps
    rebuild struct-of-arrays repos, convergence checkpoints pass, and the
    run is observably identical to the row-layout run of the same seed."""
    row = run_soak(SoakConfig(sources=8, seed=3, steps=12, checkpoint_every=6))
    columnar = run_soak(
        SoakConfig(sources=8, seed=3, steps=12, checkpoint_every=6, layout="columnar")
    )
    assert columnar.ok, (columnar.convergence_violations, columnar.slo_violations)
    assert columnar.final_members == row.final_members
    assert columnar.worst_staleness == row.worst_staleness
    assert all(cp["violations"] == 0 for cp in columnar.checkpoints)
    assert columnar.stats.updates_applied == row.stats.updates_applied
