"""Soak-run telemetry round trip: the sharded + columnar federation streams
schema-valid JSONL (trace and metrics), a cost profile, and zero burn-rate
alerts under the default Theorem 7.2 bound."""

import json
import pathlib

from repro.obs import validate_jsonl_file, validate_telemetry_file
from repro.soak import SoakConfig, run_soak, slo_report


def test_sharded_columnar_soak_telemetry_round_trip(tmp_path):
    telemetry_dir = tmp_path / "telemetry"
    config = SoakConfig(
        sources=8,
        seed=3,
        steps=12,
        checkpoint_every=6,
        shards=2,
        layout="columnar",
        telemetry_dir=str(telemetry_dir),
    )
    result = run_soak(config)
    assert result.ok, (result.convergence_violations, result.slo_violations)
    assert result.telemetry_dir == str(telemetry_dir)
    assert result.alerts == []  # a healthy run never pages

    # The trace round-trips through the checked-in schema, including the
    # profiler/telemetry events added in this PR.
    trace_path = telemetry_dir / "trace.jsonl"
    assert validate_jsonl_file(trace_path) > 0
    names = {
        json.loads(line)["name"] for line in trace_path.read_text().splitlines()
    }
    assert "metrics_snapshot" in names  # the pipeline mirrors into the trace
    assert "update_txn" in names

    # The metrics stream round-trips too: meta header, one snapshot per
    # step (cadence 1), the final cost profile, and the close() sample.
    metrics_path = telemetry_dir / "metrics.jsonl"
    count = validate_telemetry_file(metrics_path)
    records = [json.loads(line) for line in metrics_path.read_text().splitlines()]
    assert count == len(records) == config.steps + 3
    assert records[0]["kind"] == "meta"
    assert records[0]["bound"] == config.staleness_bound
    kinds = [r["kind"] for r in records]
    assert kinds.count("metrics") == config.steps + 1
    assert kinds.count("alert") == 0
    # Snapshots carry the registry counters and the pipeline's instruments.
    final = [r for r in records if r["kind"] == "metrics"][-1]
    assert final["metrics"]["soak.updates_applied"] == result.stats.updates_applied
    assert final["metrics"]["telemetry.alerts"] == 0
    assert final["metrics"]["telemetry.staleness"]["count"] > 0

    # The profile lands both in the stream and as its own artifact.
    (profile_record,) = [r for r in records if r["kind"] == "profile"]
    document = json.loads((telemetry_dir / "profile.json").read_text())
    assert document["kind"] == "cost-profile"
    assert profile_record["profile"] == document
    assert document["nodes"], "the soak propagated through no nodes?"
    assert document["txns"]["count"] > 0
    assert document["attribute_costs"]

    # The SLO report points at the artifacts and carries the alert list.
    report = slo_report(result)
    assert report["telemetry_dir"] == str(telemetry_dir)
    assert report["freshness"]["burn_rate_alerts"] == []


def test_soak_without_telemetry_leaves_surfaces_empty(tmp_path):
    result = run_soak(SoakConfig(sources=6, seed=1, steps=8, checkpoint_every=4))
    assert result.telemetry_dir is None
    assert result.alerts == []
    assert slo_report(result)["telemetry_dir"] is None
    assert not list(pathlib.Path(tmp_path).iterdir())


def test_soak_telemetry_streams_are_structurally_deterministic(tmp_path):
    """Two runs of the same seed emit the same record structure (kinds,
    steps, counter values) — only wall-clock readings may differ."""
    results = []
    for tag in ("a", "b"):
        config = SoakConfig(
            sources=8,
            seed=5,
            steps=10,
            checkpoint_every=5,
            telemetry_dir=str(tmp_path / tag),
        )
        run_soak(config)
        path = tmp_path / tag / "metrics.jsonl"
        records = [json.loads(line) for line in path.read_text().splitlines()]
        results.append(
            [
                (
                    r["kind"],
                    r["step"],
                    r.get("metrics", {}).get("soak.updates_applied"),
                    r.get("metrics", {}).get("iup.rules_fired"),
                )
                for r in records
            ]
        )
    assert results[0] == results[1]
