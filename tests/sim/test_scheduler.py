"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, Clock, EventQueue, Simulator


def test_clock_monotonic():
    c = Clock()
    c.advance_to(5.0)
    assert c.now == 5.0
    with pytest.raises(SimulationError):
        c.advance_to(4.0)


def test_event_queue_deterministic_order():
    q = EventQueue()
    order = []
    q.push(1.0, lambda: order.append("b"))
    q.push(0.5, lambda: order.append("a"))
    q.push(1.0, lambda: order.append("c"))  # same time: FIFO by seq
    while True:
        e = q.pop()
        if e is None:
            break
        e.action()
    assert order == ["a", "b", "c"]


def test_event_cancellation():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    e.cancel()
    assert q.pop() is None
    assert len(q) == 0


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    e.cancel()
    assert q.peek_time() == 2.0


def test_simulator_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(("x", sim.now)))
    sim.schedule(1.0, lambda: seen.append(("y", sim.now)))
    sim.run()
    assert seen == [("y", 1.0), ("x", 2.0)]


def test_schedule_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(-1, lambda: None)


def test_run_until_bounded():
    sim = Simulator()
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run_until(3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_every_start_offset():
    sim = Simulator()
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_offset=0.5)
    sim.run_until(5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_every_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0, lambda: None)


def test_run_max_events_guard():
    sim = Simulator()
    sim.every(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.run(max_events=10)


def test_channel_fifo_delivery():
    sim = Simulator()
    received = []
    ch = Channel(sim, delay=1.0, deliver=lambda msg, st: received.append((msg, st, sim.now)))
    sim.schedule(0.0, lambda: ch.send("first"))
    sim.schedule(0.5, lambda: ch.send("second"))
    sim.run()
    assert received == [("first", 0.0, 1.0), ("second", 0.5, 1.5)]
    assert ch.messages_sent == 2
    assert ch.messages_delivered == 2


def test_channel_order_preserved_when_delay_shrinks():
    sim = Simulator()
    received = []
    ch = Channel(sim, delay=5.0, deliver=lambda msg, st: received.append(msg))

    def send_first():
        ch.send("first")
        ch.delay = 0.1  # later message would overtake without FIFO clamping

    sim.schedule(0.0, send_first)
    sim.schedule(0.5, lambda: ch.send("second"))
    sim.run()
    assert received == ["first", "second"]


def test_channel_expedite_delivers_in_flight_in_order():
    sim = Simulator()
    received = []
    ch = Channel(sim, delay=10.0, deliver=lambda msg, st: received.append(msg))

    def act():
        ch.send("a")
        ch.send("b")
        assert ch.in_flight_count() == 2
        delivered = ch.expedite()
        assert delivered == 2

    sim.schedule(1.0, act)
    sim.run()
    assert received == ["a", "b"]
    # no duplicate delivery from the original scheduled events
    assert ch.messages_delivered == 2
