"""Unit tests for delay profiles and the Theorem 7.2 freshness bound."""

import pytest

from repro.errors import SimulationError
from repro.sim import DelayProfile, EnvironmentDelays


def test_delay_profile_validation():
    with pytest.raises(SimulationError):
        DelayProfile(ann_delay=-1)


def test_uniform_constructor():
    env = EnvironmentDelays.uniform(["a", "b"], ann_delay=1, comm_delay=2)
    assert env.profile("a").ann_delay == 1
    assert env.profile("b").comm_delay == 2
    with pytest.raises(SimulationError):
        env.profile("zzz")


def test_polling_overhead_sums_roundtrips():
    env = EnvironmentDelays(
        {
            "h": DelayProfile(comm_delay=2, q_proc_delay=3),
            "v": DelayProfile(comm_delay=1, q_proc_delay=4),
        }
    )
    assert env.polling_overhead(["h", "v"]) == 10
    assert env.polling_overhead([]) == 0


def test_freshness_bound_matches_theorem_formula():
    env = EnvironmentDelays(
        {
            "m": DelayProfile(ann_delay=5, comm_delay=1, q_proc_delay=0),
            "h": DelayProfile(ann_delay=2, comm_delay=3, q_proc_delay=4),
            "v": DelayProfile(ann_delay=0, comm_delay=1, q_proc_delay=2),
        },
        u_hold_delay_med=10,
        u_proc_delay_med=1,
        q_proc_delay_med=0.5,
    )
    bound = env.freshness_bound(["m"], ["h"], ["v"])
    # poll term: (4+3) for h + (2+1) for v + 0.5 mediator-side = 10.5
    poll_term = (4 + 3) + (2 + 1) + 0.5
    assert bound["m"] == pytest.approx(5 + 1 + 10 + 1 + poll_term)
    assert bound["h"] == pytest.approx(2 + 3 + 10 + 1 + poll_term)
    assert bound["v"] == pytest.approx(poll_term)


def test_materialized_only_bound_is_tighter():
    env = EnvironmentDelays.uniform(
        ["m"], ann_delay=5, comm_delay=1, q_proc_delay=0,
        u_hold_delay_med=10, u_proc_delay_med=1, q_proc_delay_med=2,
    )
    tight = env.materialized_only_bound("m")
    assert tight == 17
    loose = env.freshness_bound(["m"], [], [])["m"]
    assert tight <= loose
