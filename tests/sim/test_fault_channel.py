"""Faulty-channel semantics, including the expedite/drop regression.

``Channel.expedite`` is an *early arrival* of in-flight messages (delays
are upper bounds), used on the poll path so a poll answer is ordered after
all earlier announcements.  It must never become a *resurrection*: a
message the fault plan condemned — dropped at send time, or swallowed by
an active outage window — stays lost even when the channel is expedited
mid-flight, and :meth:`in_flight_count` must not count such ghosts.
"""

from repro.faults import ChannelFaults, FaultPlan, OutageWindow
from repro.sim import Channel, Simulator


def make_channel(faults, seed=0, delay=1.0, **plan_kwargs):
    plan = FaultPlan(seed=seed, channels={"ch": faults}, **plan_kwargs)
    sim = Simulator()
    received = []
    channel = Channel(
        sim, delay, deliver=lambda m, st: received.append((m, st)), name="ch", plan=plan
    )
    return sim, channel, received


def test_expedite_must_not_deliver_a_plan_dropped_message():
    """The regression: a dropped message stays visible as an in-transit
    record until its nominal delivery time; expediting during that window
    used to hand it to the mediator anyway."""
    sim, channel, received = make_channel(ChannelFaults(drop_rate=1.0))
    channel.send("condemned")
    assert channel.messages_dropped == 1
    # The loss record exists, but it is not an eligible in-flight message.
    assert channel._in_flight and channel.in_flight_count() == 0
    assert channel.expedite() == 0
    assert received == []
    sim.run_until(5.0)
    assert received == []
    assert channel.messages_delivered == 0


def test_expedite_delivers_survivors_in_fifo_send_order():
    # drop_rate=1 until attempt 1: send healthy copies via attempt=1.
    sim, channel, received = make_channel(
        ChannelFaults(drop_rate=1.0), fault_free_after_attempt=1
    )
    channel.send("lost", attempt=0)
    channel.send("a", attempt=1)
    channel.send("b", attempt=1)
    assert channel.in_flight_count() == 2
    assert channel.expedite() == 2
    assert [m for m, _ in received] == ["a", "b"]
    assert channel.messages_dropped == 1
    # Nothing arrives later: the loss record was discarded, not revived.
    sim.run_until(10.0)
    assert [m for m, _ in received] == ["a", "b"]


def test_expedite_during_outage_loses_in_flight_messages():
    """A crashed link swallows what is on the wire: expediting while the
    outage window is open counts the in-flight messages as dropped."""
    sim, channel, received = make_channel(
        ChannelFaults(outages=(OutageWindow(0.5, 2.0),)), delay=1.0
    )
    channel.send("doomed")  # sent healthy at t=0, would arrive at t=1.0
    sim.run_until(0.6)  # now inside the outage
    assert channel.in_flight_count() == 1
    assert channel.expedite() == 0
    assert received == []
    assert channel.messages_dropped == 1
    assert channel.in_flight_count() == 0


def test_delivery_time_outage_swallows_healthy_send():
    sim, channel, received = make_channel(
        ChannelFaults(outages=(OutageWindow(0.5, 2.0),)), delay=1.0
    )
    channel.send("doomed")  # healthy at send, arrival t=1.0 is in-window
    sim.run_until(5.0)
    assert received == []
    assert channel.messages_dropped == 1
    assert channel.messages_delivered == 0


def test_in_flight_count_mixes_dropped_and_live_records():
    sim, channel, received = make_channel(
        ChannelFaults(drop_rate=1.0), fault_free_after_attempt=1
    )
    channel.send("lost", attempt=0)
    channel.send("live", attempt=1)
    assert len(channel._in_flight) == 2
    assert channel.in_flight_count() == 1
    sim.run_until(5.0)
    assert [m for m, _ in received] == ["live"]
    assert channel._in_flight == []


def test_reordered_message_can_be_overtaken():
    """A reorder-marked message escapes the FIFO floor: a later send with
    no extra delay arrives first."""
    faults = ChannelFaults(reorder_rate=1.0, delay_range=(5.0, 5.0))
    sim, channel, received = make_channel(faults, fault_free_after_attempt=1)
    channel.send("slow", attempt=0)   # reordered: +5.0 extra delay
    channel.send("fast", attempt=1)   # clean: normal delay
    sim.run_until(20.0)
    assert [m for m, _ in received] == ["fast", "slow"]


def test_fifo_floor_still_holds_without_reorder():
    """Plain extra delay (no reorder) must delay *subsequent* messages too:
    FIFO order is preserved even though one message got slower."""
    faults = ChannelFaults(delay_rate=1.0, delay_range=(3.0, 3.0))
    sim, channel, received = make_channel(faults, fault_free_after_attempt=1)
    channel.send("first", attempt=0)  # +3.0 extra delay, arrives t=4.0
    channel.send("second", attempt=1)  # nominal t=1.0, floored to 4.0
    sim.run_until(20.0)
    assert [m for m, _ in received] == ["first", "second"]
    assert [st for _, st in received] == [0.0, 0.0]


def test_duplicates_are_extra_physical_deliveries():
    sim, channel, received = make_channel(
        ChannelFaults(duplicate_rate=1.0, max_duplicates=2), seed=3
    )
    channel.send("m")
    sim.run_until(10.0)
    assert all(m == "m" for m, _ in received)
    assert len(received) == 1 + channel.messages_duplicated
    assert channel.messages_duplicated >= 1


def test_channel_without_plan_is_unaffected():
    sim = Simulator()
    received = []
    channel = Channel(sim, 1.0, deliver=lambda m, st: received.append(m), name="ch")
    assert channel.plan is None
    for i in range(3):
        channel.send(i)
    assert channel.in_flight_count() == 3
    assert channel.expedite() == 3
    assert received == [0, 1, 2]


def test_simulator_fault_plan_is_inherited_by_channels():
    plan = FaultPlan(seed=0, channels={"ch": ChannelFaults(drop_rate=1.0)})
    sim = Simulator(fault_plan=plan)
    received = []
    channel = Channel(sim, 1.0, deliver=lambda m, st: received.append(m), name="ch")
    assert channel.plan is plan
    channel.send("m")
    sim.run_until(5.0)
    assert received == []
    assert channel.messages_dropped == 1
