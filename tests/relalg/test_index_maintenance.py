"""Property tests: persistent join indexes are maintained, never stale.

The compiled propagation engine relies on one invariant: after ANY
sequence of inserts, deletes, and applied deltas, a relation's persistent
index answers lookups exactly as a from-scratch hash of its current rows
would — for bag and set semantics alike, including multiplicity edges
(a bucket entry must vanish the moment its multiplicity reaches zero, and
an emptied bucket must not shadow later reinsertions).
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deltas import BagDelta, SetDelta
from repro.relalg import BagRelation, SetRelation, make_schema, row

SCHEMA = make_schema("R", ["a", "b", "c"])
KEYS = ("a", "b")


def from_scratch_index(rel, keys):
    index = defaultdict(dict)
    for r, n in rel.items():
        index[r.values_for(keys)][r] = n
    return dict(index)


def assert_index_fresh(rel, keys):
    """The maintained index equals a from-scratch hash, bucket for bucket.

    White-box on purpose: comparing the internal structure (not just
    lookups of known values) catches stale buckets for value tuples that
    no current row carries.
    """
    expected = from_scratch_index(rel, keys)
    assert rel._indexes[keys] == expected
    for values, bucket in expected.items():
        assert dict(rel.index_lookup(keys, values)) == bucket
    assert rel.index_lookup(keys, ("__absent__", "__absent__")) == []


# Each op: (kind, a, b, c, multiplicity); deltas batch several signed rows.
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "delta"]),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=3),
    ),
    max_size=40,
)


@given(ops)
@settings(max_examples=150, deadline=None)
def test_bag_index_maintained_under_random_ops(steps):
    rel = BagRelation(SCHEMA)
    rel.ensure_index(KEYS)
    pending_delta = BagDelta()
    for kind, a, b, c, n in steps:
        r = row(a=a, b=b, c=c)
        if kind == "insert":
            rel.insert(r, n)
        elif kind == "delete":
            # Deleting down to zero must clear the bucket entry.
            m = min(n, rel.count(r))
            if m:
                rel.delete(r, m)
        else:
            sign = 1 if (a + b + c) % 2 else -1
            if sign < 0 and rel.count(r) < n:
                sign = 1
            pending_delta.add("R", r, sign * n)
            pending_delta.apply_to(rel, "R")
            pending_delta = BagDelta()
        assert_index_fresh(rel, KEYS)


@given(ops)
@settings(max_examples=150, deadline=None)
def test_set_index_maintained_under_random_ops(steps):
    rel = SetRelation(SCHEMA)
    rel.ensure_index(KEYS)
    for kind, a, b, c, _ in steps:
        r = row(a=a, b=b, c=c)
        if kind == "insert":
            if not rel.contains(r):
                rel.insert(r)
        elif kind == "delete":
            if rel.contains(r):
                rel.delete(r)
        else:
            delta = SetDelta()
            if rel.contains(r):
                delta.delete("R", r)
            else:
                delta.insert("R", r)
            delta.apply_to(rel, "R")
        assert_index_fresh(rel, KEYS)


def test_bag_multiplicity_crossing_zero_clears_bucket():
    """The difference-node edge case: multiplicity 2 → 1 → 0 → 1.

    A set (difference) node's operands are bags whose support transitions
    at 0↔positive drive the rule; a stale index entry at multiplicity 0
    would resurrect a row the difference already evicted.
    """
    rel = BagRelation(SCHEMA)
    rel.ensure_index(KEYS)
    r = row(a=1, b=1, c=0)
    rel.insert(r, 2)
    assert dict(rel.index_lookup(KEYS, (1, 1))) == {r: 2}
    rel.delete(r, 1)
    assert dict(rel.index_lookup(KEYS, (1, 1))) == {r: 1}
    rel.delete(r, 1)
    assert rel.index_lookup(KEYS, (1, 1)) == []
    assert_index_fresh(rel, KEYS)
    rel.insert(r, 1)
    assert dict(rel.index_lookup(KEYS, (1, 1))) == {r: 1}
    assert_index_fresh(rel, KEYS)


def test_negative_delta_via_apply_updates_index():
    rel = BagRelation(SCHEMA)
    rel.insert(row(a=1, b=2, c=0), 3)
    rel.ensure_index(KEYS)
    delta = BagDelta.from_counts("R", {row(a=1, b=2, c=0): -2, row(a=5, b=5, c=1): 1})
    delta.apply_to(rel, "R")
    assert dict(rel.index_lookup(KEYS, (1, 2))) == {row(a=1, b=2, c=0): 1}
    assert dict(rel.index_lookup(KEYS, (5, 5))) == {row(a=5, b=5, c=1): 1}
    assert_index_fresh(rel, KEYS)


def test_copy_drops_indexes():
    """A copy is a fresh relation: it must not share (or keep) index state."""
    rel = BagRelation(SCHEMA)
    rel.insert(row(a=1, b=1, c=1))
    rel.ensure_index(KEYS)
    clone = rel.copy()
    assert rel.has_index(KEYS)
    assert not clone.has_index(KEYS)
    clone.insert(row(a=2, b=2, c=2))
    assert rel.index_lookup(KEYS, (2, 2)) == []


def test_ensure_index_is_idempotent_and_counted():
    from repro.relalg import EvalCounters

    counters = EvalCounters()
    rel = BagRelation(SCHEMA)
    rel.insert(row(a=1, b=1, c=1))
    rel.insert(row(a=2, b=1, c=1))
    rel.ensure_index(KEYS, counters)
    assert counters.index_rebuilds == 1
    assert counters.rows_hashed == 2
    rel.ensure_index(KEYS, counters)  # already built: free
    assert counters.index_rebuilds == 1
    assert counters.rows_hashed == 2


def test_ensure_index_rejects_unknown_attributes():
    rel = BagRelation(SCHEMA)
    with pytest.raises(Exception):
        rel.ensure_index(("a", "nope"))
