"""Regression tests for :class:`repro.relalg.EvalCounters` merge/reset.

``merge`` and ``reset`` are derived from ``dataclasses.fields`` so a newly
added counter field can never be silently dropped.  These tests pin that
contract: every declared field participates in ``merge``, ``reset`` zeroes
all of them, and the field set itself is what the metrics helpers see.
"""

import dataclasses

from repro.obs.metrics import dataclass_counter_items
from repro.relalg import EvalCounters


def distinct_counters(offset):
    """An EvalCounters whose fields hold distinct non-zero values."""
    counters = EvalCounters()
    for i, field in enumerate(dataclasses.fields(EvalCounters)):
        setattr(counters, field.name, offset + i)
    return counters


def test_merge_accumulates_every_declared_field():
    a = distinct_counters(offset=10)
    b = distinct_counters(offset=100)
    a.merge(b)
    for i, field in enumerate(dataclasses.fields(EvalCounters)):
        assert getattr(a, field.name) == (10 + i) + (100 + i), field.name


def test_merge_leaves_the_other_side_untouched():
    a, b = distinct_counters(10), distinct_counters(100)
    a.merge(b)
    assert b == distinct_counters(100)


def test_reset_zeroes_every_declared_field():
    counters = distinct_counters(offset=7)
    counters.reset()
    assert counters == EvalCounters()
    for field in dataclasses.fields(EvalCounters):
        assert getattr(counters, field.name) == 0, field.name


def test_merge_onto_fresh_instance_is_copy():
    fresh = EvalCounters()
    fresh.merge(distinct_counters(42))
    assert fresh == distinct_counters(42)


def test_counter_items_cover_exactly_the_declared_fields():
    # The metrics registry derives its view from the same field list that
    # merge/reset use; a drifting field would show up here first.
    declared = {f.name for f in dataclasses.fields(EvalCounters)}
    assert {name for name, _ in dataclass_counter_items(EvalCounters())} == declared
    assert "rows_hashed" in declared and "index_rebuilds" in declared
