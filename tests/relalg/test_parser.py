"""Unit tests for the algebra text parser."""

import pytest

from repro.errors import ParseError
from repro.relalg import (
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    SetRelation,
    Union,
    evaluate,
    make_schema,
    parse_expression,
    parse_predicate,
    row,
)


def test_parse_scan():
    assert parse_expression("R") == Scan("R")


def test_parse_figure1_view():
    expr = parse_expression(
        "project[r1, s1, s2](select[r4 = 100](R) join[r2 = s1] select[s3 < 50](S))"
    )
    assert isinstance(expr, Project)
    assert expr.attrs == ("r1", "s1", "s2")
    join = expr.child
    assert isinstance(join, Join)
    assert isinstance(join.left, Select)
    assert isinstance(join.right, Select)


def test_parse_union_minus_left_assoc():
    expr = parse_expression("A union B minus C")
    assert isinstance(expr, Difference)
    assert isinstance(expr.left, Union)


def test_parse_njoin():
    expr = parse_expression("A njoin B")
    assert isinstance(expr, Join)
    assert expr.condition is None


def test_parse_rename():
    expr = parse_expression("rename[a = x, b = y](R)")
    assert isinstance(expr, Rename)
    assert expr.mapping_dict == {"a": "x", "b": "y"}


def test_parse_dproject():
    expr = parse_expression("dproject[a](R)")
    assert isinstance(expr, Project)
    assert expr.dedup


def test_parse_arithmetic_condition():
    # Figure 4's join condition
    pred = parse_predicate("a1 ^ 2 + a2 < b2 ^ 2")
    assert pred.evaluate(row(a1=2, a2=3, b2=3))
    assert not pred.evaluate(row(a1=3, a2=1, b2=3))


def test_parse_boolean_structure():
    pred = parse_predicate("a = 1 and (b = 2 or c = 3)")
    assert pred.evaluate(row(a=1, b=9, c=3))
    assert not pred.evaluate(row(a=1, b=9, c=9))


def test_parse_parenthesized_arithmetic():
    pred = parse_predicate("(a + b) * 2 < c")
    assert pred.evaluate(row(a=1, b=1, c=5))


def test_parse_not():
    pred = parse_predicate("not a = 1")
    assert pred.evaluate(row(a=2))


def test_parse_true():
    pred = parse_predicate("true")
    assert pred.evaluate(row())


def test_parse_string_literal():
    pred = parse_predicate("name = 'alice'")
    assert pred.evaluate(row(name="alice"))


def test_parse_float():
    pred = parse_predicate("x < 1.5")
    assert pred.evaluate(row(x=1.0))


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_expression("project[](R)")
    with pytest.raises(ParseError):
        parse_expression("select[a=](R)")
    with pytest.raises(ParseError):
        parse_expression("R join S")  # join needs [cond]
    with pytest.raises(ParseError):
        parse_expression("R @@ S")
    with pytest.raises(ParseError):
        parse_predicate("a")  # bare term is not a predicate


def test_roundtrip_through_str():
    text = "project[r1, s1](select[r4 = 100](R) join[r2 = s1] S)"
    expr = parse_expression(text)
    reparsed = parse_expression(str(expr))
    assert reparsed == expr


def test_parsed_expression_evaluates():
    r_schema = make_schema("R", ["a", "b"])
    cat = {"R": SetRelation.from_values(r_schema, [(1, 2), (3, 4)])}
    out = evaluate(parse_expression("project[a](select[b > 2](R))"), cat)
    assert out.to_sorted_list() == [((3,), 1)]
