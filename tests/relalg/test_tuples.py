"""Unit tests for immutable rows."""

import pytest

from repro.errors import SchemaError
from repro.relalg import Row, row


def test_row_mapping_protocol():
    r = row(a=1, b="x")
    assert r["a"] == 1
    assert len(r) == 2
    assert set(r) == {"a", "b"}
    assert dict(r) == {"a": 1, "b": "x"}


def test_row_equality_order_insensitive():
    assert Row({"a": 1, "b": 2}) == Row({"b": 2, "a": 1})
    assert hash(Row({"a": 1, "b": 2})) == hash(Row({"b": 2, "a": 1}))


def test_row_equality_with_plain_mapping():
    assert row(a=1) == {"a": 1}


def test_row_immutable():
    r = row(a=1)
    with pytest.raises(AttributeError):
        r.x = 5
    with pytest.raises(TypeError):
        r["a"] = 2  # Mapping has no __setitem__


def test_project():
    r = row(a=1, b=2, c=3)
    assert r.project(["a", "c"]) == row(a=1, c=3)
    with pytest.raises(SchemaError):
        r.project(["zz"])


def test_merge_disjoint():
    assert row(a=1).merge(row(b=2)) == row(a=1, b=2)
    with pytest.raises(SchemaError):
        row(a=1).merge(row(a=2))


def test_merge_natural():
    assert row(a=1, b=2).merge_natural(row(b=2, c=3)) == row(a=1, b=2, c=3)
    with pytest.raises(SchemaError):
        row(a=1, b=2).merge_natural(row(b=9, c=3))


def test_rename():
    assert row(a=1, b=2).rename({"a": "x"}) == row(x=1, b=2)


def test_values_for():
    assert row(a=1, b=2, c=3).values_for(["c", "a"]) == (3, 1)


def test_with_value():
    r = row(a=1)
    r2 = r.with_value("b", 2)
    assert r2 == row(a=1, b=2)
    assert r == row(a=1)


def test_rows_usable_in_sets():
    s = {row(a=1), row(a=1), row(a=2)}
    assert len(s) == 2
