"""Unit tests for predicates and terms."""

import pytest

from repro.errors import EvaluationError
from repro.relalg import (
    TRUE,
    Arith,
    Attr,
    Comparison,
    Const,
    attr,
    conjoin,
    conjuncts,
    const,
    disjoin,
    eq,
    equi_join_pairs,
    ge,
    gt,
    le,
    lt,
    ne,
    row,
)


def test_comparison_constructors():
    r = row(a=5, b=3)
    assert eq("a", 5).evaluate(r)
    assert ne("a", "b").evaluate(r)
    assert lt("b", "a").evaluate(r)
    assert le("b", 3).evaluate(r)
    assert gt("a", 4).evaluate(r)
    assert ge("a", 5).evaluate(r)


def test_unknown_operators_rejected():
    with pytest.raises(EvaluationError):
        Comparison(Attr("a"), "~", Const(1))
    with pytest.raises(EvaluationError):
        Arith(Attr("a"), "@", Const(1))


def test_boolean_combinators_and_sugar():
    r = row(a=5, b=3)
    p = eq("a", 5) & lt("b", 10)
    assert p.evaluate(r)
    q = eq("a", 0) | eq("b", 3)
    assert q.evaluate(r)
    assert (~eq("a", 0)).evaluate(r)
    assert TRUE.evaluate(r)


def test_arithmetic_terms():
    # Figure 4's join condition shape: a1^2 + a2 < b2^2
    cond = lt(
        Arith(Arith(attr("a1"), "^", const(2)), "+", attr("a2")),
        Arith(attr("b2"), "^", const(2)),
    )
    assert cond.evaluate(row(a1=2, a2=3, b2=3))  # 4+3 < 9
    assert not cond.evaluate(row(a1=3, a2=0, b2=3))  # 9 < 9 is false


def test_attributes_collection():
    p = eq("a", 5) & lt("b", attr("c"))
    assert p.attributes() == frozenset({"a", "b", "c"})
    assert TRUE.attributes() == frozenset()


def test_rename():
    p = eq("a", "b").rename({"a": "x"})
    assert p.attributes() == frozenset({"x", "b"})
    assert p.evaluate(row(x=1, b=1))


def test_missing_attribute_raises():
    with pytest.raises(EvaluationError):
        eq("a", 1).evaluate(row(b=2))


def test_conjuncts_flattening():
    p = conjoin(eq("a", 1), conjoin(eq("b", 2), eq("c", 3)))
    assert len(conjuncts(p)) == 3
    assert conjuncts(TRUE) == []
    assert conjoin() is TRUE


def test_disjoin():
    assert disjoin() is TRUE
    assert disjoin(eq("a", 1), TRUE) is TRUE
    p = disjoin(eq("a", 1), eq("a", 2))
    assert p.evaluate(row(a=2))
    assert not p.evaluate(row(a=3))


def test_equi_join_pairs_extraction():
    left = frozenset({"r1", "r2"})
    right = frozenset({"s1", "s2"})
    cond = conjoin(eq("r2", "s1"), lt("s2", 50))
    pairs, residual = equi_join_pairs(cond, left, right)
    assert pairs == [("r2", "s1")]
    assert residual is not None
    assert residual.evaluate(row(s2=10))


def test_equi_join_pairs_reversed_sides():
    pairs, residual = equi_join_pairs(
        eq("s1", "r2"), frozenset({"r2"}), frozenset({"s1"})
    )
    assert pairs == [("r2", "s1")]
    assert residual is None


def test_equi_join_pairs_no_equalities():
    pairs, residual = equi_join_pairs(
        lt("r1", "s1"), frozenset({"r1"}), frozenset({"s1"})
    )
    assert pairs == []
    assert residual is not None


def test_same_side_equality_is_residual():
    pairs, residual = equi_join_pairs(
        eq("r1", "r2"), frozenset({"r1", "r2"}), frozenset({"s1"})
    )
    assert pairs == []
    assert residual is not None


def test_predicate_str_forms():
    assert str(eq("a", 1)) == "a = 1"
    assert "and" in str(eq("a", 1) & eq("b", 2))
    assert "true" == str(TRUE)
