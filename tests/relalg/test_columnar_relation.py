"""Unit coverage for the columnar (struct-of-arrays) relation container.

The parity property suite (:mod:`tests.relalg.test_columnar_parity`) pins
layout equivalence in bulk; these tests pin the container mechanics the
properties cannot see from the outside — slot recycling, index bucket
maintenance, set/bag strictness, and the lazy row cache.
"""

import pytest

from repro.errors import DeltaError
from repro.relalg import (
    BagRelation,
    ColumnarRelation,
    Row,
    SetRelation,
    make_schema,
)

R = make_schema("R", ["a", "b"], key=["a"])


def _rows(*pairs):
    return [Row({"a": a, "b": b}) for a, b in pairs]


def test_from_relation_round_trip_set():
    base = SetRelation(R, _rows((1, 10), (2, 20), (3, 30)))
    col = ColumnarRelation.from_relation(base)
    assert col.is_bag is False
    assert col == base
    assert col.to_sorted_list() == base.to_sorted_list()
    assert col.distinct_size() == 3


def test_from_relation_round_trip_bag():
    base = BagRelation.from_rows(R, _rows((1, 10), (1, 10), (2, 20)))
    col = ColumnarRelation.from_relation(base)
    assert col.is_bag is True
    assert col == base
    assert col.count(Row({"a": 1, "b": 10})) == 2


def test_set_strictness_matches_set_relation():
    col = ColumnarRelation.from_values(R, [(1, 10)], is_bag=False)
    with pytest.raises(DeltaError):
        col.insert(Row({"a": 1, "b": 10}))
    with pytest.raises(DeltaError):
        col.insert(Row({"a": 2, "b": 20}), multiplicity=2)
    with pytest.raises(DeltaError):
        col.delete(Row({"a": 9, "b": 90}))
    with pytest.raises(DeltaError):
        col.adjust(Row({"a": 1, "b": 10}), 1)


def test_bag_strictness_matches_bag_relation():
    col = ColumnarRelation.from_values(R, [(1, 10), (1, 10)], is_bag=True)
    with pytest.raises(DeltaError):
        col.insert(Row({"a": 1, "b": 10}), multiplicity=0)
    with pytest.raises(DeltaError):
        col.delete(Row({"a": 1, "b": 10}), multiplicity=3)
    col.delete(Row({"a": 1, "b": 10}), multiplicity=2)
    assert col.cardinality() == 0


def test_slot_reuse_after_delete():
    col = ColumnarRelation.from_values(R, [(1, 10), (2, 20)], is_bag=False)
    col.delete(Row({"a": 1, "b": 10}))
    # The freed slot is recycled for the next brand-new row: the column
    # arrays do not grow.
    before = len(col.counts_column())
    col.insert(Row({"a": 3, "b": 30}))
    assert len(col.counts_column()) == before
    assert col.to_sorted_list() == [((2, 20), 1), ((3, 30), 1)]
    assert col.count(Row({"a": 1, "b": 10})) == 0


def test_index_maintained_through_insert_and_delete():
    col = ColumnarRelation.from_values(R, [(1, 10), (2, 10), (3, 30)], is_bag=False)
    col.ensure_index(["b"])
    assert col.has_index(["b"])

    def probe(v):
        return sorted(tuple(r.values_for(("a", "b"))) for r, _ in col.index_lookup(["b"], (v,)))

    assert probe(10) == [(1, 10), (2, 10)]
    col.insert(Row({"a": 4, "b": 10}))
    assert probe(10) == [(1, 10), (2, 10), (4, 10)]
    col.delete(Row({"a": 2, "b": 10}))
    assert probe(10) == [(1, 10), (4, 10)]
    col.delete(Row({"a": 3, "b": 30}))
    assert probe(30) == []
    assert col.slot_lookup(["b"], (30,)) == []


def test_row_cache_materializes_lazily_and_stably():
    col = ColumnarRelation.from_values(R, [(1, 10)], is_bag=False)
    (slot,) = list(col.live_slots())
    first = col.row_at(slot)
    assert first == Row({"a": 1, "b": 10})
    assert col.row_at(slot) is first  # cached, not rebuilt


def test_copy_is_independent():
    col = ColumnarRelation.from_values(R, [(1, 10)], is_bag=False)
    clone = col.copy()
    clone.insert(Row({"a": 2, "b": 20}))
    assert col.cardinality() == 1
    assert clone.cardinality() == 2


def test_estimated_bytes_comparable_across_layouts():
    data = [(i, i * 10) for i in range(50)]
    row = SetRelation(R, _rows(*data))
    col = ColumnarRelation.from_values(R, data, is_bag=False)
    assert col.estimated_bytes() > 0
    # Same estimator model (cell sizes + 8 bytes/slot bookkeeping), so the
    # two layouts land within a constant factor of each other.
    assert abs(col.estimated_bytes() - row.estimated_bytes()) <= row.estimated_bytes()


def test_distinct_matches_bag_distinct():
    bag = BagRelation.from_rows(R, _rows((1, 10), (1, 10), (2, 20)))
    col = ColumnarRelation.from_relation(bag)
    assert col.distinct() == bag.distinct()
