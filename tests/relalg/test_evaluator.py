"""Unit tests for expressions + evaluator, including the paper's Figure 1 view."""

import pytest

from repro.errors import EvaluationError, SchemaError
from repro.relalg import (
    BagRelation,
    Difference,
    EvalCounters,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    SetRelation,
    Union,
    eq,
    evaluate,
    gt,
    lt,
    make_schema,
    row,
    scan,
)

R = make_schema("R", ["r1", "r2", "r3", "r4"], key=["r1"])
S = make_schema("S", ["s1", "s2", "s3"], key=["s1"])


def sample_catalog():
    r = SetRelation.from_values(
        R,
        [
            (1, 10, "x", 100),
            (2, 20, "y", 100),
            (3, 10, "z", 999),  # filtered out by r4=100
        ],
    )
    s = SetRelation.from_values(
        S,
        [
            (10, "a", 5),
            (20, "b", 99),  # filtered out by s3<50
            (30, "c", 7),
        ],
    )
    return {"R": r, "S": s}


def figure1_view():
    """T = π_{r1,s1,s2}(σ_{r4=100} R ⋈_{r2=s1} σ_{s3<50} S)."""
    return Project(
        Join(
            Select(Scan("R"), eq("r4", 100)),
            Select(Scan("S"), lt("s3", 50)),
            eq("r2", "s1"),
        ),
        ("r1", "s1", "s2"),
    )


def test_figure1_view_evaluation():
    result = evaluate(figure1_view(), sample_catalog(), "T")
    assert result.to_sorted_list() == [((1, 10, "a"), 1)]
    assert result.schema.attribute_names == ("r1", "s1", "s2")


def test_select_and_project():
    cat = sample_catalog()
    out = evaluate(scan("R").select(gt("r1", 1)).project(["r1"]), cat)
    assert out.to_sorted_list() == [((2,), 1), ((3,), 1)]


def test_bag_projection_keeps_duplicates():
    cat = sample_catalog()
    out = evaluate(scan("R").project(["r4"]), cat)
    assert out.to_sorted_list() == [((100,), 2), ((999,), 1)]


def test_dedup_projection_is_set():
    cat = sample_catalog()
    out = evaluate(scan("R").project(["r4"], dedup=True), cat)
    assert out.to_sorted_list() == [((100,), 1), ((999,), 1)]
    assert not out.is_bag


def test_theta_join_cross_product_counts():
    a = make_schema("A", ["x"])
    b = make_schema("B", ["y"])
    cat = {
        "A": BagRelation.from_values(a, [(1,), (1,)]),
        "B": BagRelation.from_values(b, [(2,)]),
    }
    out = evaluate(scan("A").join(scan("B"), lt("x", "y")), cat)
    assert out.to_sorted_list() == [((1, 2), 2)]


def test_natural_join():
    a = make_schema("A", ["k", "x"])
    b = make_schema("B", ["k", "y"])
    cat = {
        "A": SetRelation.from_values(a, [(1, "p"), (2, "q")]),
        "B": SetRelation.from_values(b, [(1, "u"), (3, "v")]),
    }
    out = evaluate(scan("A").join(scan("B")), cat)
    assert out.to_sorted_list() == [((1, "p", "u"), 1)]


def test_natural_join_without_shared_attrs_raises():
    a = make_schema("A", ["x"])
    b = make_schema("B", ["y"])
    cat = {
        "A": SetRelation.from_values(a, [(1,)]),
        "B": SetRelation.from_values(b, [(2,)]),
    }
    with pytest.raises(SchemaError):
        evaluate(scan("A").join(scan("B")), cat)


def test_union_adds_counts():
    a = make_schema("A", ["x"])
    b = make_schema("B", ["x"])
    cat = {
        "A": BagRelation.from_values(a, [(1,), (2,)]),
        "B": BagRelation.from_values(b, [(1,)]),
    }
    out = evaluate(scan("A").union(scan("B")), cat)
    assert out.to_sorted_list() == [((1,), 2), ((2,), 1)]


def test_difference_is_set_semantics():
    a = make_schema("A", ["x"])
    b = make_schema("B", ["x"])
    cat = {
        "A": BagRelation.from_values(a, [(1,), (1,), (2,)]),
        "B": BagRelation.from_values(b, [(2,), (3,)]),
    }
    out = evaluate(scan("A").minus(scan("B")), cat)
    assert not out.is_bag
    assert out.to_sorted_list() == [((1,), 1)]


def test_rename_evaluation():
    cat = sample_catalog()
    out = evaluate(scan("S").rename({"s1": "k"}).project(["k"]), cat)
    assert out.schema.attribute_names == ("k",)
    assert out.cardinality() == 3


def test_unknown_relation_raises():
    with pytest.raises((EvaluationError, SchemaError)):
        evaluate(scan("NOPE"), sample_catalog())


def test_counters_track_work():
    counters = EvalCounters()
    evaluate(figure1_view(), sample_catalog(), counters=counters)
    assert counters.rows_scanned == 6
    assert counters.joins_executed == 1
    assert counters.hash_probes > 0


def test_counters_merge():
    a = EvalCounters(rows_scanned=1, rows_produced=2, joins_executed=3, hash_probes=4)
    b = EvalCounters(rows_scanned=10, rows_produced=20, joins_executed=30, hash_probes=40)
    a.merge(b)
    assert (a.rows_scanned, a.rows_produced, a.joins_executed, a.hash_probes) == (11, 22, 33, 44)


def test_join_schema_disjointness_enforced():
    a = make_schema("A", ["x"])
    b = make_schema("B", ["x"])
    cat = {
        "A": SetRelation.from_values(a, [(1,)]),
        "B": SetRelation.from_values(b, [(2,)]),
    }
    with pytest.raises(SchemaError):
        evaluate(Join(scan("A"), scan("B"), eq("x", "x")), cat)
