"""Property suite: the columnar layout is indistinguishable from row layout.

Two halves:

* **container parity** — any interleaving of valid inserts/deletes applied
  to a :class:`SetRelation`/:class:`BagRelation` and to a
  :class:`ColumnarRelation` of the same kind leaves identical contents
  (``to_sorted_list`` equality), with or without a live index;
* **evaluator parity** — random data and randomized query shapes evaluated
  against a row catalog and against a columnar catalog (which routes chains
  through the vectorized fast path and indexed joins through slot probes)
  produce byte-identical answers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relalg import (
    BagRelation,
    ColumnarRelation,
    Evaluator,
    Row,
    SetRelation,
    make_schema,
    parse_expression,
)

A = make_schema("A", ["a1", "a2"], key=["a1"])
B = make_schema("B", ["b1", "b2"], key=["b1"])

QUERY_TEMPLATES = [
    "select[a2 < {k}](A)",
    "project[a2](A)",
    "dproject[a2](A)",
    "select[a1 ^ 2 + a2 < {k}](A)",
    "project[x](rename[a2 = x](select[a1 > {k}](A)))",
    "project[a1, b2](A join[a1 = b1] B)",
    "project[a1, b1](A join[a1 + a2 < b2] B)",
    "project[a2](A) union project[a2](rename[b1 = a1, b2 = a2](B))",
    "dproject[a2](A) minus dproject[a2](rename[b1 = a1, b2 = a2](B))",
    "select[a2 = b1 and (a1 < {k} or b2 > 2)](A join[true] B)",
]

values = st.integers(min_value=0, max_value=6)
a_rows = st.lists(st.tuples(st.integers(0, 50), values), max_size=12, unique_by=lambda t: t[0])
b_rows = st.lists(st.tuples(st.integers(0, 50), values), max_size=12, unique_by=lambda t: t[0])


@given(a_rows, b_rows, st.sampled_from(QUERY_TEMPLATES), st.integers(0, 10), st.booleans())
@settings(max_examples=120, deadline=None)
def test_evaluator_agrees_across_layouts(a_data, b_data, template, k, with_index):
    expr = parse_expression(template.format(k=k))
    row_catalog = {
        "A": SetRelation.from_values(A, a_data),
        "B": SetRelation.from_values(B, b_data),
    }
    col_catalog = {
        "A": ColumnarRelation.from_values(A, a_data, is_bag=False),
        "B": ColumnarRelation.from_values(B, b_data, is_bag=False),
    }
    if with_index:
        col_catalog["A"].ensure_index(["a1"])
        col_catalog["B"].ensure_index(["b1"])
    row_answer = Evaluator(row_catalog).evaluate(expr, "q")
    col_answer = Evaluator(col_catalog).evaluate(expr, "q")
    assert col_answer.to_sorted_list() == row_answer.to_sorted_list(), template
    assert col_answer.is_bag == row_answer.is_bag


# Operation scripts: (key, payload, op) where op chooses insert/delete and
# the applier skips whatever would violate set/bag validity — both
# containers see the exact same applied sequence.
op_scripts = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 3), st.sampled_from(["i", "d"])),
    max_size=40,
)


@given(op_scripts, st.booleans())
@settings(max_examples=120, deadline=None)
def test_set_container_parity_under_mutation(ops, with_index):
    row_rel = SetRelation(A)
    col_rel = ColumnarRelation(A, is_bag=False)
    if with_index:
        col_rel.ensure_index(["a2"])
    for key, payload, op in ops:
        r = Row({"a1": key, "a2": payload})
        present = row_rel.contains(r)
        if op == "i" and not present:
            row_rel.insert(r)
            col_rel.insert(r)
        elif op == "d" and present:
            row_rel.delete(r)
            col_rel.delete(r)
    assert col_rel.to_sorted_list() == row_rel.to_sorted_list()
    assert col_rel.distinct_size() == row_rel.distinct_size()
    if with_index:
        for v in range(4):
            expected = sorted(
                tuple(r.values_for(("a1", "a2")))
                for r, _ in row_rel.items()
                if r["a2"] == v
            )
            got = sorted(
                tuple(r.values_for(("a1", "a2")))
                for r, _ in col_rel.index_lookup(["a2"], (v,))
            )
            assert got == expected


@given(op_scripts)
@settings(max_examples=120, deadline=None)
def test_bag_container_parity_under_mutation(ops):
    row_rel = BagRelation(A)
    col_rel = ColumnarRelation(A, is_bag=True)
    for key, payload, op in ops:
        r = Row({"a1": key, "a2": payload})
        if op == "i":
            row_rel.insert(r, payload + 1)
            col_rel.insert(r, payload + 1)
        elif row_rel.count(r) > 0:
            row_rel.delete(r)
            col_rel.delete(r)
    assert col_rel.to_sorted_list() == row_rel.to_sorted_list()
    assert col_rel.cardinality() == row_rel.cardinality()
