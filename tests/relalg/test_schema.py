"""Unit tests for schemas and attributes."""

import pytest

from repro.errors import SchemaError
from repro.relalg import Attribute, RelationSchema, make_schema


def test_make_schema_basic():
    s = make_schema("R", ["r1", "r2", "r3"], key=["r1"])
    assert s.name == "R"
    assert s.attribute_names == ("r1", "r2", "r3")
    assert s.key == ("r1",)
    assert s.arity == 3


def test_duplicate_attribute_rejected():
    with pytest.raises(SchemaError):
        make_schema("R", ["a", "a"])


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        make_schema("R", [])


def test_key_must_be_attribute():
    with pytest.raises(SchemaError):
        make_schema("R", ["a"], key=["b"])


def test_invalid_attribute_name():
    with pytest.raises(SchemaError):
        Attribute("not valid!")


def test_attribute_lookup_and_membership():
    s = make_schema("R", ["a", "b"])
    assert s.has_attribute("a")
    assert not s.has_attribute("z")
    assert s.attribute("b").name == "b"
    with pytest.raises(SchemaError):
        s.attribute("z")


def test_check_attributes_reports_missing():
    s = make_schema("R", ["a", "b"])
    s.check_attributes(["a"])
    with pytest.raises(SchemaError):
        s.check_attributes(["a", "zz"])


def test_project_keeps_key_only_if_all_key_attrs_survive():
    s = make_schema("R", ["a", "b", "c"], key=["a", "b"])
    kept = s.project(["b", "a"])
    assert kept.key == ("a", "b")
    lost = s.project(["a", "c"])
    assert lost.key == ()


def test_project_reorders_attributes():
    s = make_schema("R", ["a", "b", "c"])
    p = s.project(["c", "a"], "P")
    assert p.attribute_names == ("c", "a")
    assert p.name == "P"


def test_rename_attributes():
    s = make_schema("R", ["a", "b"], key=["a"])
    renamed = s.rename_attributes({"a": "x"}, "R2")
    assert renamed.attribute_names == ("x", "b")
    assert renamed.key == ("x",)
    with pytest.raises(SchemaError):
        s.rename_attributes({"zz": "y"})


def test_theta_join_requires_disjoint_attributes():
    r = make_schema("R", ["a", "b"], key=["a"])
    s = make_schema("S", ["c", "d"], key=["c"])
    j = r.join(s, "J")
    assert j.attribute_names == ("a", "b", "c", "d")
    assert j.key == ("a", "c")
    with pytest.raises(SchemaError):
        r.join(make_schema("S2", ["a", "z"]), "J2")


def test_natural_join_schema():
    r = make_schema("R", ["a", "b"])
    s = make_schema("S", ["b", "c"])
    j = r.natural_join(s, "J")
    assert j.attribute_names == ("a", "b", "c")
    with pytest.raises(SchemaError):
        r.natural_join(make_schema("T", ["x"]), "J")


def test_union_compatibility():
    r = make_schema("R", ["a", "b"])
    s = make_schema("S", ["a", "b"])
    t = make_schema("T", ["b", "a"])
    assert r.union_compatible_with(s)
    assert not r.union_compatible_with(t)
    with pytest.raises(SchemaError):
        r.require_union_compatible(t)


def test_str_marks_key_attributes():
    s = make_schema("R", ["a", "b"], key=["a"])
    assert "a*" in str(s)
