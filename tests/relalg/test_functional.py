"""Unit tests for functional-dependency reasoning (Example 2.3 machinery)."""

from repro.relalg import (
    FDSet,
    FunctionalDependency,
    Scan,
    eq,
    fds_from_schema,
    infer_fds,
    lt,
    make_schema,
    scan,
)

R = make_schema("Rp", ["r1", "r2", "r3"], key=["r1"])
S = make_schema("Sp", ["s1", "s2"], key=["s1"])


def base_fds():
    return {"Rp": fds_from_schema(R), "Sp": fds_from_schema(S)}


def test_fds_from_schema():
    fds = fds_from_schema(R)
    assert fds.determines(["r1"], "r3")
    assert not fds.determines(["r2"], "r3")


def test_closure_fixpoint():
    fds = FDSet("abcd", [FunctionalDependency.of("a", "b"), FunctionalDependency.of("b", "c")])
    assert fds.closure("a") == frozenset("abc")
    assert fds.closure("d") == frozenset("d")


def test_implies():
    fds = FDSet("abc", [FunctionalDependency.of("a", "b"), FunctionalDependency.of("b", "c")])
    assert fds.implies(FunctionalDependency.of("a", "c"))
    assert not fds.implies(FunctionalDependency.of("c", "a"))


def test_superkey_and_key():
    fds = FDSet("abc", [FunctionalDependency.of("a", "bc")])
    assert fds.is_superkey("a")
    assert fds.is_superkey("ab")
    assert fds.is_key("a")
    assert not fds.is_key("ab")


def test_candidate_keys():
    fds = FDSet("abc", [FunctionalDependency.of("a", "bc"), FunctionalDependency.of("b", "ac")])
    keys = fds.candidate_keys()
    assert frozenset("a") in keys
    assert frozenset("b") in keys


def test_restrict_keeps_surviving_fds():
    fds = FDSet("abc", [FunctionalDependency.of("a", "bc")])
    restricted = fds.restrict(["a", "b"])
    assert restricted.determines(["a"], "b")
    assert "c" not in restricted.attributes


def test_example_23_inference():
    """T = π_{r1,r3,s1,s2}(R' ⋈_{r2=s1} S') inherits r1 -> r3 from R' (Ex. 2.3)."""
    join = scan("Rp").join(scan("Sp"), eq("r2", "s1"))
    t_expr = join.project(["r1", "r3", "s1", "s2"])
    fds = infer_fds(t_expr, base_fds())
    assert fds.determines(["r1"], "r3")  # the paper's derived FD (3)
    assert fds.determines(["s1"], "s2")


def test_equijoin_adds_equality_fds():
    join = scan("Rp").join(scan("Sp"), eq("r2", "s1"))
    fds = infer_fds(join, base_fds())
    assert fds.determines(["r2"], "s1")
    assert fds.determines(["s1"], "r2")
    # transitively: r1 -> r2 -> s1 -> s2
    assert fds.determines(["r1"], "s2")


def test_select_preserves_fds():
    fds = infer_fds(scan("Rp").select(lt("r3", 100)), base_fds())
    assert fds.determines(["r1"], "r2")


def test_union_drops_fds():
    a = make_schema("A", ["x", "y"], key=["x"])
    expr = scan("A").union(scan("A"))
    fds = infer_fds(expr, {"A": fds_from_schema(a)})
    assert not fds.determines(["x"], "y")


def test_difference_keeps_left_fds():
    a = make_schema("A", ["x", "y"], key=["x"])
    expr = scan("A").minus(scan("A"))
    fds = infer_fds(expr, {"A": fds_from_schema(a)})
    assert fds.determines(["x"], "y")


def test_rename_renames_fds():
    expr = scan("Rp").rename({"r1": "k"})
    fds = infer_fds(expr, base_fds())
    assert fds.determines(["k"], "r3")


def test_merge_fdsets():
    a = FDSet("ab", [FunctionalDependency.of("a", "b")])
    b = FDSet("bc", [FunctionalDependency.of("b", "c")])
    merged = a.merge(b)
    assert merged.determines(["a"], "c")
