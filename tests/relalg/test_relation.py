"""Unit tests for set and bag relation containers."""

import pytest

from repro.errors import DeltaError, SchemaError
from repro.relalg import BagRelation, SetRelation, make_schema, row

R = make_schema("R", ["a", "b"], key=["a"])


def test_set_relation_insert_delete():
    rel = SetRelation(R)
    rel.insert(row(a=1, b=2))
    assert rel.contains(row(a=1, b=2))
    assert rel.cardinality() == 1
    rel.delete(row(a=1, b=2))
    assert rel.is_empty()


def test_set_relation_duplicate_insert_raises():
    rel = SetRelation(R, [row(a=1, b=2)])
    with pytest.raises(DeltaError):
        rel.insert(row(a=1, b=2))


def test_set_relation_absent_delete_raises():
    rel = SetRelation(R)
    with pytest.raises(DeltaError):
        rel.delete(row(a=1, b=2))


def test_set_relation_rejects_multiplicity():
    rel = SetRelation(R)
    with pytest.raises(DeltaError):
        rel.insert(row(a=1, b=2), 2)


def test_schema_mismatch_rejected():
    rel = SetRelation(R)
    with pytest.raises(SchemaError):
        rel.insert(row(x=1))


def test_bag_relation_multiplicities():
    rel = BagRelation(R)
    rel.insert(row(a=1, b=2), 3)
    rel.insert(row(a=1, b=2))
    assert rel.count(row(a=1, b=2)) == 4
    assert rel.cardinality() == 4
    assert rel.distinct_cardinality() == 1
    rel.delete(row(a=1, b=2), 4)
    assert rel.is_empty()


def test_bag_relation_over_delete_raises():
    rel = BagRelation(R)
    rel.insert(row(a=1, b=2))
    with pytest.raises(DeltaError):
        rel.delete(row(a=1, b=2), 2)


def test_bag_adjust():
    rel = BagRelation(R)
    rel.adjust(row(a=1, b=2), 2)
    rel.adjust(row(a=1, b=2), -1)
    rel.adjust(row(a=1, b=2), 0)
    assert rel.count(row(a=1, b=2)) == 1


def test_bag_distinct():
    rel = BagRelation(R)
    rel.insert(row(a=1, b=2), 5)
    rel.insert(row(a=2, b=3), 1)
    d = rel.distinct()
    assert d.cardinality() == 2
    assert d.count(row(a=1, b=2)) == 1


def test_copy_is_independent():
    rel = BagRelation(R)
    rel.insert(row(a=1, b=2))
    clone = rel.copy()
    clone.insert(row(a=1, b=2))
    assert rel.count(row(a=1, b=2)) == 1
    assert clone.count(row(a=1, b=2)) == 2


def test_from_values():
    rel = SetRelation.from_values(R, [(1, 2), (3, 4)])
    assert rel.contains(row(a=1, b=2))
    bag = BagRelation.from_values(R, [(1, 2), (1, 2)])
    assert bag.count(row(a=1, b=2)) == 2


def test_equality_ignores_container_kind_but_not_counts():
    s = SetRelation.from_values(R, [(1, 2)])
    b1 = BagRelation.from_values(R, [(1, 2)])
    b2 = BagRelation.from_values(R, [(1, 2), (1, 2)])
    assert s == b1
    assert s != b2


def test_rows_iteration_respects_multiplicity():
    bag = BagRelation.from_values(R, [(1, 2), (1, 2), (3, 4)])
    assert len(list(bag.rows())) == 3


def test_to_sorted_list_deterministic():
    bag = BagRelation.from_values(R, [(3, 4), (1, 2), (1, 2)])
    assert bag.to_sorted_list() == [((1, 2), 2), ((3, 4), 1)]


def test_support():
    bag = BagRelation.from_values(R, [(1, 2), (1, 2)])
    assert bag.support() == frozenset([row(a=1, b=2)])
