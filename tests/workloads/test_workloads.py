"""Tests for workload generators: update streams and query mixes."""

import random

import pytest

from repro.correctness import assert_view_correct
from repro.errors import SourceError
from repro.planner import WorkloadProfile, suggest_annotation
from repro.workloads import (
    QueryMix,
    QueryTemplate,
    UpdateStream,
    attribute_profile,
    choice_of,
    constant,
    figure1_mediator,
    uniform_int,
)


def make_stream(sources, rng, **kwargs):
    return UpdateStream(
        sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 50),
            "r3": uniform_int(0, 1000),
            "r4": choice_of([100, 200]),
        },
        rng=rng,
        **kwargs,
    )


def test_update_stream_generates_valid_transactions():
    mediator, sources = figure1_mediator("ex21")
    rng = random.Random(9)
    stream = make_stream(sources, rng)
    stream.run(50)
    assert stream.steps == 50
    mediator.refresh()
    assert_view_correct(mediator)


def test_update_stream_policies_required():
    _, sources = figure1_mediator("ex21")
    with pytest.raises(SourceError):
        UpdateStream(sources["db1"], "R", {"r2": constant(1)}, random.Random(0))


def test_update_stream_insert_only():
    _, sources = figure1_mediator("ex21")
    before = sources["db1"].relation("R").cardinality()
    stream = make_stream(
        sources, random.Random(1), insert_weight=1.0, delete_weight=0.0, modify_weight=0.0
    )
    stream.run(10)
    assert sources["db1"].relation("R").cardinality() == before + 10


def test_update_stream_delete_heavy_shrinks():
    _, sources = figure1_mediator("ex21")
    before = sources["db1"].relation("R").cardinality()
    stream = make_stream(
        sources, random.Random(2), insert_weight=0.0, delete_weight=1.0, modify_weight=0.0
    )
    stream.run(20)
    assert sources["db1"].relation("R").cardinality() == before - 20


def test_update_stream_modify_preserves_cardinality():
    _, sources = figure1_mediator("ex21")
    before = sources["db1"].relation("R").cardinality()
    stream = make_stream(
        sources, random.Random(3), insert_weight=0.0, delete_weight=0.0, modify_weight=1.0
    )
    stream.run(20)
    # A modify that redraws the same value degenerates to a delete; allow
    # a small shrink but never growth.
    after = sources["db1"].relation("R").cardinality()
    assert after <= before
    assert after >= before - 20


def test_query_mix_sampling_and_running():
    mediator, _ = figure1_mediator("ex21")
    rng = random.Random(4)
    mix = QueryMix.of(
        {
            "project[r1, s1](T)": 9.0,
            "project[r3, s2](T)": 1.0,
        },
        rng,
    )
    mix.run(mediator, 20)
    assert mix.issued == 20
    assert mediator.qp.stats.queries >= 20


def test_query_mix_requires_templates():
    from repro.errors import ParseError

    with pytest.raises(ParseError):
        QueryMix([], random.Random(0))


def test_attribute_profile_feeds_planner():
    mediator, _ = figure1_mediator("ex21")
    rng = random.Random(5)
    mix = QueryMix.of(
        {
            "project[r1, s1](T)": 0.95,
            "project[r3, s2](select[r3 < 100](T))": 0.05,
        },
        rng,
    )
    freq = attribute_profile(mix, mediator.vdp.schemas())
    assert freq[("T", "r1")] == pytest.approx(0.95)
    assert freq[("T", "r3")] == pytest.approx(0.05)

    profile = WorkloadProfile(
        update_rates={"db1": 5.0, "db2": 5.0},
        query_rate=1.0,
        attr_access=freq,
        default_access=0.0,
    )
    suggestion = suggest_annotation(mediator.vdp, profile)
    ann = suggestion.annotation("T")
    # The Example 2.3 annotation falls out of the measured workload.
    assert "r1" in ann.materialized_attrs
    assert "s1" in ann.materialized_attrs
    assert "r3" in ann.virtual_attrs
    assert "s2" in ann.virtual_attrs


def test_chain_mediator_depths():
    from repro.workloads import chain_mediator

    for depth in (1, 3):
        mediator, sources = chain_mediator(depth, rows_per_source=15, seed=2)
        assert_view_correct(mediator)
        sources["db0"].insert("T0", k0=500, v0=3)
        sources[f"db{depth}"].insert(f"T{depth}", **{f"k{depth}": 500, f"v{depth}": 1})
        mediator.refresh()
        assert_view_correct(mediator)


def test_chain_mediator_fully_virtual():
    from repro.workloads import chain_mediator

    mediator, _ = chain_mediator(2, rows_per_source=10, default_annotation="v")
    assert mediator.stats().stored_rows == 0
    assert_view_correct(mediator)
    assert mediator.vap.stats.polls > 0


def test_chain_mediator_rejects_zero_depth():
    from repro.workloads import chain_mediator

    with pytest.raises(ValueError):
        chain_mediator(0)


def test_weighted_sampling_respects_weights():
    rng = random.Random(6)
    mix = QueryMix(
        [
            QueryTemplate.of("project[r1](T)", 1000.0),
            QueryTemplate.of("project[s1](T)", 1.0),
        ],
        rng,
    )
    samples = [str(mix.sample()) for _ in range(50)]
    assert samples.count("project[r1](T)") >= 45
