"""Tests for the spec language and mediator generation."""

import pytest

from repro.errors import ParseError, SourceError
from repro.generator import (
    build_vdp_from_spec,
    generate_mediator,
    make_sources,
    parse_spec,
)
from repro.planner import WorkloadProfile
from repro.relalg import row

FIG1_SPEC = """
# Figure 1 of the paper, Example 2.3 annotation.
source db1 {
    relation R(r1: int key, r2: int, r3: int, r4: int)
}
source db2 {
    relation S(s1: int key, s2: int, s3: int)
}

view R_p = project[r1, r2, r3](select[r4 = 100](R))
view S_p = project[s1, s2](select[s3 < 50](S))
export T = project[r1, r3, s1, s2](R_p join[r2 = s1] S_p)

annotate T [r1^m, r3^v, s1^m, s2^v]
annotate R_p virtual
annotate S_p v
"""

INITIAL = {
    "db1": {"R": [(1, 10, 7, 100), (2, 20, 8, 100), (3, 10, 9, 999)]},
    "db2": {"S": [(10, 42, 5), (20, 43, 99)]},
}


def test_parse_spec_structure():
    spec = parse_spec(FIG1_SPEC)
    assert set(spec.sources) == {"db1", "db2"}
    assert spec.sources["db1"].relations[0].schema.key == ("r1",)
    assert spec.sources["db1"].relations[0].schema.attributes[0].dtype == "int"
    assert [v.name for v in spec.views] == ["R_p", "S_p", "T"]
    assert spec.exports() == ["T"]
    assert spec.annotations["T"].startswith("[")


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_spec("source db1 {\n relation R(a)\n}")  # no exports
    with pytest.raises(ParseError):
        parse_spec("export T = project[a](R)")  # no sources
    with pytest.raises(ParseError):
        parse_spec("source db1 {\n}")  # empty source
    with pytest.raises(ParseError):
        parse_spec("source db1 {\n relation R(a)\n")  # unterminated
    with pytest.raises(ParseError):
        parse_spec(FIG1_SPEC + "\nannotate T virtual")  # duplicate annotation
    with pytest.raises(ParseError):
        parse_spec(FIG1_SPEC + "\nwibble wobble")


def test_duplicate_relation_across_sources_rejected():
    text = """
source a { relation R(x) }
source b { relation R(x) }
export V = project[x](R)
"""
    with pytest.raises(ParseError):
        parse_spec(text).source_schemas()


def test_build_vdp_from_spec():
    vdp = build_vdp_from_spec(FIG1_SPEC)
    assert vdp.exports == ("T",)
    assert set(vdp.leaves()) == {"R", "S"}


def test_generate_mediator_end_to_end():
    sources = make_sources(FIG1_SPEC, initial=INITIAL)
    mediator = generate_mediator(FIG1_SPEC, sources)
    assert mediator.initialized
    assert mediator.annotated.virtual_attrs("T") == ("r3", "s2")
    answer = mediator.query("project[r1, s1](T)")
    assert answer.to_sorted_list() == [((1, 10), 1)]
    # Incremental maintenance through the generated mediator.
    sources["db1"].insert("R", r1=4, r2=10, r3=11, r4=100)
    mediator.refresh()
    assert mediator.query("project[r1, s1](T)").to_sorted_list() == [
        ((1, 10), 1),
        ((4, 10), 1),
    ]


def test_generate_rejects_mismatched_sources():
    sources = make_sources(FIG1_SPEC, initial=INITIAL)
    del sources["db2"]
    with pytest.raises(SourceError):
        generate_mediator(FIG1_SPEC, sources)


def test_generate_rejects_schema_mismatch():
    from repro.relalg import make_schema
    from repro.sources import MemorySource

    sources = make_sources(FIG1_SPEC, initial=INITIAL)
    sources["db2"] = MemorySource("db2", [make_schema("S", ["s1", "zzz", "s3"])])
    with pytest.raises(SourceError):
        generate_mediator(FIG1_SPEC, sources)


def test_generate_with_planner_profile():
    spec_no_ann = "\n".join(
        line for line in FIG1_SPEC.splitlines() if not line.startswith("annotate")
    )
    sources = make_sources(spec_no_ann, initial=INITIAL)
    profile = WorkloadProfile(
        update_rates={"db1": 50.0, "db2": 0.01}, query_rate=1.0, default_access=0.9
    )
    mediator = generate_mediator(spec_no_ann, sources, plan_profile=profile)
    # Example 2.2 regime: the planner virtualizes the hot auxiliary.
    assert mediator.annotated.is_fully_virtual("R_p")


def test_generate_with_sqlite_backend():
    sources = make_sources(FIG1_SPEC, initial=INITIAL, backend="sqlite")
    from repro.sources import SQLiteSource

    assert all(isinstance(s, SQLiteSource) for s in sources.values())
    mediator = generate_mediator(FIG1_SPEC, sources)
    assert mediator.query("project[r1, s1](T)").to_sorted_list() == [((1, 10), 1)]
    sources["db1"].insert("R", r1=4, r2=10, r3=11, r4=100)
    mediator.refresh()
    assert mediator.query("project[r1, s1](T)").cardinality() == 2
    for s in sources.values():
        s.close()


def test_make_sources_rejects_unknown_backend():
    with pytest.raises(SourceError):
        make_sources(FIG1_SPEC, backend="oracle")


def test_annotation_for_unknown_view_rejected():
    sources = make_sources(FIG1_SPEC, initial=INITIAL)
    bad = FIG1_SPEC + "\nannotate NOPE virtual\n"
    with pytest.raises(ParseError):
        generate_mediator(bad, sources)
