"""SQLite pushdown: flat chain compilation, index use, and fallback.

Three contracts:

* ``compile_chain_select`` flattens select/project/rename chains into a
  single ``SELECT`` whose WHERE clause sits on the base table — validated
  with ``EXPLAIN QUERY PLAN`` showing the automatic PRIMARY KEY / UNIQUE
  indexes serving key predicates (a nested-subquery compilation hides the
  table behind derived tables and falls back to scans);
* :meth:`SQLiteSource.poll_and_query` answers a whole poll round inside
  the database — announcement, cursor, and every answer taken atomically —
  and :class:`DirectLink` routes to it, with answers identical to the
  Python evaluator's;
* expressions SQL cannot express (``^`` with a non-constant exponent)
  fall back to Python evaluation per-query, counted in
  ``fallback_queries``, without poisoning the rest of the round.
"""

import pytest

from repro.core.links import DirectLink
from repro.errors import EvaluationError
from repro.relalg import Evaluator, make_schema, parse_expression
from repro.sources import MemorySource, SQLiteSource
from repro.sources.sql_compile import compile_chain_select, compile_expression

C = make_schema("C", ["c1", "c2"], key=["c1"])
D = make_schema("D", ["d1", "d2"], key=["d1"])

C_DATA = [(i, i % 7) for i in range(60)]
D_DATA = [(i, i % 5) for i in range(40)]


def make_source():
    return SQLiteSource("db", [C, D], initial={"C": C_DATA, "D": D_DATA})


# ----------------------------------------------------------------------
# Flat chain compilation
# ----------------------------------------------------------------------
def test_chain_select_flattens_to_base_table():
    expr = parse_expression("project[k](rename[c1 = k](select[c1 = 7](C)))")
    sql, params = compile_chain_select(expr, {"C": C, "D": D})
    assert sql == 'SELECT "c1" AS "k" FROM "C" WHERE ("c1" = ?)'
    assert params == [7]


def test_chain_select_stacks_predicates_in_base_columns():
    expr = parse_expression("select[x < 3](rename[c2 = x](select[c1 > 10](C)))")
    sql, params = compile_chain_select(expr, {"C": C, "D": D})
    # Both predicates rewritten to base columns, ANDed on one scan.
    assert sql.count("FROM") == 1
    assert '"c1" > ?' in sql and '"c2" < ?' in sql
    assert params == [10, 3]


def test_chain_select_supports_trailing_dedup():
    expr = parse_expression("dproject[c2](select[c1 < 20](C))")
    sql, _ = compile_chain_select(expr, {"C": C, "D": D})
    assert sql.startswith('SELECT DISTINCT "c2" FROM "C"')


def test_chain_select_rejects_projection_after_dedup():
    expr = parse_expression("project[c2](dproject[c1, c2](C))")
    with pytest.raises(EvaluationError):
        compile_chain_select(expr, {"C": C, "D": D})


def test_chain_select_rejects_joins():
    expr = parse_expression("C join[c1 = d1] D")
    with pytest.raises(EvaluationError):
        compile_chain_select(expr, {"C": C, "D": D})
    # ... which the source transparently routes through the nested compiler.
    source = make_source()
    try:
        assert source.query(expr).cardinality() > 0
    finally:
        source.close()


@pytest.mark.parametrize(
    "text",
    [
        "select[c1 = 7](C)",
        "project[c2](select[c1 < 9](C))",
        "select[x < 3](rename[c2 = x](select[c1 > 10](C)))",
        "dproject[c2](select[c1 < 20](C))",
        "project[k](rename[c1 = k](C))",
    ],
)
def test_chain_and_nested_compilations_agree(text):
    expr = parse_expression(text)
    source = make_source()
    try:
        flat_sql, flat_params = compile_chain_select(expr, source.schemas)
        nested_sql, nested_params = compile_expression(expr, source.schemas)
        cur = source._conn.cursor()
        flat = sorted(cur.execute(flat_sql, flat_params).fetchall())
        nested = sorted(cur.execute(nested_sql, nested_params).fetchall())
        assert flat == nested, text
    finally:
        source.close()


# ----------------------------------------------------------------------
# EXPLAIN QUERY PLAN: pushed predicates hit the automatic indexes
# ----------------------------------------------------------------------
def test_key_predicate_uses_primary_key_index():
    source = make_source()
    try:
        plan = source.explain_query_plan(parse_expression("select[c1 = 7](C)"))
        detail = " ".join(plan)
        assert "SEARCH" in detail
        assert "PRIMARY KEY" in detail or "USING INDEX" in detail
        assert "SCAN" not in detail
    finally:
        source.close()


def test_key_predicate_under_rename_and_project_still_indexed():
    source = make_source()
    try:
        expr = parse_expression("project[k](rename[c1 = k](select[c1 = 7](C)))")
        detail = " ".join(source.explain_query_plan(expr))
        assert "SEARCH" in detail and "SCAN" not in detail
    finally:
        source.close()


def test_full_row_predicate_uses_unique_autoindex():
    source = make_source()
    try:
        expr = parse_expression("select[c1 = 7 and c2 = 0](C)")
        detail = " ".join(source.explain_query_plan(expr))
        assert "SEARCH" in detail and "SCAN" not in detail
    finally:
        source.close()


def test_non_key_predicate_scans():
    # Sanity check on the oracle itself: a predicate no index covers
    # really does report a table scan, so the SEARCH assertions above
    # are discriminating.
    source = make_source()
    try:
        detail = " ".join(source.explain_query_plan(parse_expression("select[c2 = 3](C)")))
        assert "SCAN" in detail
    finally:
        source.close()


# ----------------------------------------------------------------------
# poll_and_query and link routing
# ----------------------------------------------------------------------
def test_poll_and_query_is_atomic_and_correct():
    source = make_source()
    try:
        source.insert("C", c1=100, c2=1)
        queries = {
            "q1": parse_expression("select[c1 = 7](C)"),
            "q2": parse_expression("project[d2](select[d1 < 9](rename[c1 = d1, c2 = d2](C)))"),
        }
        announcement, cursor, answers = source.poll_and_query(queries)
        assert announcement is not None and cursor == 1
        oracle = Evaluator(source.state())
        for name, expr in queries.items():
            assert answers[name].to_sorted_list() == oracle.evaluate(expr, name).to_sorted_list()
        assert source.pushdown_queries == 2
        assert source.fallback_queries == 0
        # Announcement was consumed by the round.
        assert not source.has_pending_announcement()
    finally:
        source.close()


def test_uncompilable_query_falls_back_per_query():
    source = make_source()
    try:
        queries = {
            "good": parse_expression("select[c1 = 7](C)"),
            "bad": parse_expression("select[c1 ^ c2 < 50](C)"),  # non-const exponent
        }
        _, _, answers = source.poll_and_query(queries)
        oracle = Evaluator(source.state())
        for name, expr in queries.items():
            assert answers[name].to_sorted_list() == oracle.evaluate(expr, name).to_sorted_list()
        assert source.pushdown_queries == 1
        assert source.fallback_queries == 1
        assert source.query_count == 2
    finally:
        source.close()


def test_direct_link_routes_through_pushdown():
    source = make_source()
    try:
        delivered = []
        link = DirectLink(
            source, announcement_sink=lambda name, delta, cursor: delivered.append((name, cursor))
        )
        source.insert("C", c1=200, c2=2)
        answers = link.poll_many({"q": parse_expression("select[c1 = 7](C)")})
        assert answers["q"].to_sorted_list() == [((7, 0), 1)]
        assert delivered == [("db", 1)]  # flush-before-answer held
        assert source.pushdown_queries == 1
        assert source.query_count == 1  # counted by the source, not the link
        assert link.poll_count == 1
        assert link.polled_rows == 1
    finally:
        source.close()


def test_pushdown_answers_match_memory_source_round():
    memory = MemorySource("m", [C, D], initial={"C": C_DATA, "D": D_DATA})
    sqlite = make_source()
    try:
        queries = {
            "chain": parse_expression("project[c2](select[c1 < 9](C))"),
            "join": parse_expression("C join[c1 = d1] D"),
            "diff": parse_expression(
                "dproject[c2](C) minus dproject[c2](rename[d1 = c1, d2 = c2](D))"
            ),
        }
        _, _, pushed = sqlite.poll_and_query(queries)
        polled = DirectLink(memory).poll_many(queries)
        for name in queries:
            assert pushed[name].to_sorted_list() == polled[name].to_sorted_list(), name
    finally:
        sqlite.close()
