"""Unit tests for the SQLite-backed source and the SQL compiler."""

import pytest

from repro.errors import EvaluationError, SourceError
from repro.relalg import (
    Attribute,
    RelationSchema,
    eq,
    ge,
    lt,
    make_schema,
    parse_expression,
    parse_predicate,
    row,
    scan,
)
from repro.sources import MemorySource, SQLiteSource, compile_expression

R = RelationSchema(
    "R",
    (Attribute("r1", "int"), Attribute("r2", "int"), Attribute("r3", "str")),
    key=("r1",),
)
S = make_schema("S", ["s1", "s2"], key=["s1"])


def make_source():
    return SQLiteSource(
        "sql1",
        [R, S],
        initial={"R": [(1, 10, "x"), (2, 20, "y")], "S": [(10, 5), (20, 99)]},
    )


def test_snapshot_roundtrip():
    src = make_source()
    rel = src.relation("R")
    assert rel.contains(row(r1=1, r2=10, r3="x"))
    assert rel.cardinality() == 2


def test_insert_delete_through_sql():
    src = make_source()
    src.insert("R", r1=3, r2=30, r3="z")
    assert src.relation("R").contains(row(r1=3, r2=30, r3="z"))
    src.delete("R", r1=3, r2=30, r3="z")
    assert src.relation("R").cardinality() == 2


def test_redundant_insert_rejected_by_validation():
    src = make_source()
    with pytest.raises(SourceError):
        src.insert("R", r1=1, r2=10, r3="x")


def test_select_project_query():
    src = make_source()
    out = src.query(scan("R").select(lt("r2", 15)).project(["r1"]))
    assert out.to_sorted_list() == [((1,), 1)]


def test_join_query():
    src = make_source()
    expr = scan("R").join(scan("S"), eq("r2", "s1")).project(["r1", "s2"])
    out = src.query(expr)
    assert out.to_sorted_list() == [((1, 5), 1), ((2, 99), 1)]


def test_union_and_difference_query():
    src = make_source()
    u = src.query(
        parse_expression("project[r1](R) union project[r1](R)")
    )
    assert u.to_sorted_list() == [((1,), 2), ((2,), 2)]
    d = src.query(
        parse_expression("project[r1](R) minus project[r1](rename[s1 = r1](select[s2 < 50](S)))")
    )
    assert not d.is_bag
    assert d.to_sorted_list() == [((1,), 1), ((2,), 1)]


def test_dedup_projection_distinct():
    src = SQLiteSource("s2", [S], initial={"S": [(1, 7), (2, 7)]})
    out = src.query(parse_expression("dproject[s2](S)"))
    assert out.to_sorted_list() == [((7,), 1)]


def test_rename_query():
    src = make_source()
    out = src.query(parse_expression("project[k](rename[r1 = k](R))"))
    assert out.to_sorted_list() == [((1,), 1), ((2,), 1)]


def test_arithmetic_power_unrolled():
    src = make_source()
    out = src.query(scan("R").select(parse_predicate("r1 ^ 2 + r2 < 15")).project(["r1"]))
    # r1=1: 1+10=11 < 15 ok; r1=2: 4+20=24 no
    assert out.to_sorted_list() == [((1,), 1)]


def test_power_restrictions():
    with pytest.raises(EvaluationError):
        compile_expression(
            scan("R").select(parse_predicate("r1 ^ r2 < 15")), {"R": R}
        )
    with pytest.raises(EvaluationError):
        compile_expression(
            scan("R").select(parse_predicate("r1 ^ 100 < 15")), {"R": R}
        )


def test_string_parameters_not_interpolated():
    src = make_source()
    from repro.relalg import const

    out = src.query(scan("R").select(eq("r3", const("x' OR '1'='1"))).project(["r1"]))
    assert out.is_empty()


def test_sqlite_agrees_with_memory_source_on_same_data():
    data = {"R": [(1, 10, "x"), (2, 20, "y")], "S": [(10, 5), (20, 99)]}
    sql_src = SQLiteSource("a", [R, S], initial=data)
    mem_src = MemorySource("b", [R, S], initial=data)
    queries = [
        "project[r1, s2](select[r2 = s1 and s2 < 50](R join[true] S))",
        "project[r1](R) minus project[r1](rename[s1 = r1](S))",
        "project[r1](R) union project[r1](rename[s1 = r1](select[s2 < 50](S)))",
        "dproject[r3](R)",
    ]
    for q in queries:
        expr = parse_expression(q)
        assert sql_src.query(expr) == mem_src.query(expr), q


def test_query_unknown_relation():
    src = make_source()
    with pytest.raises(SourceError):
        src.query(scan("NOPE"))


def test_announcements_work_through_sql_source():
    src = make_source()
    src.insert("S", s1=33, s2=3)
    ann = src.take_announcement()
    assert ann.sign("S", row(s1=33, s2=3)) == 1


def test_close():
    src = make_source()
    src.close()
