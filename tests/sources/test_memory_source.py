"""Unit tests for the in-memory source database."""

import pytest

from repro.deltas import LeafParentFilter, SetDelta
from repro.errors import SourceError
from repro.relalg import eq, lt, make_schema, row, scan

from repro.sources import MemorySource

R = make_schema("R", ["r1", "r2"], key=["r1"])
S = make_schema("S", ["s1"], key=["s1"])


def make_source():
    return MemorySource("db1", [R, S], initial={"R": [(1, 10), (2, 20)], "S": [(7,)]})


def test_initial_state():
    src = make_source()
    assert src.relation("R").cardinality() == 2
    assert src.relation("S").contains(row(s1=7))


def test_unknown_initial_relation_rejected():
    with pytest.raises(SourceError):
        MemorySource("bad", [R], initial={"ZZ": [(1,)]})


def test_duplicate_schema_names_rejected():
    with pytest.raises(SourceError):
        MemorySource("bad", [R, R])


def test_insert_delete_update_convenience():
    src = make_source()
    src.insert("R", r1=3, r2=30)
    assert src.relation("R").contains(row(r1=3, r2=30))
    src.delete("R", r1=3, r2=30)
    assert not src.relation("R").contains(row(r1=3, r2=30))
    src.update("R", {"r1": 1, "r2": 10}, {"r1": 1, "r2": 11})
    assert src.relation("R").contains(row(r1=1, r2=11))


def test_redundant_operations_rejected():
    src = make_source()
    with pytest.raises(SourceError):
        src.insert("R", r1=1, r2=10)  # already present
    with pytest.raises(SourceError):
        src.delete("R", r1=99, r2=99)  # absent
    with pytest.raises(SourceError):
        src.insert("ZZ", x=1)


def test_transaction_is_atomic_net_delta():
    src = make_source()
    d = SetDelta()
    d.delete("R", row(r1=1, r2=10))
    d.insert("R", row(r1=1, r2=99))
    d.insert("S", row(s1=8))
    txn = src.execute(d)
    assert txn == 1
    assert src.relation("R").contains(row(r1=1, r2=99))
    assert src.relation("S").contains(row(s1=8))
    assert len(src.log()) == 1


def test_announcements_are_net_and_single_message():
    src = make_source()
    assert src.take_announcement() is None
    src.insert("R", r1=3, r2=30)
    src.delete("R", r1=3, r2=30)  # insert-then-delete cancels to nothing
    src.insert("S", s1=9)
    ann = src.take_announcement()
    assert ann.sign("R", row(r1=3, r2=30)) == 0
    assert ann.sign("S", row(s1=9)) == 1
    assert src.take_announcement() is None
    assert not src.has_pending_announcement()


def test_announcement_delete_then_reinsert_same_row_cancels():
    src = make_source()
    src.delete("R", r1=1, r2=10)
    src.insert("R", r1=1, r2=10)
    assert src.take_announcement() is None


def test_announcement_net_delete_survives_reinsert_cycle():
    src = make_source()
    src.delete("R", r1=1, r2=10)
    src.insert("R", r1=1, r2=10)
    src.delete("R", r1=1, r2=10)
    ann = src.take_announcement()
    assert ann.sign("R", row(r1=1, r2=10)) == -1


def test_query_runs_algebra():
    src = make_source()
    out = src.query(scan("R").select(lt("r2", 15)).project(["r1"]))
    assert out.to_sorted_list() == [((1,), 1)]
    assert src.query_count == 1


def test_query_unknown_relation_rejected():
    src = make_source()
    with pytest.raises(SourceError):
        src.query(scan("NOPE"))


def test_on_commit_hooks_fire():
    src = make_source()
    seen = []
    src.on_commit(lambda s, d: seen.append((s.name, d.atom_count())))
    src.insert("S", s1=100)
    assert seen == [("db1", 1)]


def test_prefilter_keeps_relevant_atoms_only():
    src = make_source()
    src.set_prefilters([LeafParentFilter("Rp", "R", lt("r2", 15))])
    src.insert("R", r1=5, r2=5)    # relevant
    src.insert("R", r1=6, r2=600)  # irrelevant to every filter on R
    src.insert("S", s1=50)         # unfiltered relation: kept
    ann = src.take_announcement()
    assert ann.sign("R", row(r1=5, r2=5)) == 1
    assert ann.sign("R", row(r1=6, r2=600)) == 0
    assert ann.sign("S", row(s1=50)) == 1


def test_snapshot_is_isolated_copy():
    src = make_source()
    snap = src.state()
    snap["R"].insert(row(r1=999, r2=999))
    assert not src.relation("R").contains(row(r1=999, r2=999))
