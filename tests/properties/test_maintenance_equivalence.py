"""Property test: incremental maintenance ≡ full recomputation.

The central invariant of the whole system: after any sequence of source
transactions and refreshes, under ANY annotation, every export relation
equals its bottom-up recomputation from current source states.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correctness import assert_view_correct
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_mediator, figure4_mediator

# Operations are drawn as abstract steps; values derive from a seeded rng so
# shrinking stays meaningful.
steps = st.lists(
    st.tuples(
        st.sampled_from(["insert_r", "delete_r", "insert_s", "delete_s", "refresh"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=25,
)


def apply_step(mediator, sources, step, arg, counter):
    kind = step
    if kind == "refresh":
        mediator.refresh()
        return
    if kind == "insert_r":
        sources["db1"].insert(
            "R", r1=100_000 + counter, r2=arg % 50, r3=arg % 997, r4=100 if arg % 2 else 200
        )
        return
    if kind == "insert_s":
        sources["db2"].insert("S", s1=100_000 + counter, s2=arg % 997, s3=arg % 100)
        return
    relation = "R" if kind == "delete_r" else "S"
    source = sources["db1"] if kind == "delete_r" else sources["db2"]
    rows = sorted(source.relation(relation).rows(), key=lambda r: sorted(r.items()))
    if rows:
        source.delete(relation, **dict(rows[arg % len(rows)]))


@given(st.sampled_from(sorted(FIGURE1_ANNOTATIONS)), steps)
@settings(max_examples=30, deadline=None)
def test_figure1_maintenance_equivalence(example, ops):
    mediator, sources = figure1_mediator(example, seed=3)
    for counter, (step, arg) in enumerate(ops):
        apply_step(mediator, sources, step, arg, counter)
    mediator.refresh()
    assert_view_correct(mediator)


fig4_steps = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.booleans(),  # insert vs delete
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=20,
)


@given(st.sampled_from(["paper", "all_m"]), fig4_steps)
@settings(max_examples=20, deadline=None)
def test_figure4_maintenance_equivalence(annotation, ops):
    mediator, sources = figure4_mediator(annotation, seed=5)
    source_names = {"a": "dbA", "b": "dbB", "c": "dbC", "d": "dbD"}
    relations = {"a": "A", "b": "B", "c": "C", "d": "D"}
    for counter, (which, is_insert, arg) in enumerate(ops):
        source = sources[source_names[which]]
        relation = relations[which]
        if is_insert:
            cols = source.schema(relation).attribute_names
            values = {cols[0]: 50_000 + counter, cols[1]: arg % 25}
            source.insert(relation, **values)
        else:
            rows = sorted(source.relation(relation).rows(), key=lambda r: sorted(r.items()))
            if rows:
                source.delete(relation, **dict(rows[arg % len(rows)]))
        if counter % 3 == 0:
            mediator.refresh()
    mediator.refresh()
    assert_view_correct(mediator)
