"""Hypothesis stateful test: the mediator as a state machine.

Hypothesis drives arbitrary interleavings of source transactions, refreshes
and queries against the Figure 1 mediator (hybrid annotation — the most
intricate configuration) and checks two invariants:

* after every refresh, every export equals its ground-truth recomputation;
* queries between refreshes never crash and answer with a *consistent*
  state (they equal the recomputation as of the last refresh, because
  announcements made since are compensated away).
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
from hypothesis import strategies as st

from repro.correctness import recompute
from repro.workloads import figure1_mediator


class MediatorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.mediator = None
        self.sources = None
        self.counter = 0
        self.last_refresh_truth = None

    @initialize(example=st.sampled_from(["ex21", "ex22", "ex23"]))
    def setup(self, example):
        self.mediator, self.sources = figure1_mediator(example, seed=2)
        self.counter = 60_000
        self.last_refresh_truth = recompute(self.mediator.vdp, self.sources, "T")

    @rule(r2=st.integers(0, 49), r3=st.integers(0, 999), passes=st.booleans())
    def insert_r(self, r2, r3, passes):
        self.counter += 1
        self.sources["db1"].insert(
            "R", r1=self.counter, r2=r2, r3=r3, r4=100 if passes else 200
        )

    @rule(s2=st.integers(0, 999), s3=st.integers(0, 99))
    def insert_s(self, s2, s3):
        self.counter += 1
        self.sources["db2"].insert("S", s1=self.counter, s2=s2, s3=s3)

    @rule(pick=st.integers(0, 10_000), use_r=st.booleans())
    def delete_row(self, pick, use_r):
        source = self.sources["db1"] if use_r else self.sources["db2"]
        relation = "R" if use_r else "S"
        rows = sorted(source.relation(relation).rows(), key=lambda r: sorted(r.items()))
        if rows:
            source.delete(relation, **dict(rows[pick % len(rows)]))

    @rule()
    def refresh(self):
        self.mediator.refresh()
        self.last_refresh_truth = recompute(self.mediator.vdp, self.sources, "T")

    @rule()
    def query_hot(self):
        answer = self.mediator.query("project[r1, s1](T)")
        expected = {}
        for r, n in self.last_refresh_truth.items():
            key = (r["r1"], r["s1"])
            expected[key] = expected.get(key, 0) + n
        got = {tuple(r.values_for(["r1", "s1"])): n for r, n in answer.items()}
        assert got == expected, "hot query diverged from last-refresh state"

    @rule()
    def query_cold(self):
        # Touches virtual attributes (under ex23); compensation must keep
        # the answer aligned with the last-refresh state.
        answer = self.mediator.query("project[r3, s1](T)")
        expected = {}
        for r, n in self.last_refresh_truth.items():
            key = (r["r3"], r["s1"])
            expected[key] = expected.get(key, 0) + n
        got = {tuple(r.values_for(["r3", "s1"])): n for r, n in answer.items()}
        assert got == expected, "cold query diverged from last-refresh state"

    @invariant()
    def refreshed_view_matches_truth(self):
        if self.mediator is None:
            return
        if self.mediator.queue.is_empty() and not any(
            s.has_pending_announcement() for s in self.sources.values()
        ):
            current = self.mediator.query_relation("T")
            truth = recompute(self.mediator.vdp, self.sources, "T")
            assert current == truth


MediatorMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestMediatorMachine = MediatorMachine.TestCase
