"""End-to-end parity: layout and net-effect compaction are invisible.

Two ablations over the Figure-4 mediator under randomized churn:

* ``layout="columnar"`` (struct-of-arrays repositories, probe-based set
  rules, vectorized chains) must export exactly what ``layout="row"``
  exports after every refresh;
* ``smash_enabled=False`` (one propagation pass per queued source message,
  in arrival order, instead of one pass over the smashed net delta) must
  reach exactly the same exports — the Heraclitus smash theorem, checked
  through the whole kernel rather than on delta values alone.

Churn deliberately includes insert-then-delete of the *same* rows within
one flush window so the smashed run actually cancels work (visible in
``deltas_smashed``) while the unsmashed run replays it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correctness import assert_view_correct
from repro.workloads.scenarios import figure4_mediator, figure4_sources

SOURCE_OF = {"a": ("dbA", "A"), "b": ("dbB", "B"), "c": ("dbC", "C"), "d": ("dbD", "D")}

churn_ops = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.sampled_from(["insert", "delete", "bounce"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=16,
)


def _drive(mediators, sources_list, ops):
    """Apply the same op script to every (mediator, sources) pair."""
    for counter, (which, op, arg) in enumerate(ops):
        for mediator, sources in zip(mediators, sources_list):
            source_name, relation = SOURCE_OF[which]
            source = sources[source_name]
            cols = source.schema(relation).attribute_names
            # Join-relevant second column: keeps deltas flowing through
            # F = C ⋈ D and the E-join rather than dying at the leaves.
            fresh = {cols[0]: 50_000 + counter, cols[1]: arg % 25}
            if op == "insert":
                source.insert(relation, **fresh)
            elif op == "bounce":
                # Insert + delete of the same row inside one flush window:
                # the net announcement cancels, the unsmashed run replays.
                source.insert(relation, **fresh)
                source.delete(relation, **fresh)
            else:
                rows = sorted(
                    source.relation(relation).rows(), key=lambda r: sorted(r.items())
                )
                if rows:
                    source.delete(relation, **dict(rows[arg % len(rows)]))
        if counter % 3 == 0:
            for mediator, _ in zip(mediators, sources_list):
                mediator.refresh()
    for mediator in mediators:
        mediator.refresh()


def _exports(mediator):
    return {name: mediator.query(name).to_sorted_list() for name in ("E", "G")}


@given(st.sampled_from(["paper", "all_m"]), churn_ops)
@settings(max_examples=15, deadline=None)
def test_columnar_layout_exports_match_row(annotation, ops):
    row_m, row_s = figure4_mediator(annotation, sources=figure4_sources(seed=5), layout="row")
    col_m, col_s = figure4_mediator(
        annotation, sources=figure4_sources(seed=5), layout="columnar"
    )
    _drive([row_m, col_m], [row_s, col_s], ops)
    assert _exports(col_m) == _exports(row_m)
    assert_view_correct(col_m)


@given(st.sampled_from(["paper", "all_m"]), churn_ops)
@settings(max_examples=15, deadline=None)
def test_unsmashed_propagation_exports_match_smashed(annotation, ops):
    smashed_m, smashed_s = figure4_mediator(
        annotation, sources=figure4_sources(seed=5), smash_enabled=True
    )
    plain_m, plain_s = figure4_mediator(
        annotation, sources=figure4_sources(seed=5), smash_enabled=False
    )
    _drive([smashed_m, plain_m], [smashed_s, plain_s], ops)
    assert _exports(plain_m) == _exports(smashed_m)
    assert_view_correct(plain_m)


def test_bounce_churn_is_cancelled_by_smash_and_counted():
    """Deterministic spotlight on the ablation: rows bounced across
    *separate announcements* cost the unsmashed kernel one propagation pass
    per message, while the smashed kernel's queue fold cancels them into a
    single net pass (counted in ``deltas_compacted``)."""
    smashed_m, smashed_s = figure4_mediator(
        "paper", sources=figure4_sources(seed=5), smash_enabled=True
    )
    plain_m, plain_s = figure4_mediator(
        "paper", sources=figure4_sources(seed=5), smash_enabled=False
    )
    for mediator, sources in ((smashed_m, smashed_s), (plain_m, plain_s)):
        # collect between the insert and the delete so each half lands in
        # its own queue entry — bounces inside one source transaction
        # window already cancel at the source's announcement accumulator.
        for i in range(6):
            sources["dbC"].insert("C", c1=9_000 + i, c2=i % 25)
            mediator.collect_announcements()
            sources["dbC"].delete("C", c1=9_000 + i, c2=i % 25)
            mediator.collect_announcements()
        sources["dbA"].insert("A", a1=9_100, a2=3)
        mediator.collect_announcements()
        mediator.run_update_transaction()
    assert _exports(plain_m) == _exports(smashed_m)
    # 13 queued messages replay as 13 passes unsmashed, 1 pass smashed;
    # the 6 bounced inserts+deletes (12 atoms) vanish in the queue fold.
    assert smashed_m.stats().propagation_passes == 1
    assert plain_m.stats().propagation_passes == 13
    assert smashed_m.stats().deltas_compacted >= 12
