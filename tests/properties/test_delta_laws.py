"""Property tests for the Heraclitus delta laws (Section 6.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deltas import BagDelta, SetDelta, select_project
from repro.relalg import BagRelation, SetRelation, lt, make_schema, row, scan, evaluate

R = make_schema("R", ["a", "b"])

values = st.integers(min_value=0, max_value=5)
rows = st.builds(lambda a, b: row(a=a, b=b), values, values)
row_sets = st.frozensets(rows, max_size=8)


def set_relation(rows_):
    return SetRelation(R, rows_)


@st.composite
def set_deltas(draw):
    """A consistent set delta over R."""
    delta = SetDelta()
    for r in draw(st.lists(rows, max_size=6, unique=True)):
        if draw(st.booleans()):
            delta.insert("R", r)
        else:
            delta.delete("R", r)
    return delta


@st.composite
def bag_deltas(draw):
    delta = BagDelta()
    for r in draw(st.lists(rows, max_size=6, unique=True)):
        delta.add("R", r, draw(st.integers(min_value=-3, max_value=3)))
    return delta


@given(row_sets, set_deltas(), set_deltas())
@settings(max_examples=200, deadline=None)
def test_smash_law_set(db_rows, d1, d2):
    """apply(db, d1 ! d2) == apply(apply(db, d1), d2)."""
    db = set_relation(db_rows)
    sequential = d2.applied(d1.applied(db, "R"), "R")
    smashed = d1.smash(d2).applied(db, "R")
    assert sequential == smashed


@given(row_sets, row_sets)
@settings(max_examples=200, deadline=None)
def test_diff_then_apply_roundtrip(before_rows, after_rows):
    before = set_relation(before_rows)
    after = set_relation(after_rows)
    delta = SetDelta.diff("R", before, after)
    assert delta.applied(before, "R") == after
    # Non-redundant by construction, so the inverse law holds exactly.
    assert delta.inverse().applied(after, "R") == before


@given(set_deltas(), set_deltas())
@settings(max_examples=200, deadline=None)
def test_inverse_of_smash_conflict_free(d1, d2):
    """(Δ1!Δ2)⁻¹ = Δ2⁻¹!Δ1⁻¹ — stated in the paper for the non-redundant
    deltas that arise in mediators; as an identity on raw delta values it
    requires the two deltas not to carry conflicting atoms (an insert in one
    and a delete of the same row in the other flips under smash)."""
    conflicting = any(
        d1.sign(rel, r) == -sign for rel, r, sign in d2.atoms()
    )
    if conflicting:
        return
    assert d1.smash(d2).inverse() == d2.inverse().smash(d1.inverse())


@given(row_sets, row_sets, row_sets)
@settings(max_examples=150, deadline=None)
def test_inverse_of_smash_semantic(s0, s1, s2):
    """The semantic form of the same law: for deltas arising as consecutive
    state diffs, applying the smash and then the reversed inverse smash
    restores the original state."""
    db0, db1, db2 = set_relation(s0), set_relation(s1), set_relation(s2)
    d1 = SetDelta.diff("R", db0, db1)
    d2 = SetDelta.diff("R", db1, db2)
    smashed = d1.smash(d2)
    assert smashed.applied(db0, "R") == db2
    back = d2.inverse().smash(d1.inverse())
    assert back.applied(db2, "R") == db0


@given(set_deltas())
@settings(max_examples=100, deadline=None)
def test_double_inverse_identity(d):
    assert d.inverse().inverse() == d


@given(bag_deltas(), bag_deltas())
@settings(max_examples=200, deadline=None)
def test_bag_smash_commutes_and_associates(d1, d2):
    assert d1.smash(d2) == d2.smash(d1)  # bag smash is addition


@given(bag_deltas(), bag_deltas(), bag_deltas())
@settings(max_examples=100, deadline=None)
def test_bag_smash_associative(d1, d2, d3):
    assert d1.smash(d2).smash(d3) == d1.smash(d2.smash(d3))


@given(bag_deltas())
@settings(max_examples=100, deadline=None)
def test_bag_inverse_cancels(d):
    assert d.smash(d.inverse()).is_empty()


@given(row_sets, set_deltas(), st.integers(min_value=0, max_value=5))
@settings(max_examples=200, deadline=None)
def test_select_project_commutation(db_rows, delta, threshold):
    """π_C σ_f apply(R, Δ) == apply(π_C σ_f R, π_C σ_f Δ)  (Section 6.2)."""
    db = set_relation(db_rows)
    pred = lt("b", threshold)
    attrs = ("a",)
    expr = scan("R").select(pred).project(list(attrs))

    lhs = evaluate(expr, {"R": delta.applied(db, "R")})

    view = evaluate(expr, {"R": db}, "V")
    # Under tolerant set apply, redundant atoms may slip into the filtered
    # delta; compute the *effective* delta first (as the mediator's sources
    # guarantee by announcing non-redundant net deltas).
    effective = SetDelta.diff("R", db, delta.applied(db, "R"))
    filtered = select_project(effective, "R", pred, attrs, out_relation="V")
    filtered.apply_to(view, "V")
    assert lhs == view
