"""Property test: delta provenance is exact against from-scratch recompute.

The contract (``repro.obs.provenance``): after an update transaction, for
every node whose attribution is *exact* (``is_approx`` false), the recorded
origin set equals the set of source transactions whose exclusion changes
the node's from-scratch recomputed value; for approximate nodes the
recorded set is an upper bound (never an omission).

Hypothesis drives random batches of effective source transactions (fresh
inserts and deletes of distinct existing rows — each transaction really
changes its source) against the Figure-1 ex21 mediator, flushes them as a
single update transaction, then replays every leave-one-out subset of the
transactions onto pristine sources and recomputes the whole VDP.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correctness import recompute_all
from repro.deltas import SetDelta
from repro.obs import Tracer
from repro.relalg import row
from repro.workloads import figure1_mediator, figure1_sources
from repro.workloads.scenarios import figure1_vdp

R_ROWS, S_ROWS, JOIN_DOMAIN = 10, 8, 6
SOURCE_KW = dict(r_rows=R_ROWS, s_rows=S_ROWS, seed=7, join_domain=JOIN_DOMAIN)

_initial = figure1_sources(**SOURCE_KW)
INITIAL_R = sorted(
    (dict(r) for r, _ in _initial["db1"].state()["R"].items()),
    key=lambda d: d["r1"],
)
INITIAL_S = sorted(
    (dict(r) for r, _ in _initial["db2"].state()["S"].items()),
    key=lambda d: d["s1"],
)

# One op per transaction.  Inserts use fresh keys/payloads so they always
# take effect; deletes pick distinct existing rows (dedup below).
r_insert = st.tuples(
    st.just("insert_r"),
    st.integers(0, JOIN_DOMAIN + 1),  # r2: may or may not join / may miss S'
    st.sampled_from([100, 200]),       # r4: passes or fails the R_p filter
)
s_insert = st.tuples(
    st.just("insert_s"),
    st.integers(0, JOIN_DOMAIN + 1),  # s1: join value
    st.integers(0, 99),                # s3: passes or fails the S_p filter
)
r_delete = st.tuples(st.just("delete_r"), st.integers(0, len(INITIAL_R) - 1), st.just(0))
s_delete = st.tuples(st.just("delete_s"), st.integers(0, len(INITIAL_S) - 1), st.just(0))

ops = st.lists(st.one_of(r_insert, s_insert, r_delete, s_delete), min_size=1, max_size=5)


def build_transactions(op_list):
    """(source, SetDelta) per transaction; duplicate delete targets dropped."""
    txns = []
    used_r, used_s = set(), set()
    for i, (kind, a, b) in enumerate(op_list):
        delta = SetDelta()
        if kind == "insert_r":
            delta.insert("R", row(r1=1000 + i, r2=a, r3=i, r4=b))
            txns.append(("db1", delta))
        elif kind == "insert_s":
            delta.insert("S", row(s1=a, s2=1000 + i, s3=b))
            txns.append(("db2", delta))
        elif kind == "delete_r":
            if a in used_r:
                continue
            used_r.add(a)
            delta.delete("R", row(**INITIAL_R[a]))
            txns.append(("db1", delta))
        else:
            if a in used_s:
                continue
            used_s.add(a)
            delta.delete("S", row(**INITIAL_S[a]))
            txns.append(("db2", delta))
    return txns


def apply_to_fresh_sources(txns, skip=None):
    sources = figure1_sources(**SOURCE_KW)
    for label, (source, delta) in txns:
        if label != skip:
            sources[source].execute(delta)
    return sources


@given(ops)
@settings(max_examples=30, deadline=None)
def test_origin_sets_match_leave_one_out_recompute(op_list):
    txns = build_transactions(op_list)
    if not txns:
        return

    tracer = Tracer(enabled=True, provenance=True)
    sources = figure1_sources(**SOURCE_KW)
    mediator, _ = figure1_mediator("ex21", sources=sources, tracer=tracer)

    labeled = []
    counters = {"db1": 0, "db2": 0}
    for source, delta in txns:
        counters[source] += 1
        labeled.append((f"{source}#{counters[source]}", (source, delta)))
        sources[source].execute(delta)
        # Collect each announcement separately: a source nets consecutive
        # transactions into one pending announcement, and one announcement
        # is the mediator's unit of provenance attribution.
        mediator.collect_announcements()
    mediator.run_update_transaction()

    vdp = figure1_vdp()
    truth_full = recompute_all(vdp, sources)
    prov = tracer.provenance
    nodes = prov.tracked_nodes()
    assert nodes, "the transaction touched no tracked node"

    for label, _ in labeled:
        truth_without = recompute_all(vdp, apply_to_fresh_sources(labeled, skip=label))
        for node in nodes:
            changes = truth_without[node] != truth_full[node]
            blamed = label in {o.label for o in prov.origins_of(node)}
            if changes:
                # Never an omission, exact or not.
                assert blamed, f"{label} changes {node} but is not in its origin set"
            elif not prov.is_approx(node):
                assert not blamed, (
                    f"{label} blamed for {node} but its exclusion leaves it unchanged"
                )

    # The mediator's materialized state agrees with ground truth throughout.
    for node in ("R_p", "S_p", "T"):
        assert mediator.store.repo(node) == truth_full[node]
