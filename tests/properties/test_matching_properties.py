"""Property test: the incremental matching engine ≡ brute-force matching.

After any sequence of inserts/deletes on both sides, the maintained match
table must equal the quadratic recomputation ``{(l, r) | rule.matches}``.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import MatchCriterion, MatchRule, MatchingEngine, casefold_trim
from repro.relalg import make_schema, row
from repro.sources import MemorySource

LEFT = make_schema("L", ["lk", "lname"], key=["lk"])
RIGHT = make_schema("Rt", ["rk", "rname"], key=["rk"])

NAMES = ["ada", "Ada ", "grace", "GRACE", "alan", " alan", "edsger", "kurt"]

ops = st.lists(
    st.tuples(
        st.sampled_from(["il", "ir", "dl", "dr"]),
        st.integers(min_value=0, max_value=7),   # name index
        st.integers(min_value=0, max_value=999), # victim selector
    ),
    max_size=25,
)


def brute_force(rule, left_source, right_source):
    pairs = set()
    for l in left_source.relation("L").rows():
        for r in right_source.relation("Rt").rows():
            if rule.matches(l, r):
                pairs.add(rule.pair(l, r))
    return pairs


@given(ops)
@settings(max_examples=60, deadline=None)
def test_incremental_matching_equals_brute_force(operations):
    left = MemorySource("a", [LEFT], initial={"L": [(0, "ada"), (1, "grace")]})
    right = MemorySource("b", [RIGHT], initial={"Rt": [(0, "ADA"), (1, "kurt")]})
    rule = MatchRule(
        "m",
        "L",
        "Rt",
        (MatchCriterion("lname", "rname", casefold_trim),),
        left_keys=("lk",),
        right_keys=("rk",),
    )
    engine = MatchingEngine([rule], left, right)
    counter = 100
    for op, name_idx, victim in operations:
        counter += 1
        if op == "il":
            left.insert("L", lk=counter, lname=NAMES[name_idx])
        elif op == "ir":
            right.insert("Rt", rk=counter, rname=NAMES[name_idx])
        else:
            source, relation = (left, "L") if op == "dl" else (right, "Rt")
            rows = sorted(source.relation(relation).rows(), key=lambda r: sorted(r.items()))
            if rows:
                source.delete(relation, **dict(rows[victim % len(rows)]))
        assert engine.match_table("m").support() == frozenset(
            brute_force(rule, left, right)
        )
