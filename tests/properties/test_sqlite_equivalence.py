"""Property test: the SQL compiler agrees with the in-memory evaluator.

Random data and randomized query shapes are executed both through
:class:`SQLiteSource` (compiled to SQL, run inside SQLite) and through
:class:`MemorySource` (the Python evaluator); the answers must be
bag-identical.  This pins the algebra→SQL compiler across selects,
projections (bag and distinct), equi- and theta-joins, unions, differences,
renames, and arithmetic conditions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relalg import Attribute, RelationSchema, parse_expression
from repro.sources import MemorySource, SQLiteSource

A = RelationSchema("A", (Attribute("a1", "int"), Attribute("a2", "int")), key=("a1",))
B = RelationSchema("B", (Attribute("b1", "int"), Attribute("b2", "int")), key=("b1",))

QUERY_TEMPLATES = [
    "select[a2 < {k}](A)",
    "project[a2](A)",
    "dproject[a2](A)",
    "project[a1, b2](A join[a2 = b1] B)",
    "project[a1, b1](A join[a1 + a2 < b2] B)",
    "select[a1 ^ 2 < {k}](A)",
    "project[a2](A) union project[a2](rename[b1 = a1, b2 = a2](B))",
    "dproject[a2](A) minus dproject[a2](rename[b1 = a1, b2 = a2](B))",
    "project[x](rename[a2 = x](select[a1 > {k}](A)))",
    "select[a2 = b1 and (a1 < {k} or b2 > 2)](A join[true] B)",
]

values = st.integers(min_value=0, max_value=6)
a_rows = st.lists(st.tuples(st.integers(0, 50), values), max_size=10, unique_by=lambda t: t[0])
b_rows = st.lists(st.tuples(st.integers(0, 50), values), max_size=10, unique_by=lambda t: t[0])


@given(a_rows, b_rows, st.sampled_from(QUERY_TEMPLATES), st.integers(0, 10))
@settings(max_examples=120, deadline=None)
def test_sqlite_and_memory_agree(a_data, b_data, template, k):
    query = parse_expression(template.format(k=k))
    memory = MemorySource("m", [A, B], initial={"A": a_data, "B": b_data})
    sqlite = SQLiteSource("s", [A, B], initial={"A": a_data, "B": b_data})
    try:
        assert sqlite.query(query) == memory.query(query), template
    finally:
        sqlite.close()
