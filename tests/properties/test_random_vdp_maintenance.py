"""Property test: maintenance equivalence over randomized VDPs.

Generates VDPs of every Section 5.1 node shape (SPJ join with a random
projection, bag union over renamed chains, set difference), random legal
annotations, and random interleavings of source transactions and refreshes
— then checks every export against bottom-up recomputation.  This is the
broadest invariant in the suite: it exercises the rulebase, the IUP kernel
and preparation, the VAP (including key-based construction), and eager
compensation in one sweep.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Annotation, AnnotatedVDP, SquirrelMediator, build_vdp
from repro.correctness import assert_view_correct
from repro.errors import AnnotationError
from repro.relalg import make_schema
from repro.sources import MemorySource

X = make_schema("X", ["x1", "x2", "x3"], key=["x1"])
Y = make_schema("Y", ["y1", "y2"], key=["y1"])

JOIN_ATTR_POOL = ["x1", "x2", "x3", "y1", "y2"]


@st.composite
def vdp_specs(draw):
    shape = draw(st.sampled_from(["join", "union", "difference"]))
    threshold = draw(st.integers(min_value=1, max_value=9))
    views = {
        "Xp": f"select[x3 < {threshold}](X)",
        "Yp": "Y",
    }
    if shape == "join":
        attrs = sorted(
            draw(
                st.sets(st.sampled_from(JOIN_ATTR_POOL), min_size=1, max_size=5)
            )
        )
        views["V"] = f"project[{', '.join(attrs)}](Xp join[x2 = y1] Yp)"
    elif shape == "union":
        views["V"] = (
            "project[x1, x2](Xp) union project[x1, x2](rename[y1 = x1, y2 = x2](Yp))"
        )
    else:
        views["V"] = (
            "project[x2](Xp) minus project[x2](rename[y1 = x2](project[y1](Yp)))"
        )
    return shape, views


@st.composite
def annotations_for(draw, annotated_nodes, vdp):
    marks = {}
    for name in annotated_nodes:
        node = vdp.node(name)
        attrs = node.schema.attribute_names
        choice = draw(st.sampled_from(["m", "v", "hybrid"]))
        if choice == "m" or (choice == "hybrid" and len(attrs) < 2):
            marks[name] = Annotation.all_materialized(attrs)
        elif choice == "v":
            marks[name] = Annotation.all_virtual(attrs)
        else:
            split = draw(st.integers(min_value=1, max_value=len(attrs) - 1))
            marks[name] = Annotation.of(
                {a: ("m" if i < split else "v") for i, a in enumerate(attrs)}
            )
    return marks


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["ix", "dx", "iy", "dy", "refresh"]),
        st.integers(min_value=0, max_value=9_999),
    ),
    max_size=18,
)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_random_vdp_maintenance_equivalence(data):
    shape, views = data.draw(vdp_specs())
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=["V"],
    )

    marks = data.draw(annotations_for(vdp.non_leaves(), vdp))
    try:
        annotated = AnnotatedVDP(vdp, marks)
    except AnnotationError:
        return  # e.g. hybrid on a set node: not a legal configuration

    rng = random.Random(7)
    sx = MemorySource(
        "sx",
        [X],
        initial={"X": [(i, rng.randrange(10), rng.randrange(10)) for i in range(12)]},
    )
    sy = MemorySource(
        "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
    )
    mediator = SquirrelMediator(annotated, {"sx": sx, "sy": sy})
    mediator.initialize()

    ops = data.draw(ops_strategy)
    counter = 1000
    for op, arg in ops:
        counter += 1
        if op == "refresh":
            mediator.refresh()
        elif op == "ix":
            sx.insert("X", x1=counter, x2=arg % 10, x3=arg % 13)
        elif op == "iy":
            sy.insert("Y", y1=counter, y2=arg % 10)
        else:
            source, relation = (sx, "X") if op == "dx" else (sy, "Y")
            rows = sorted(source.relation(relation).rows(), key=lambda r: sorted(r.items()))
            if rows:
                source.delete(relation, **dict(rows[arg % len(rows)]))
    mediator.refresh()
    assert_view_correct(mediator)
