"""Property tests for evaluator identities and parser round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relalg import (
    BagRelation,
    Join,
    Project,
    Scan,
    Select,
    Union,
    eq,
    evaluate,
    ge,
    lt,
    make_schema,
    parse_expression,
    row,
)

A = make_schema("A", ["x", "y"])
B = make_schema("B", ["z", "w"])

values = st.integers(min_value=0, max_value=4)
a_rows = st.lists(st.tuples(values, values), max_size=8)
b_rows = st.lists(st.tuples(values, values), max_size=8)


def bag(schema, rows_):
    return BagRelation.from_values(schema, rows_)


@given(a_rows, values)
@settings(max_examples=150, deadline=None)
def test_select_split_conjunction(rows_, k):
    cat = {"A": bag(A, rows_)}
    both = evaluate(Select(Scan("A"), lt("x", k) & ge("y", 1)), cat)
    nested = evaluate(Select(Select(Scan("A"), lt("x", k)), ge("y", 1)), cat)
    assert both == nested


@given(a_rows)
@settings(max_examples=150, deadline=None)
def test_projection_composition(rows_):
    cat = {"A": bag(A, rows_)}
    direct = evaluate(Project(Scan("A"), ("x",)), cat)
    composed = evaluate(Project(Project(Scan("A"), ("x", "y")), ("x",)), cat)
    assert direct == composed


@given(a_rows, b_rows)
@settings(max_examples=100, deadline=None)
def test_join_commutative_up_to_content(a_, b_):
    cat = {"A": bag(A, a_), "B": bag(B, b_)}
    ab = evaluate(Join(Scan("A"), Scan("B"), eq("x", "z")), cat)
    ba = evaluate(Join(Scan("B"), Scan("A"), eq("x", "z")), cat)
    assert {tuple(sorted(r.items())): n for r, n in ab.items()} == {
        tuple(sorted(r.items())): n for r, n in ba.items()
    }


@given(a_rows, b_rows)
@settings(max_examples=100, deadline=None)
def test_hash_join_equals_filtered_cross_product(a_, b_):
    from repro.relalg import TRUE

    cat = {"A": bag(A, a_), "B": bag(B, b_)}
    hash_join = evaluate(Join(Scan("A"), Scan("B"), eq("x", "z")), cat)
    cross = evaluate(Select(Join(Scan("A"), Scan("B"), TRUE), eq("x", "z")), cat)
    assert hash_join == cross


@given(a_rows, a_rows)
@settings(max_examples=100, deadline=None)
def test_union_cardinality_is_additive(a1, a2):
    cat = {"A": bag(A, a1), "B": bag(make_schema("B", ["x", "y"]), a2)}
    u = evaluate(Union(Scan("A"), Scan("B")), cat)
    assert u.cardinality() == len(a1) + len(a2)


@given(a_rows, a_rows)
@settings(max_examples=100, deadline=None)
def test_difference_is_antimonotone_in_right(a1, a2):
    cat = {
        "A": bag(A, a1),
        "B": bag(make_schema("B", ["x", "y"]), a2),
        "EMPTY": bag(make_schema("EMPTY", ["x", "y"]), []),
    }
    small = evaluate(parse_expression("A minus B"), cat)
    big = evaluate(parse_expression("A minus EMPTY"), cat)
    assert small.support() <= big.support()


EXPRESSIONS = [
    "project[r1, s1, s2](select[r4 = 100](R) join[r2 = s1] select[s3 < 50](S))",
    "project[a](X) union project[a](Y)",
    "dproject[a](X) minus dproject[a](Y)",
    "rename[a = b2](select[a < 3 and (a > 0 or a = 0)](X))",
    "select[a ^ 2 + a < 10](X)",
    "(X njoin Y)",
]


@given(st.sampled_from(EXPRESSIONS))
@settings(max_examples=30, deadline=None)
def test_parser_str_roundtrip(text):
    expr = parse_expression(text)
    assert parse_expression(str(expr)) == expr
