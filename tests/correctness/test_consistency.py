"""Tests for the Section 3 consistency/pseudo-consistency checkers."""

import pytest

from repro.correctness import (
    IntegrationTrace,
    check_consistency,
    check_pseudo_consistency,
    view_function_from_vdp,
)
from repro.errors import ConsistencyError
from repro.relalg import Evaluator, SetRelation, make_schema, scan
from repro.workloads import figure2_trace

R = make_schema("R", ["x", "y"])
S = make_schema("S", ["y"])


def simple_view_fn():
    expr = scan("R").project(["y"], dedup=True)

    def view_fn(source_states):
        return {"S": Evaluator({"R": source_states["db"]["R"]}).evaluate(expr, "S")}

    return view_fn


def r_state(*pairs):
    return {"R": SetRelation.from_values(R, pairs)}


def s_state(*values):
    return {"S": SetRelation.from_values(S, [(v,) for v in values])}


def test_figure2_scenario_is_pseudo_consistent_but_not_consistent():
    """The paper's Remark 3.1 counterexample, verified mechanically."""
    trace, view_fn = figure2_trace()
    verdict = check_consistency(trace, view_fn)
    assert not verdict.consistent
    assert verdict.pseudo_consistent
    assert any("order preservation" in f for f in verdict.failures)
    assert check_pseudo_consistency(trace, view_fn)


def test_well_behaved_trace_is_consistent():
    trace = IntegrationTrace(["db"])
    trace.record_source_state("db", 1.0, r_state(("a", "a")))
    trace.record_source_state("db", 3.0, r_state(("b", "b")))
    trace.record_view_state(1.5, "query", s_state("a"))
    trace.record_view_state(4.0, "query", s_state("b"))
    verdict = check_consistency(trace, simple_view_fn())
    assert verdict.consistent
    assert verdict.pseudo_consistent
    assert verdict.reflect == [{"db": 1.0}, {"db": 3.0}]


def test_lagging_view_is_still_consistent():
    """The view may reflect an old state — consistency allows lag."""
    trace = IntegrationTrace(["db"])
    trace.record_source_state("db", 1.0, r_state(("a", "a")))
    trace.record_source_state("db", 2.0, r_state(("b", "b")))
    trace.record_view_state(5.0, "query", s_state("a"))  # still the old state
    verdict = check_consistency(trace, simple_view_fn())
    assert verdict.consistent


def test_forecasting_view_violates_chronology():
    """A view showing a state before the source reaches it is invalid."""
    trace = IntegrationTrace(["db"])
    trace.record_source_state("db", 1.0, r_state(("a", "a")))
    trace.record_source_state("db", 5.0, r_state(("b", "b")))
    trace.record_view_state(2.0, "query", s_state("b"))  # forecasts t=5
    verdict = check_consistency(trace, simple_view_fn())
    assert not verdict.consistent
    assert not verdict.pseudo_consistent
    assert any("validity/chronology" in f for f in verdict.failures)


def test_garbage_view_state_violates_validity():
    trace = IntegrationTrace(["db"])
    trace.record_source_state("db", 1.0, r_state(("a", "a")))
    trace.record_view_state(2.0, "query", s_state("zzz"))
    verdict = check_consistency(trace, simple_view_fn())
    assert not verdict.consistent
    assert verdict.failures


def test_multi_source_reflect_vectors_are_per_source():
    a_schema = make_schema("A", ["x"])
    b_schema = make_schema("B", ["y"])
    out_schema = make_schema("V", ["x", "y"])

    def view_fn(source_states):
        a = source_states["dbA"]["A"]
        b = source_states["dbB"]["B"]
        expr = scan("A").join(scan("B"), None) if False else None
        # cross product via theta join on TRUE
        from repro.relalg import TRUE, Join

        catalog = {"A": a, "B": b}
        return {"V": Evaluator(catalog).evaluate(Join(scan("A"), scan("B"), TRUE), "V")}

    trace = IntegrationTrace(["dbA", "dbB"])
    trace.record_source_state("dbA", 0.0, {"A": SetRelation.from_values(a_schema, [(1,)])})
    trace.record_source_state("dbB", 0.0, {"B": SetRelation.from_values(b_schema, [(9,)])})
    trace.record_source_state("dbA", 2.0, {"A": SetRelation.from_values(a_schema, [(2,)])})
    # View reflects dbA's new state but dbB's old one: a legal state *vector*.
    from repro.relalg import BagRelation

    v = BagRelation.from_values(out_schema, [(2, 9)])
    trace.record_view_state(3.0, "query", {"V": v})
    verdict = check_consistency(trace, view_fn)
    assert verdict.consistent
    assert verdict.reflect == [{"dbA": 2.0, "dbB": 0.0}]


def test_trace_validation_and_ordering():
    trace = IntegrationTrace(["db"])
    with pytest.raises(ConsistencyError):
        trace.validate()  # nothing recorded
    trace.record_source_state("db", 1.0, r_state(("a", "a")))
    with pytest.raises(ConsistencyError):
        trace.record_source_state("db", 0.5, r_state(("b", "b")))
    trace.record_view_state(1.0, "init", s_state("a"))
    with pytest.raises(ConsistencyError):
        trace.record_view_state(0.5, "query", s_state("a"))


def test_identical_consecutive_source_states_collapse():
    trace = IntegrationTrace(["db"])
    trace.record_source_state("db", 1.0, r_state(("a", "a")))
    trace.record_source_state("db", 2.0, r_state(("a", "a")))  # no change
    assert len(trace.source_history("db")) == 1


def test_view_function_from_vdp_matches_manual_evaluation():
    from repro.workloads import figure1_mediator, figure1_vdp

    mediator, sources = figure1_mediator("ex21")
    view_fn = view_function_from_vdp(mediator.vdp)
    states = {name: src.state() for name, src in sources.items()}
    result = view_fn(states)
    assert result["T"] == mediator.query_relation("T")
