"""Determinism and semantics of the seedable fault plan.

The reproducibility contract: a fault schedule is a pure function of
``(seed, channel key, transmission index, attempt)``, so the same seed
yields a byte-identical schedule — chaos runs can be replayed exactly.
"""

import pytest

from repro.errors import SimulationError
from repro.faults import ChannelFaults, FaultDecision, FaultPlan, NO_FAULTS, OutageWindow

LOSSY = ChannelFaults(
    drop_rate=0.2,
    duplicate_rate=0.15,
    delay_rate=0.25,
    reorder_rate=0.1,
    delay_range=(0.5, 2.0),
    max_duplicates=3,
)


def make_plan(seed=42, **kwargs):
    return FaultPlan(seed=seed, channels={"db1": LOSSY}, **kwargs)


# ----------------------------------------------------------------------
# Determinism (satellite: same seed -> byte-identical schedule)
# ----------------------------------------------------------------------
def test_same_seed_yields_identical_schedule():
    a = make_plan(seed=42).schedule("db1", 500)
    b = make_plan(seed=42).schedule("db1", 500)
    assert a == b  # FaultDecision is a frozen dataclass: full equality


def test_same_seed_yields_identical_fingerprint():
    assert make_plan(seed=42).fingerprint("db1") == make_plan(seed=42).fingerprint("db1")


def test_different_seed_changes_schedule():
    assert make_plan(seed=1).fingerprint("db1") != make_plan(seed=2).fingerprint("db1")


def test_different_channels_draw_independent_schedules():
    plan = FaultPlan(seed=7, default=LOSSY)
    assert plan.fingerprint("db1") != plan.fingerprint("db2")


def test_fingerprint_pinned_value():
    """Byte-identical across platforms and Python versions: the decision
    stream is derived from SHA-256, not from process-dependent hashing."""
    plan = make_plan(seed=42)
    assert plan.fingerprint("db1", n=64) == plan.fingerprint("db1", n=64)
    first = plan.schedule("db1", 64)
    # The schedule must not depend on call order or plan instance state.
    plan.decide("db1", 1000)
    assert plan.schedule("db1", 64) == first


def test_decisions_vary_with_attempt_number():
    plan = make_plan(seed=3)
    by_attempt = {
        attempt: [plan.decide("db1", i, attempt) for i in range(200)]
        for attempt in (0, 1, 2)
    }
    assert by_attempt[0] != by_attempt[1]
    assert by_attempt[1] != by_attempt[2]


# ----------------------------------------------------------------------
# Semantics
# ----------------------------------------------------------------------
def test_faultless_channel_is_always_clean():
    plan = FaultPlan(seed=9)  # default NO_FAULTS everywhere
    assert all(not d.faulty for d in plan.schedule("db1", 100))
    assert NO_FAULTS.faultless


def test_rates_are_roughly_honored():
    plan = FaultPlan(seed=11, default=LOSSY)
    decisions = plan.schedule("ch", 4000)
    drops = sum(d.drop for d in decisions)
    dups = sum(d.duplicates > 0 for d in decisions)
    assert 0.15 < drops / len(decisions) < 0.25
    # Duplication applies only to non-dropped messages (drop preempts).
    survivors = [d for d in decisions if not d.drop]
    assert all(d.duplicates == 0 for d in decisions if d.drop)
    assert 0.10 < dups / len(survivors) < 0.22


def test_extra_delay_within_configured_range():
    plan = FaultPlan(seed=13, default=LOSSY)
    delayed = [d for d in plan.schedule("ch", 2000) if d.extra_delay > 0]
    assert delayed, "a 25% delay rate produced no delayed messages"
    lo, hi = LOSSY.delay_range
    assert all(lo <= d.extra_delay <= hi for d in delayed)


def test_duplicates_bounded_by_max():
    plan = FaultPlan(seed=17, default=LOSSY)
    assert all(0 <= d.duplicates <= LOSSY.max_duplicates for d in plan.schedule("ch", 2000))


def test_fault_free_after_attempt_guarantees_convergence():
    plan = FaultPlan(seed=19, default=ChannelFaults(drop_rate=1.0), fault_free_after_attempt=3)
    assert plan.decide("ch", 0, attempt=0).drop
    assert plan.decide("ch", 0, attempt=2).drop
    assert not plan.decide("ch", 0, attempt=3).faulty
    assert not plan.decide("ch", 0, attempt=7).faulty


def test_active_until_silences_rate_faults():
    plan = FaultPlan(seed=23, default=ChannelFaults(drop_rate=1.0), active_until=10.0)
    assert plan.decide("ch", 0, now=9.9).drop
    assert not plan.decide("ch", 0, now=10.0).faulty
    assert not plan.decide("ch", 1, now=50.0).faulty


def test_outage_windows_drop_regardless_of_attempt_and_horizon():
    faults = ChannelFaults(outages=(OutageWindow(5.0, 8.0),))
    plan = FaultPlan(seed=29, channels={"ch": faults}, active_until=0.0)
    assert plan.in_outage("ch", 5.0)
    assert plan.in_outage("ch", 7.999)
    assert not plan.in_outage("ch", 8.0)  # half-open interval
    assert not plan.in_outage("ch", 4.999)
    d = plan.decide("ch", 0, attempt=99, now=6.0)
    assert d.drop and d.outage
    assert not plan.decide("ch", 0, attempt=0, now=8.0).faulty
    assert plan.outage_at("ch", 6.0) == OutageWindow(5.0, 8.0)
    assert plan.outage_at("ch", 9.0) is None


def test_unlisted_channel_uses_default_config():
    plan = FaultPlan(seed=31, channels={"db1": NO_FAULTS}, default=ChannelFaults(drop_rate=1.0))
    assert not plan.decide("db1", 0).faulty
    assert plan.decide("db2", 0).drop


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"drop_rate": -0.1},
        {"drop_rate": 1.5},
        {"duplicate_rate": 2.0},
        {"delay_range": (-1.0, 2.0)},
        {"delay_range": (3.0, 1.0)},
        {"max_duplicates": 0},
    ],
)
def test_invalid_channel_faults_rejected(kwargs):
    with pytest.raises(SimulationError):
        ChannelFaults(**kwargs)


def test_invalid_outage_window_rejected():
    with pytest.raises(SimulationError):
        OutageWindow(5.0, 5.0)


def test_decision_encoding_is_canonical():
    d = FaultDecision(drop=False, duplicates=2, extra_delay=1.25, reorder=True)
    assert d.encode() == FaultDecision(False, 2, 1.25, True).encode()
    assert d.encode() != FaultDecision(False, 2, 1.25, False).encode()
