"""StreamBackoff: the per-stream attempt counter resets on progress.

Regression for the outage-recovery bug: feeding a stream-lifetime retry
count into :meth:`BackoffPolicy.delay` pins a replica that recovers from
a long outage at ``max_backoff`` forever.  :class:`StreamBackoff` owns
the counter and must drop back to ``base_timeout`` the moment the peer
acknowledges progress.
"""

from repro.faults import BackoffPolicy
from repro.faults.reliable import StreamBackoff


def _policy():
    return BackoffPolicy(base_timeout=1.0, multiplier=2.0, max_backoff=8.0)


def test_delays_escalate_to_the_cap():
    backoff = StreamBackoff(_policy())
    assert [backoff.next_delay() for _ in range(5)] == [1.0, 2.0, 4.0, 8.0, 8.0]


def test_record_success_resets_to_base():
    backoff = StreamBackoff(_policy())
    for _ in range(6):  # a long outage: pinned at max_backoff
        backoff.next_delay()
    assert backoff.current_delay == 8.0
    backoff.record_success()
    assert backoff.attempt == 0
    assert backoff.current_delay == 1.0  # not stuck at the cap
    assert backoff.next_delay() == 1.0


def test_current_delay_peeks_without_escalating():
    backoff = StreamBackoff(_policy())
    assert backoff.current_delay == 1.0
    assert backoff.current_delay == 1.0  # peeking twice changes nothing
    assert backoff.next_delay() == 1.0
    assert backoff.current_delay == 2.0


def test_jittered_delays_stay_deterministic_per_key():
    policy = BackoffPolicy(
        base_timeout=1.0, multiplier=2.0, max_backoff=8.0, jitter="decorrelated"
    )
    a1 = StreamBackoff(policy, key="ship:replica-0")
    a2 = StreamBackoff(policy, key="ship:replica-0")
    b = StreamBackoff(policy, key="ship:replica-1")
    seq_a1 = [a1.next_delay() for _ in range(4)]
    seq_a2 = [a2.next_delay() for _ in range(4)]
    seq_b = [b.next_delay() for _ in range(4)]
    assert seq_a1 == seq_a2  # same key → same jitter → replayable schedules
    assert seq_a1 != seq_b
