"""Degraded-mode wins from the VAP temp cache during outage windows.

The companion to :mod:`tests.faults.test_degradation`: with the temp cache
on, pre-outage traffic can warm entries that let poll-requiring queries —
and even whole update transactions — succeed while a source is down.  This
is sound (cached temps reflect the materialized state, which cannot have
advanced: the downed source's commits are still queued), and it is exactly
the availability story §2's materialized approach promises, recovered here
for *virtual* attributes.

Also pins the satellite regression: a query fully served from cache or
materialized storage must not raise :class:`SourceUnavailableError` for a
source it never needed to contact.
"""

import random

import pytest

from repro.core import Annotation, AnnotatedVDP, build_vdp
from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.errors import SourceUnavailableError
from repro.faults import ChannelFaults, FaultPlan, OutageWindow
from repro.relalg import make_schema
from repro.sim import EnvironmentDelays
from repro.runtime import SimulatedEnvironment
from repro.sources import MemorySource

X = make_schema("X", ["x1", "x2", "x3"], key=["x1"])
Y = make_schema("Y", ["y1", "y2"], key=["y1"])

OUTAGE = OutageWindow(3.0, 6.0)

Y_VIRTUAL = {
    "Xp": Annotation.all_materialized(["x1", "x2", "x3"]),
    "Yp": Annotation.all_virtual(["y1", "y2"]),
    "V": Annotation.of({"x1": "m", "x2": "m", "y2": "v"}),
}


def build_env(outage_on="sy"):
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views={
            "Xp": "select[x3 < 5](X)",
            "Yp": "Y",
            "V": "project[x1, x2, y2](Xp join[x2 = y1] Yp)",
        },
        exports=["V"],
    )
    annotated = AnnotatedVDP(vdp, Y_VIRTUAL)
    rng = random.Random(7)
    sx = MemorySource(
        "sx",
        [X],
        initial={"X": [(i, rng.randrange(10), rng.randrange(5)) for i in range(10)]},
    )
    sy = MemorySource(
        "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
    )
    plan = FaultPlan(
        seed=1,
        channels={outage_on: ChannelFaults(outages=(OUTAGE,))},
    )
    delays = EnvironmentDelays.uniform(
        ["sx", "sy"], ann_delay=0.2, comm_delay=0.1, u_hold_delay_med=1.0
    )
    env = SimulatedEnvironment(
        annotated, {"sx": sx, "sy": sy}, delays, fault_plan=plan, record_updates=False
    )
    return env, sx, sy


def test_warm_cache_answers_poll_requiring_query_during_outage():
    """y2 is virtual, sy is down at t=4 — yet the t=1 warm-up query cached
    the Yp/V temps, so the in-outage query succeeds without raising and
    matches the pre-outage answer (sy's queued commits cannot have applied:
    the mediator can't poll it, so the materialized state is unchanged)."""
    env, sx, sy = build_env(outage_on="sy")
    results = {}

    def warm():
        results["before"] = env.mediator.query_relation("V")
        assert env.mediator.vap.cache.entry_count() > 0

    def probe():
        assert env.mediator.source_availability()["sy"] is False
        results["during"] = env.mediator.query_relation("V")
        results["hits"] = env.mediator.vap.stats.cache_hits

    env.schedule_action(1.0, warm, "warm-up query before outage")
    env.schedule_action(4.0, probe, "query during outage")
    env.run_until(10.0)

    assert results["during"] == results["before"]
    assert results["hits"] >= 1
    # After the window closes everything reconverges as usual.
    env.mediator.run_update_transaction()
    assert env.drained(), env.fault_stats()
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)


def test_cold_cache_still_raises_typed_error_during_outage():
    """Without a warm entry the contract from test_degradation holds
    unchanged: a genuinely poll-requiring query raises the typed error."""
    env, sx, sy = build_env(outage_on="sy")

    def probe():
        env.mediator.vap.clear_cache()
        with pytest.raises(SourceUnavailableError) as exc_info:
            env.mediator.query_relation("V")
        assert exc_info.value.source == "sy"

    env.schedule_action(4.0, probe, "cold query during outage")
    env.run_until(10.0)


def test_uncontacted_source_cannot_fail_a_cache_served_query():
    """The satellite regression: when every requested temp is served from
    the cache (or storage), ``_construct_polls`` receives an empty plan set
    and must return without touching — or raising for — any source.  Here
    the query runs while sy is down AND the availability map already marks
    it unavailable; only a poll attempt would raise."""
    env, sx, sy = build_env(outage_on="sy")
    seen = {}

    def warm():
        env.mediator.query_relation("V")

    def probe():
        assert env.mediator.unavailable_sources() == ("sy",)
        # Serves entirely from cache: no poll plan, no error.
        seen["answer"] = env.mediator.query_relation("V")
        # Xp is fully materialized: this never needed any source at all.
        seen["xp"] = env.mediator.query_relation("Xp")

    env.schedule_action(1.0, warm, "warm-up")
    env.schedule_action(4.0, probe, "cache/storage-served queries in outage")
    env.run_until(10.0)
    assert "answer" in seen and "xp" in seen


def test_warm_cache_lets_update_transaction_apply_during_outage():
    """The dual of test_update_transactions_defer_and_retry...: an X commit
    during sy's outage needs a Yp temp for phase (b).  The warm cache
    supplies it (reflecting the unchanged materialized state), so the
    transaction applies instead of deferring — and the final state is
    still exactly right."""
    env, sx, sy = build_env(outage_on="sy")
    env.schedule_action(1.0, lambda: env.mediator.query_relation("V"), "warm-up")
    env.schedule_action(3.2, lambda: sx.insert("X", x1=600, x2=2, x3=1), "commit during sy outage")
    env.run_until(30.0)
    env.mediator.run_update_transaction()

    assert env.mediator.iup.stats.deferred_transactions == 0
    assert env.mediator.queue.is_empty()
    assert env.drained(), env.fault_stats()
    assert any(r["x1"] == 600 for r in env.mediator.query_relation("V").rows())
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)
