"""Chaos property test: maintenance converges under randomized faults.

The headline invariant of the fault subsystem: run a random VDP (every
Section 5.1 node shape, random legal annotations) inside the simulated
environment with a randomized :class:`FaultPlan` — messages dropped,
duplicated, delayed and reordered at up to 10% each — let the reliability
layer repair the damage, drain, and demand that **every materialized node
equals a from-scratch recomputation** from current source states.

All time flows through the discrete-event clock (zero wall-clock sleeps);
fault schedules are pure functions of the plan seed, so every failing
example replays exactly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Annotation, AnnotatedVDP, build_vdp
from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.errors import AnnotationError
from repro.faults import ChannelFaults, FaultPlan
from repro.relalg import make_schema
from repro.sim import EnvironmentDelays
from repro.runtime import SimulatedEnvironment
from repro.sources import MemorySource

X = make_schema("X", ["x1", "x2", "x3"], key=["x1"])
Y = make_schema("Y", ["y1", "y2"], key=["y1"])

JOIN_ATTR_POOL = ["x1", "x2", "x3", "y1", "y2"]

FAULTS_END = 12.0     # rate-based faults stop here (convergence horizon)
LAST_OP = 10.0        # workload fits inside the faulty window
DRAIN_UNTIL = 40.0    # generous room for capped-backoff retransmits


@st.composite
def vdp_specs(draw):
    shape = draw(st.sampled_from(["join", "union", "difference"]))
    threshold = draw(st.integers(min_value=1, max_value=9))
    views = {
        "Xp": f"select[x3 < {threshold}](X)",
        "Yp": "Y",
    }
    if shape == "join":
        attrs = sorted(
            draw(st.sets(st.sampled_from(JOIN_ATTR_POOL), min_size=1, max_size=5))
        )
        views["V"] = f"project[{', '.join(attrs)}](Xp join[x2 = y1] Yp)"
    elif shape == "union":
        views["V"] = (
            "project[x1, x2](Xp) union project[x1, x2](rename[y1 = x1, y2 = x2](Yp))"
        )
    else:
        views["V"] = (
            "project[x2](Xp) minus project[x2](rename[y1 = x2](project[y1](Yp)))"
        )
    return shape, views


@st.composite
def annotations_for(draw, annotated_nodes, vdp):
    marks = {}
    for name in annotated_nodes:
        node = vdp.node(name)
        attrs = node.schema.attribute_names
        choice = draw(st.sampled_from(["m", "v", "hybrid"]))
        if choice == "m" or (choice == "hybrid" and len(attrs) < 2):
            marks[name] = Annotation.all_materialized(attrs)
        elif choice == "v":
            marks[name] = Annotation.all_virtual(attrs)
        else:
            split = draw(st.integers(min_value=1, max_value=len(attrs) - 1))
            marks[name] = Annotation.of(
                {a: ("m" if i < split else "v") for i, a in enumerate(attrs)}
            )
    return marks


@st.composite
def fault_plans(draw):
    """Randomized per-channel fault rates, each capped at 10%."""
    rate = st.floats(min_value=0.0, max_value=0.10)

    def channel():
        return ChannelFaults(
            drop_rate=draw(rate),
            duplicate_rate=draw(rate),
            delay_rate=draw(rate),
            reorder_rate=draw(rate),
            delay_range=(0.0, draw(st.floats(min_value=0.1, max_value=3.0))),
            max_duplicates=draw(st.integers(min_value=1, max_value=3)),
        )

    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        channels={"sx": channel(), "sy": channel()},
        active_until=FAULTS_END,
    )


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["ix", "dx", "iy", "dy"]),
        st.integers(min_value=0, max_value=9_999),
        st.floats(min_value=0.5, max_value=LAST_OP),
    ),
    max_size=12,
)


@given(st.data())
@settings(max_examples=100, deadline=None, derandomize=True)
def test_chaos_convergence_to_recompute(data):
    shape, views = data.draw(vdp_specs())
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=["V"],
    )
    marks = data.draw(annotations_for(vdp.non_leaves(), vdp))
    try:
        annotated = AnnotatedVDP(vdp, marks)
    except AnnotationError:
        return  # e.g. hybrid on a set node: not a legal configuration

    rng = random.Random(7)
    sx = MemorySource(
        "sx",
        [X],
        initial={"X": [(i, rng.randrange(10), rng.randrange(10)) for i in range(12)]},
    )
    sy = MemorySource(
        "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
    )
    delays = EnvironmentDelays.uniform(
        ["sx", "sy"], ann_delay=0.3, comm_delay=0.2, u_hold_delay_med=1.0
    )
    env = SimulatedEnvironment(
        annotated,
        {"sx": sx, "sy": sy},
        delays,
        fault_plan=data.draw(fault_plans()),
        record_updates=False,
    )

    counter = [1000]

    def make_op(op, arg):
        def run():
            counter[0] += 1
            if op == "ix":
                sx.insert("X", x1=counter[0], x2=arg % 10, x3=arg % 13)
            elif op == "iy":
                sy.insert("Y", y1=counter[0], y2=arg % 10)
            else:
                source, relation = (sx, "X") if op == "dx" else (sy, "Y")
                rows = sorted(
                    source.relation(relation).rows(), key=lambda r: sorted(r.items())
                )
                if rows:
                    source.delete(relation, **dict(rows[arg % len(rows)]))

        return run

    for op, arg, t in data.draw(ops_strategy):
        env.schedule_action(t, make_op(op, arg), f"chaos op {op}")

    env.run_until(DRAIN_UNTIL)
    env.mediator.run_update_transaction()  # belt and braces: final flush

    # Quiescence: nothing in flight, buffered, or unacked anywhere.
    assert env.drained(), env.fault_stats()
    # The strong oracle: every materialized repository equals a fresh
    # rebuild from current source states, multiplicities included...
    assert_materialized_correct(env.mediator)
    # ...and the exports computed through the QP match ground truth too.
    assert_view_correct(env.mediator)


@given(st.data())
@settings(max_examples=20, deadline=None, derandomize=True)
def test_chaos_faults_actually_fire(data):
    """Meta-check: the harness is not vacuously passing — across examples
    with forced 10% rates, faults do occur and get repaired."""
    plan = FaultPlan(
        seed=data.draw(st.integers(min_value=0, max_value=2**16)),
        default=ChannelFaults(
            drop_rate=0.10, duplicate_rate=0.10, delay_rate=0.10,
            reorder_rate=0.10, delay_range=(0.0, 2.0),
        ),
        active_until=FAULTS_END,
    )
    decisions = plan.schedule("sx", 50)
    assert any(d.faulty for d in decisions)


@given(st.data())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_chaos_convergence_with_sharded_propagation(data):
    """Shard-count ablation through the same chaos harness: hash-partitioned
    parallel propagation must converge to the recompute oracle under the
    same randomized fault plans, at every shard count."""
    shape, views = data.draw(vdp_specs())
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=["V"],
    )
    marks = data.draw(annotations_for(vdp.non_leaves(), vdp))
    try:
        annotated = AnnotatedVDP(vdp, marks)
    except AnnotationError:
        return
    shards = data.draw(st.sampled_from([2, 3, 4]))

    rng = random.Random(7)
    sx = MemorySource(
        "sx",
        [X],
        initial={"X": [(i, rng.randrange(10), rng.randrange(10)) for i in range(12)]},
    )
    sy = MemorySource(
        "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
    )
    delays = EnvironmentDelays.uniform(
        ["sx", "sy"], ann_delay=0.3, comm_delay=0.2, u_hold_delay_med=1.0
    )
    env = SimulatedEnvironment(
        annotated,
        {"sx": sx, "sy": sy},
        delays,
        fault_plan=data.draw(fault_plans()),
        record_updates=False,
        shards=shards,
    )

    counter = [1000]

    def make_op(op, arg):
        def run():
            counter[0] += 1
            if op == "ix":
                sx.insert("X", x1=counter[0], x2=arg % 10, x3=arg % 13)
            elif op == "iy":
                sy.insert("Y", y1=counter[0], y2=arg % 10)
            else:
                source, relation = (sx, "X") if op == "dx" else (sy, "Y")
                rows = sorted(
                    source.relation(relation).rows(), key=lambda r: sorted(r.items())
                )
                if rows:
                    source.delete(relation, **dict(rows[arg % len(rows)]))

        return run

    for op, arg, t in data.draw(ops_strategy):
        env.schedule_action(t, make_op(op, arg), f"chaos op {op}")

    env.run_until(DRAIN_UNTIL)
    env.mediator.run_update_transaction()

    assert env.drained(), env.fault_stats()
    assert env.mediator.shards == shards
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)


@given(st.data())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_chaos_convergence_with_columnar_layout(data):
    """Layout ablation through the same chaos harness: struct-of-arrays
    repositories (probe-based set rules, vectorized chains) must converge
    to the recompute oracle under the same randomized fault plans."""
    shape, views = data.draw(vdp_specs())
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views=views,
        exports=["V"],
    )
    marks = data.draw(annotations_for(vdp.non_leaves(), vdp))
    try:
        annotated = AnnotatedVDP(vdp, marks)
    except AnnotationError:
        return

    rng = random.Random(7)
    sx = MemorySource(
        "sx",
        [X],
        initial={"X": [(i, rng.randrange(10), rng.randrange(10)) for i in range(12)]},
    )
    sy = MemorySource(
        "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
    )
    delays = EnvironmentDelays.uniform(
        ["sx", "sy"], ann_delay=0.3, comm_delay=0.2, u_hold_delay_med=1.0
    )
    env = SimulatedEnvironment(
        annotated,
        {"sx": sx, "sy": sy},
        delays,
        fault_plan=data.draw(fault_plans()),
        record_updates=False,
        layout="columnar",
    )

    counter = [1000]

    def make_op(op, arg):
        def run():
            counter[0] += 1
            if op == "ix":
                sx.insert("X", x1=counter[0], x2=arg % 10, x3=arg % 13)
            elif op == "iy":
                sy.insert("Y", y1=counter[0], y2=arg % 10)
            else:
                source, relation = (sx, "X") if op == "dx" else (sy, "Y")
                rows = sorted(
                    source.relation(relation).rows(), key=lambda r: sorted(r.items())
                )
                if rows:
                    source.delete(relation, **dict(rows[arg % len(rows)]))

        return run

    for op, arg, t in data.draw(ops_strategy):
        env.schedule_action(t, make_op(op, arg), f"chaos op {op}")

    env.run_until(DRAIN_UNTIL)
    env.mediator.run_update_transaction()

    assert env.drained(), env.fault_stats()
    assert env.mediator.store.layout == "columnar"
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)
