"""Graceful degradation across scheduled outage windows.

During an outage the paper's environment model simply has no story — the
mediator would hang on a poll.  These tests pin the degraded-mode
contract instead:

* materialized data keeps answering, with an explicit staleness tag;
* queries that *need* a poll to the downed source raise a typed
  :class:`SourceUnavailableError` (callers choose: fail or serve stale);
* update transactions needing such a poll are deferred — requeued intact,
  retried next flush — never half-applied;
* once the window closes, retransmission drains everything and the view
  reconverges to ground truth.
"""

import random

import pytest

from repro.core import Annotation, AnnotatedVDP, build_vdp
from repro.correctness import (
    assert_materialized_correct,
    assert_view_correct,
    check_tagged_staleness,
)
from repro.errors import SourceUnavailableError
from repro.faults import ChannelFaults, FaultPlan, OutageWindow
from repro.relalg import make_schema
from repro.sim import EnvironmentDelays
from repro.runtime import SimulatedEnvironment
from repro.sources import MemorySource

X = make_schema("X", ["x1", "x2", "x3"], key=["x1"])
Y = make_schema("Y", ["y1", "y2"], key=["y1"])

OUTAGE = OutageWindow(3.0, 6.0)


def build_env(marks, outage_on="sx", window=OUTAGE, vap_cache_enabled=True):
    vdp = build_vdp(
        source_schemas={"X": X, "Y": Y},
        source_of={"X": "sx", "Y": "sy"},
        views={
            "Xp": "select[x3 < 5](X)",
            "Yp": "Y",
            "V": "project[x1, x2, y2](Xp join[x2 = y1] Yp)",
        },
        exports=["V"],
    )
    annotated = AnnotatedVDP(vdp, marks)
    rng = random.Random(7)
    sx = MemorySource(
        "sx",
        [X],
        initial={"X": [(i, rng.randrange(10), rng.randrange(5)) for i in range(10)]},
    )
    sy = MemorySource(
        "sy", [Y], initial={"Y": [(i, rng.randrange(10)) for i in range(8)]}
    )
    plan = FaultPlan(
        seed=1,
        channels={outage_on: ChannelFaults(outages=(window,))},
    )
    delays = EnvironmentDelays.uniform(
        ["sx", "sy"], ann_delay=0.2, comm_delay=0.1, u_hold_delay_med=1.0
    )
    env = SimulatedEnvironment(
        annotated,
        {"sx": sx, "sy": sy},
        delays,
        fault_plan=plan,
        vap_cache_enabled=vap_cache_enabled,
        record_updates=False,
    )
    return env, sx, sy


ALL_MAT = {
    "Xp": Annotation.all_materialized(["x1", "x2", "x3"]),
    "Yp": Annotation.all_materialized(["y1", "y2"]),
    "V": Annotation.all_materialized(["x1", "x2", "y2"]),
}

Y_VIRTUAL = {
    "Xp": Annotation.all_materialized(["x1", "x2", "x3"]),
    "Yp": Annotation.all_virtual(["y1", "y2"]),
    "V": Annotation.of({"x1": "m", "x2": "m", "y2": "v"}),
}


def test_materialized_answers_survive_outage_with_staleness_tag():
    env, sx, sy = build_env(ALL_MAT)
    probes = {}

    def probe():
        m = env.mediator
        probes["availability"] = m.source_availability()
        probes["unavailable"] = m.unavailable_sources()
        answer = m.query_relation_tagged("V")
        probes["tagged"] = answer
        probes["plain"] = m.query_relation("V")

    env.schedule_action(1.0, lambda: sx.insert("X", x1=500, x2=1, x3=1), "pre-outage commit")
    env.schedule_action(4.0, lambda: sx.insert("X", x1=501, x2=1, x3=1), "in-outage commit")
    env.schedule_action(4.5, probe, "probe during outage")
    env.run_until(30.0)
    env.mediator.run_update_transaction()

    assert probes["availability"] == {"sx": False, "sy": True}
    assert probes["unavailable"] == ("sx",)
    tagged = probes["tagged"]
    assert tagged.degraded
    assert tagged.tag.unavailable == ("sx",)
    # The pre-outage commit was reflected; staleness is measured from its
    # send time: at t=4.5 the answer is stale but bounded.
    assert 0.0 < tagged.tag.staleness["sx"] <= 4.5
    assert "sy" not in tagged.tag.staleness
    # The tagged value is the same materialized answer the plain path gives.
    assert tagged.value == probes["plain"]

    # After the window closes, the in-outage commit is retransmitted
    # through and the view reconverges exactly.
    assert env.drained(), env.fault_stats()
    assert any(r["x1"] == 501 for r in env.mediator.query_relation("V").rows())
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)


def test_availability_restored_after_window():
    env, _, _ = build_env(ALL_MAT)
    seen = {}
    env.schedule_action(6.5, lambda: seen.update(env.mediator.source_availability()), "probe")
    env.run_until(10.0)
    assert seen == {"sx": True, "sy": True}
    assert env.mediator.staleness_tag().degraded is False
    assert env.mediator.unavailable_sources() == ()


def test_poll_requiring_query_raises_typed_error_during_outage():
    env, sx, sy = build_env(Y_VIRTUAL, outage_on="sy")
    caught = {}

    def probe():
        # Pre-outage traffic may have warmed the VAP temp cache, which would
        # (correctly) answer without touching sy — that degraded-mode win is
        # pinned in test_cache_degradation.py.  Drop it so this query
        # genuinely needs a poll.
        env.mediator.vap.clear_cache()
        with pytest.raises(SourceUnavailableError) as exc_info:
            env.mediator.query_relation("V")  # y2 is virtual: needs a poll
        caught["error"] = exc_info.value

    env.schedule_action(4.0, probe, "query during outage")
    env.run_until(10.0)
    err = caught["error"]
    assert err.source == "sy"
    assert err.until == OUTAGE.end
    assert "unavailable" in str(err)


def test_update_transactions_defer_and_retry_until_source_returns():
    """An X update needs a Y poll (Yp virtual).  With sy down, the flush
    must requeue the update untouched — phase (b) fails before any store
    mutation — and the periodic policy retries until the poll succeeds.
    The temp cache is disabled: with it on, a pre-outage fill would let
    phase (b) succeed without the poll (pinned in test_cache_degradation.py)
    and nothing would ever defer."""
    env, sx, sy = build_env(Y_VIRTUAL, outage_on="sy", vap_cache_enabled=False)
    env.schedule_action(3.2, lambda: sx.insert("X", x1=600, x2=2, x3=1), "commit during sy outage")
    env.run_until(30.0)
    env.mediator.run_update_transaction()

    stats = env.mediator.iup.stats
    assert stats.deferred_transactions >= 1
    # Requeues are visible in the queue's own accounting too.
    assert env.mediator.queue.total_requeued >= 1
    assert env.mediator.queue.is_empty()
    assert env.drained(), env.fault_stats()
    assert any(r["x1"] == 600 for r in env.mediator.query_relation("V").rows())
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)


def test_tagged_staleness_checker_flags_tight_bounds_only():
    env, sx, sy = build_env(ALL_MAT)
    tags = []
    env.schedule_action(1.0, lambda: sx.insert("X", x1=700, x2=3, x3=1), "commit")
    for t in (4.0, 5.0, 5.9):
        env.schedule_action(t, lambda: tags.append(env.mediator.staleness_tag()), "tag")
    env.run_until(10.0)

    assert all(tag.degraded for tag in tags)
    assert max(tag.worst() for tag in tags) > 0
    # A bound wider than the outage length passes; a tight one reports.
    assert check_tagged_staleness(tags, {"sx": 10.0}) == []
    violations = check_tagged_staleness(tags, {"sx": 0.5})
    assert violations and all("sx" in v for v in violations)


def test_outage_during_quiescence_never_loses_anything():
    """An outage with no traffic inside it is a non-event: no deferral, no
    divergence, clean counters."""
    env, sx, sy = build_env(ALL_MAT)
    env.schedule_action(0.5, lambda: sx.insert("X", x1=800, x2=4, x3=1), "pre-outage")
    env.schedule_action(8.0, lambda: sy.insert("Y", y1=800, y2=4), "post-outage")
    env.run_until(20.0)
    env.mediator.run_update_transaction()
    assert env.mediator.iup.stats.deferred_transactions == 0
    assert env.drained(), env.fault_stats()
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)
