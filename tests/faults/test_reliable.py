"""Unit tests for the reliability layer (sequencing, dedup, retransmit).

Drives :class:`ReliableSender`/:class:`ReliableInbox` over a faulty
:class:`Channel` inside the discrete-event simulator — no wall-clock time
anywhere — and checks that the Section 4 contract (in-order, exactly-once)
is restored end to end.
"""

import pytest

from repro.errors import SimulationError
from repro.faults import (
    BackoffPolicy,
    ChannelFaults,
    Envelope,
    FaultPlan,
    ReliableInbox,
    ReliableSender,
)
from repro.sim import Channel, Simulator


def make_inbox():
    released = []
    inbox = ReliableInbox(released.append, name="test-inbox")
    return inbox, released


def env(faults=None, seed=0, backoff=None, **plan_kwargs):
    plan = FaultPlan(seed=seed, default=faults, **plan_kwargs) if faults else None
    sim = Simulator(fault_plan=plan)
    inbox, released = make_inbox()
    channel = Channel(sim, 0.5, deliver=lambda e, st: inbox.deliver(e), name="ch")
    sender = ReliableSender(channel, inbox, sim, backoff or BackoffPolicy(base_timeout=1.0))
    return sim, channel, sender, inbox, released


# ----------------------------------------------------------------------
# Inbox: dedup, gaps, in-order release
# ----------------------------------------------------------------------
def test_inbox_releases_in_order():
    inbox, released = make_inbox()
    for seq in range(3):
        inbox.deliver(Envelope(seq, f"p{seq}", float(seq)))
    assert [e.payload for e in released] == ["p0", "p1", "p2"]
    assert inbox.delivered_through == 2
    assert not inbox.pending_gap()


def test_inbox_smashes_duplicates_idempotently():
    inbox, released = make_inbox()
    e = Envelope(0, "p0", 0.0)
    assert inbox.deliver(e) == 1
    assert inbox.deliver(e) == 0
    assert inbox.deliver(Envelope(0, "p0", 0.0)) == 0
    assert [x.payload for x in released] == ["p0"]
    assert inbox.duplicates_dropped == 2


def test_inbox_buffers_out_of_order_until_gap_fills():
    inbox, released = make_inbox()
    assert inbox.deliver(Envelope(2, "p2", 0.0)) == 0  # gap: 0, 1 missing
    assert inbox.deliver(Envelope(1, "p1", 0.0)) == 0
    assert inbox.pending_gap()
    assert inbox.missing() == [0]
    assert inbox.gaps_detected == 2
    # The missing predecessor releases everything buffered, in order.
    assert inbox.deliver(Envelope(0, "p0", 0.0)) == 3
    assert [e.payload for e in released] == ["p0", "p1", "p2"]
    assert not inbox.pending_gap()


def test_inbox_drops_duplicate_of_buffered_envelope():
    inbox, _ = make_inbox()
    inbox.deliver(Envelope(3, "p3", 0.0))
    inbox.deliver(Envelope(3, "p3", 0.0))
    assert inbox.duplicates_dropped == 1


# ----------------------------------------------------------------------
# Backoff policy
# ----------------------------------------------------------------------
def test_backoff_delays_grow_exponentially_and_cap():
    policy = BackoffPolicy(base_timeout=1.0, multiplier=2.0, max_backoff=5.0)
    assert [policy.delay(a) for a in range(4)] == [1.0, 2.0, 4.0, 5.0]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base_timeout": 0.0},
        {"multiplier": 0.5},
        {"base_timeout": 2.0, "max_backoff": 1.0},
        {"jitter": "full"},
    ],
)
def test_backoff_validation(kwargs):
    with pytest.raises(SimulationError):
        BackoffPolicy(**kwargs)


def test_decorrelated_jitter_is_deterministic_under_seed():
    policy = BackoffPolicy(
        base_timeout=1.0, max_backoff=20.0, jitter="decorrelated", jitter_seed=42
    )
    same = BackoffPolicy(
        base_timeout=1.0, max_backoff=20.0, jitter="decorrelated", jitter_seed=42
    )
    delays = [policy.delay(a, key="db1#0") for a in range(6)]
    assert delays == [same.delay(a, key="db1#0") for a in range(6)]
    # Attempt 0 is always the base; every delay respects base and cap.
    assert delays[0] == 1.0
    assert all(1.0 <= d <= 20.0 for d in delays)


def test_decorrelated_jitter_decorrelates_keys_and_seeds():
    policy = BackoffPolicy(
        base_timeout=1.0, max_backoff=1000.0, jitter="decorrelated", jitter_seed=42
    )
    other_seed = BackoffPolicy(
        base_timeout=1.0, max_backoff=1000.0, jitter="decorrelated", jitter_seed=43
    )
    a = [policy.delay(n, key="db1#0") for n in range(1, 8)]
    b = [policy.delay(n, key="db2#0") for n in range(1, 8)]
    c = [other_seed.delay(n, key="db1#0") for n in range(1, 8)]
    assert a != b  # distinct streams draw distinct schedules
    assert a != c  # and distinct seeds reshuffle the same stream


def test_decorrelated_jitter_grows_toward_cap():
    policy = BackoffPolicy(
        base_timeout=1.0, max_backoff=8.0, jitter="decorrelated", jitter_seed=7
    )
    # d_n <= min(cap, 3 * d_{n-1}); after enough attempts the cap binds.
    delays = [policy.delay(n, key="k") for n in range(12)]
    assert all(d <= 8.0 for d in delays)
    assert max(delays) > 1.0


# ----------------------------------------------------------------------
# Sender: retransmission until acknowledged
# ----------------------------------------------------------------------
def test_clean_channel_delivers_without_retransmits():
    sim, channel, sender, inbox, released = env()
    sender.send("hello")
    sim.run_until(10.0)
    assert [e.payload for e in released] == ["hello"]
    assert sender.retransmits == 0
    assert sender.unacked_count() == 0


def test_dropped_message_is_retransmitted_until_through():
    # Every first attempt is dropped; attempt >= 1 is fault-free.
    sim, channel, sender, inbox, released = env(
        faults=ChannelFaults(drop_rate=1.0), fault_free_after_attempt=1
    )
    sender.send("payload")
    sim.run_until(20.0)
    assert [e.payload for e in released] == ["payload"]
    assert channel.messages_dropped == 1
    assert sender.retransmits == 1
    assert sender.unacked_count() == 0


def test_backoff_spacing_of_retransmits():
    sim, channel, sender, inbox, released = env(
        faults=ChannelFaults(drop_rate=1.0),
        fault_free_after_attempt=3,
        backoff=BackoffPolicy(base_timeout=1.0, multiplier=2.0, max_backoff=30.0),
    )
    sender.send("p")
    sim.run_until(50.0)
    # Attempts 0,1,2 all drop; checks at t=1, 1+2=3, 3+4=7 retransmit; the
    # attempt-3 transmission (t=7) is clean and arrives at 7.5.
    assert sender.retransmits == 3
    assert [e.payload for e in released] == ["p"]
    assert channel.messages_dropped == 3
    assert channel.messages_delivered == 1


def test_duplicated_retransmits_are_smashed_downstream():
    sim, channel, sender, inbox, released = env(
        faults=ChannelFaults(duplicate_rate=1.0, max_duplicates=2),
        fault_free_after_attempt=1,
        seed=5,
    )
    sender.send("a")
    sender.send("b")
    sim.run_until(30.0)
    assert [e.payload for e in released] == ["a", "b"]
    assert channel.messages_duplicated > 0
    assert inbox.duplicates_dropped == channel.messages_duplicated
    assert sender.unacked_count() == 0


def test_max_retries_abandons_and_counts():
    sim, channel, sender, inbox, released = env(
        faults=ChannelFaults(drop_rate=1.0),
        fault_free_after_attempt=100,  # never relents
        backoff=BackoffPolicy(base_timeout=1.0, max_retries=2),
    )
    sender.send("doomed")
    sim.run_until(60.0)
    assert released == []
    assert sender.abandoned == 1
    assert sender.unacked_count() == 0
    assert sender.retransmits == 2


def test_sync_into_inbox_recovers_lost_tail():
    """The poll-path escape hatch: a drop with no later traffic would wait a
    full backoff for repair; a synchronous poll recovers it immediately."""
    sim, channel, sender, inbox, released = env(
        faults=ChannelFaults(drop_rate=1.0), fault_free_after_attempt=1
    )
    sender.send("tail")
    sim.run_until(0.6)  # past the nominal delivery time; drop happened
    assert released == []
    assert sender.unacked_count() == 1
    assert sender.sync_into_inbox() == 1
    assert [e.payload for e in released] == ["tail"]
    assert sender.unacked_count() == 0
    # The pending ack-check later finds the seq resolved: no retransmit.
    sim.run_until(20.0)
    assert sender.retransmits == 0
    assert [e.payload for e in released] == ["tail"]


def test_reordered_arrivals_released_in_sequence_order():
    sim, channel, sender, inbox, released = env(
        faults=ChannelFaults(reorder_rate=0.6, delay_range=(0.0, 3.0)),
        seed=12,
        fault_free_after_attempt=2,
    )
    for i in range(8):
        sim.schedule_at(float(i) * 0.2, lambda i=i: sender.send(f"m{i}"), "send")
    sim.run_until(60.0)
    assert [e.payload for e in released] == [f"m{i}" for i in range(8)]
    assert sender.unacked_count() == 0
