"""Chaos property: replicated state equals serial recompute, always.

The headline invariant of the replication layer, in the fault subsystem's
house style (see ``tests/faults/test_chaos_convergence.py``): drive the
full stack — primary, WAL shipper, replica fleet — through a randomized
workload under a randomized :class:`FaultPlan` (drops, duplicates,
delays, reorders at up to ~40% each, plus injected sender-buffer gaps and
scheduled crashes), then demand that

* every surviving replica's exports equal a **from-scratch recompute**
  over the live sources (drain path), and
* after a scheduled crash, the promoted replica's exports do too — i.e.
  no acknowledged transaction was lost (failover path).

Everything is a pure function of the Hypothesis-drawn seeds (the harness
clock is an integer step counter), so every failing example replays
exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import ChannelFaults, CrashPoint, FaultPlan
from repro.replication import ReplicationHarness


@st.composite
def fault_plans(draw):
    seed = draw(st.integers(min_value=0, max_value=2**20))
    channels = {}
    for i in range(draw(st.integers(min_value=1, max_value=2))):
        channels[f"ship:replica-{i}"] = ChannelFaults(
            drop_rate=draw(st.floats(min_value=0.0, max_value=0.4)),
            duplicate_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
            delay_rate=draw(st.floats(min_value=0.0, max_value=0.4)),
            reorder_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
            delay_range=(1.0, float(draw(st.integers(min_value=1, max_value=4)))),
        )
    return FaultPlan(seed=seed, channels=channels)


@given(
    plan=fault_plans(),
    seed=st.integers(min_value=0, max_value=999),
    commits=st.integers(min_value=5, max_value=20),
    gap_at=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
)
@settings(max_examples=25, deadline=None, derandomize=True)
def test_replicas_converge_under_random_faults(plan, seed, commits, gap_at):
    replicas = len(plan.channels)
    h = ReplicationHarness(replicas=replicas, seed=seed, faults=plan)
    try:
        for k in range(commits):
            h.commit()
            h.tick()
            if gap_at is not None and k == gap_at:
                h.shipper.inject_gap("replica-0")
        h.assert_converged()
        now = float(h.step)
        for replica in h.replicas:
            assert replica.lag(now) < float("inf")
            assert replica.applied_txn == h.durability._txn
    finally:
        h.close()


@given(
    plan=fault_plans(),
    seed=st.integers(min_value=0, max_value=999),
    crash_txn=st.integers(min_value=2, max_value=10),
    silent=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_promotion_loses_nothing_under_random_faults(plan, seed, crash_txn, silent):
    replicas = len(plan.channels)
    h = ReplicationHarness(
        replicas=replicas,
        seed=seed,
        faults=plan,
        crash_points=[CrashPoint(crash_txn, "post-wal-append")],
        heartbeat_timeout=3.0,
    )
    try:
        for _ in range(crash_txn + 3):
            if not h.commit():
                break
            h.tick()
        assert h.primary_dead  # the schedule guarantees the crash fired
        for _ in range(silent):
            h.silent_commit()
        now = h.advance_past_timeout()
        result = h.coordinator.check(now)
        assert result is not None
        promoted = h.coordinator.promoted
        assert h.replica_exports(promoted) == h.expected_exports()
    finally:
        h.close()
