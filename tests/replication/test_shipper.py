"""WAL shipping: clean streaming, faulted channels, gap healing, tracing."""

from repro.faults import ChannelFaults, FaultPlan
from repro.obs import Tracer
from repro.replication import ReplicationHarness


def test_clean_stream_converges_with_zero_lag():
    h = ReplicationHarness(replicas=2, seed=3)
    try:
        h.run(commits=12)
        h.assert_converged()
        for replica in h.replicas:
            assert replica.lag(float(h.step)) == 0.0
            assert replica.applied_txn == h.durability._txn
        assert h.primary.replication.records_shipped > 0
        assert h.primary.replication.replica_lag == 0.0
    finally:
        h.close()


def test_faulted_stream_converges():
    faults = FaultPlan(
        seed=11,
        channels={
            "ship:replica-0": ChannelFaults(
                drop_rate=0.3,
                duplicate_rate=0.2,
                delay_rate=0.3,
                reorder_rate=0.2,
                delay_range=(1.0, 3.0),
            ),
            "ship:replica-1": ChannelFaults(drop_rate=0.4, delay_rate=0.3),
        },
    )
    h = ReplicationHarness(replicas=2, seed=11, faults=faults)
    try:
        h.run(commits=18)
        h.assert_converged()
    finally:
        h.close()


def test_replay_is_idempotent_under_duplicates():
    """Duplicate deliveries must never double-apply a physical write."""
    faults = FaultPlan(
        seed=5,
        channels={"ship:replica-0": ChannelFaults(duplicate_rate=0.9)},
    )
    h = ReplicationHarness(replicas=1, seed=5, faults=faults)
    try:
        h.run(commits=15)
        h.assert_converged()
    finally:
        h.close()


def test_injected_gap_heals_by_checkpoint_resync():
    faults = FaultPlan(
        seed=7,
        channels={"ship:replica-0": ChannelFaults(delay_rate=1.0, delay_range=(4.0, 4.0))},
    )
    h = ReplicationHarness(replicas=1, seed=7, faults=faults)
    try:
        h.run(commits=4)
        dropped = h.shipper.inject_gap("replica-0")
        assert dropped >= 0
        resyncs_before = h.primary.replication.replica_resyncs
        h.run(commits=6)
        h.assert_converged()
        assert h.primary.replication.replica_resyncs > resyncs_before
        assert h.replicas[0].resyncs >= 2  # bootstrap + at least one heal
        assert not h.replicas[0].needs_resync
    finally:
        h.close()


def test_mark_gap_makes_lag_unbounded_until_resync():
    h = ReplicationHarness(replicas=1, seed=2)
    try:
        h.run(commits=3)
        replica = h.replicas[0]
        replica.mark_gap()
        assert replica.lag(float(h.step)) == float("inf")
        h.tick()  # the shipper notices needs_resync and heals it
        h.drain()
        assert replica.lag(float(h.step)) < float("inf")
        h.assert_converged()
    finally:
        h.close()


def test_detach_stops_shipping_to_that_replica():
    h = ReplicationHarness(replicas=2, seed=4)
    try:
        h.run(commits=4)
        h.drain()
        frozen = h.replicas[0].applied_txn
        h.shipper.detach_replica("replica-0")
        h.run(commits=4)
        h.drain()
        assert h.replicas[0].applied_txn == frozen
        assert h.replicas[1].applied_txn == h.durability._txn
    finally:
        h.close()


def test_shipping_emits_spans_and_events():
    tracer = Tracer(enabled=True)
    h = ReplicationHarness(replicas=1, seed=9, tracer=tracer)
    try:
        h.run(commits=6)
        h.drain()
        records = tracer.records()
        ships = [
            r for r in records if r["type"] == "event" and r["name"] == "wal_ship"
        ]
        assert ships, "no wal_ship events traced"
        assert ships[-1]["attrs"]["replicas"] == ["replica-0"]
        applies = [
            r for r in records if r["type"] == "span" and r["name"] == "replica_apply"
        ]
        assert applies, "no replica_apply spans traced"
        assert applies[-1]["attrs"]["replica"] == "replica-0"
        assert applies[-1]["attrs"]["txn"] >= 1
        resyncs = [
            r for r in records if r["type"] == "span" and r["name"] == "replica_resync"
        ]
        assert resyncs, "bootstrap resync recorded no span"
        assert resyncs[0]["attrs"]["replica"] == "replica-0"
    finally:
        h.close()


def test_stats_surface_in_metrics_registry():
    h = ReplicationHarness(replicas=2, seed=6)
    try:
        h.run(commits=6)
        h.drain()
        snapshot = h.primary.metrics.snapshot()
        assert snapshot["replication.records_shipped"] > 0
        assert snapshot["replication.replica_resyncs"] >= 2  # both bootstraps
        assert snapshot["replication.replica_lag"] == 0.0
        assert snapshot["replication.failovers"] == 0
    finally:
        h.close()
