"""Failover: death detection, most-caught-up promotion, no lost commits."""

import pytest

from repro.faults import ChannelFaults, CrashPoint, FaultPlan
from repro.obs import Tracer
from repro.replication import ReplicationHarness


def test_no_promotion_while_primary_heartbeats():
    h = ReplicationHarness(replicas=2, seed=3, heartbeat_timeout=3.0)
    try:
        h.run(commits=8)
        assert h.coordinator.primary_alive(float(h.step))
        assert h.coordinator.check(float(h.step)) is None
    finally:
        h.close()


def test_silence_promotes_most_caught_up_replica():
    h = ReplicationHarness(replicas=2, seed=6, heartbeat_timeout=3.0)
    try:
        h.run(commits=9)
        h.drain()
        h.kill_primary()
        h.silent_commit()  # the sources keep committing over the corpse
        now = h.advance_past_timeout()
        assert not h.coordinator.primary_alive(now)
        result = h.coordinator.check(now)
        assert result is not None
        promoted = h.coordinator.promoted
        assert promoted is not None and promoted.is_primary
        # The silent commit came back through source-log catch-up.
        assert result.replayed_txns >= 1
        expected = h.expected_exports()
        assert h.replica_exports(promoted) == expected
        # Idempotent: a second check never re-promotes.
        assert h.coordinator.check(now + 10.0) is None
    finally:
        h.close()


def test_crash_mid_ship_loses_no_acknowledged_transaction():
    """A txn that was WAL-durable but never shipped survives promotion."""
    h = ReplicationHarness(
        replicas=2,
        seed=9,
        crash_points=[CrashPoint(8, "post-wal-append")],
        heartbeat_timeout=3.0,
    )
    try:
        for _ in range(12):
            if not h.commit():
                break
            h.tick()
        assert h.primary_dead
        now = h.advance_past_timeout()
        result = h.coordinator.check(now)
        assert result is not None
        # Txn 8 was durable but crashed before shipping: only the on-disk
        # WAL tail can supply it.
        assert result.wal_records_replayed >= 1
        assert h.replica_exports(h.coordinator.promoted) == h.expected_exports()
    finally:
        h.close()


def test_promotion_recovers_txns_compacted_out_of_the_wal():
    """Regression: checkpoints compact the WAL, so a replica that died
    lagging may need transactions that survive *only* in the newest
    checkpoint chain — promotion must re-baseline from it, not silently
    skip from its own floors to the on-disk tail."""
    faults = FaultPlan(
        seed=0, channels={"ship:replica-0": ChannelFaults(drop_rate=0.4)}
    )
    h = ReplicationHarness(
        replicas=1,
        seed=178,
        faults=faults,
        crash_points=[CrashPoint(10, "post-wal-append")],
        heartbeat_timeout=3.0,
        checkpoint_every=4,
    )
    try:
        for _ in range(13):
            if not h.commit():
                break
            h.tick()
        assert h.primary_dead
        replica = h.replicas[0]
        assert replica.applied_txn < 8  # behind the txn-8 checkpoint...
        wal_txns = {r.txn for r in h.durability.wal.records}
        assert replica.applied_txn + 1 not in wal_txns  # ...and the WAL
        now = h.advance_past_timeout()
        result = h.coordinator.check(now)
        assert result is not None
        assert h.coordinator.promoted.resyncs >= 2  # bootstrap + step 0
        assert h.replica_exports(h.coordinator.promoted) == h.expected_exports()
    finally:
        h.close()


def test_promotion_skips_replica_mid_resync():
    h = ReplicationHarness(replicas=2, seed=4, heartbeat_timeout=3.0)
    try:
        h.run(commits=8)
        h.drain()
        h.replicas[0].needs_resync = True  # gapped exactly when the primary dies
        h.kill_primary()
        now = h.advance_past_timeout()
        result = h.coordinator.check(now)
        assert result is not None and result.replica == "replica-1"
    finally:
        h.close()


def test_all_replicas_gapped_fails_loudly():
    h = ReplicationHarness(replicas=2, seed=5, heartbeat_timeout=3.0)
    try:
        h.run(commits=5)
        for replica in h.replicas:
            replica.needs_resync = True
        h.kill_primary()
        now = h.advance_past_timeout()
        with pytest.raises(RuntimeError, match="no replica is promotable"):
            h.coordinator.check(now)
    finally:
        for replica in h.replicas:
            replica.needs_resync = False
        h.close()


def test_failover_under_faulted_channels_converges():
    faults = FaultPlan(
        seed=21,
        channels={
            "ship:replica-0": ChannelFaults(drop_rate=0.35, delay_rate=0.3),
            "ship:replica-1": ChannelFaults(drop_rate=0.2, duplicate_rate=0.3),
        },
    )
    h = ReplicationHarness(replicas=2, seed=21, faults=faults, heartbeat_timeout=3.0)
    try:
        h.run(commits=14)
        h.kill_primary()  # no drain: replicas die lagged and heal via promote
        h.silent_commit()
        h.silent_commit()
        now = h.advance_past_timeout()
        result = h.coordinator.check(now)
        assert result is not None
        assert h.replica_exports(h.coordinator.promoted) == h.expected_exports()
    finally:
        h.close()


def test_promotion_traces_failover_span_and_event():
    tracer = Tracer(enabled=True)
    h = ReplicationHarness(replicas=1, seed=2, heartbeat_timeout=3.0, tracer=tracer)
    try:
        h.run(commits=6)
        h.drain()
        h.kill_primary()
        now = h.advance_past_timeout()
        result = h.coordinator.check(now)
        assert result is not None
        records = tracer.records()
        spans = [r for r in records if r["type"] == "span" and r["name"] == "failover"]
        assert spans and spans[-1]["attrs"]["replica"] == "replica-0"
        events = [
            r for r in records if r["type"] == "event" and r["name"] == "promotion"
        ]
        assert events and events[-1]["attrs"]["replica"] == "replica-0"
        assert h.coordinator.promoted.mediator.replication.failovers == 1
    finally:
        h.close()
