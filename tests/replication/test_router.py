"""Bounded-staleness read routing: budgets, policies, honest tags."""

import pytest

from repro.errors import MediatorError, StaleReadError
from repro.replication import ReadRouter, ReplicationHarness


def _lagged_harness(commits_behind: int = 3, replicas: int = 2):
    """A harness whose replicas are exactly ``commits_behind`` steps stale.

    The shipper is closed (not ticked), so commits after the drain reach
    the primary but never the replicas, and each tick widens every
    replica's ignorance window by one step.
    """
    h = ReplicationHarness(replicas=replicas, seed=8)
    h.run(commits=6)
    h.drain()
    h.shipper.close()
    for _ in range(commits_behind):
        h.commits += 1  # advance the key space without shipping
        h.step += 1
    return h


def test_fresh_replicas_share_load_round_robin():
    h = ReplicationHarness(replicas=2, seed=8)
    try:
        h.run(commits=6)
        h.drain()
        export = sorted(h.primary.vdp.exports)[0]
        for _ in range(10):
            h.router.query(export, float(h.step), staleness_budget=0.0)
        assert h.router.served["replica-0"] == 5
        assert h.router.served["replica-1"] == 5
        assert h.router.degraded == 0
    finally:
        h.close()


def test_degrade_serves_least_lagged_with_honest_tag():
    h = _lagged_harness(commits_behind=4)
    try:
        export = sorted(h.primary.vdp.exports)[0]
        answer = h.router.query(export, float(h.step), staleness_budget=1.0)
        assert h.router.degraded == 1
        assert answer.tag.worst() == pytest.approx(4.0)
    finally:
        h.close()


def test_reject_raises_with_every_lag_disclosed():
    h = _lagged_harness(commits_behind=3)
    try:
        export = sorted(h.primary.vdp.exports)[0]
        with pytest.raises(StaleReadError) as err:
            h.router.query(
                export, float(h.step), staleness_budget=0.5, on_stale="reject"
            )
        message = str(err.value)
        assert "0.5" in message
        assert "replica-0" in message and "replica-1" in message
        assert h.router.rejected == 1
    finally:
        h.close()


def test_primary_fallback_serves_fresh_answer():
    h = _lagged_harness(commits_behind=3)
    try:
        export = sorted(h.primary.vdp.exports)[0]
        answer = h.router.query(
            export, float(h.step), staleness_budget=0.5, on_stale="primary"
        )
        assert h.router.primary_fallbacks == 1
        assert answer.value == h.primary.query_relation(export)
    finally:
        h.close()


def test_primary_policy_without_primary_rejects():
    h = _lagged_harness(commits_behind=3)
    try:
        router = ReadRouter(h.replicas, primary=None, on_stale="primary")
        export = sorted(h.primary.vdp.exports)[0]
        with pytest.raises(StaleReadError):
            router.query(export, float(h.step), staleness_budget=0.5)
    finally:
        h.close()


def test_resyncing_replica_leaves_the_rotation():
    h = ReplicationHarness(replicas=2, seed=12)
    try:
        h.run(commits=6)
        h.drain()
        h.replicas[0].needs_resync = True  # simulate a mid-heal replica
        export = sorted(h.primary.vdp.exports)[0]
        for _ in range(4):
            h.router.query(export, float(h.step), staleness_budget=0.0)
        assert h.router.served["replica-0"] == 0
        assert h.router.served["replica-1"] == 4
    finally:
        h.replicas[0].needs_resync = False
        h.close()


def test_replica_answers_match_primary_when_current():
    h = ReplicationHarness(replicas=2, seed=14)
    try:
        h.run(commits=9)
        h.drain()
        for export in sorted(h.primary.vdp.exports):
            expected = h.primary.query_relation(export)
            answer = h.router.query(export, float(h.step), staleness_budget=0.0)
            assert answer.value == expected
    finally:
        h.close()


def test_invalid_policy_rejected():
    h = ReplicationHarness(replicas=1, seed=1)
    try:
        with pytest.raises(MediatorError):
            ReadRouter(h.replicas, on_stale="wing-it")
        export = sorted(h.primary.vdp.exports)[0]
        with pytest.raises(MediatorError):
            h.router.query(export, 0.0, on_stale="wing-it")
    finally:
        h.close()
