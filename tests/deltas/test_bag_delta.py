"""Unit tests for bag-semantics deltas."""

import pytest

from repro.deltas import BagDelta
from repro.errors import DeltaError
from repro.relalg import BagRelation, make_schema, row

R = make_schema("R", ["a"])


def bag(*counts):
    rel = BagRelation(R)
    for value, n in counts:
        rel.insert(row(a=value), n)
    return rel


def test_add_accumulates_and_cancels():
    d = BagDelta()
    d.add("R", row(a=1), 2)
    d.add("R", row(a=1), -2)
    assert d.is_empty()
    d.add("R", row(a=1), 3)
    assert d.count("R", row(a=1)) == 3


def test_insert_delete_validation():
    d = BagDelta()
    with pytest.raises(DeltaError):
        d.insert("R", row(a=1), 0)
    with pytest.raises(DeltaError):
        d.delete("R", row(a=1), -1)


def test_apply_adjusts_multiplicities():
    d = BagDelta()
    d.insert("R", row(a=1), 2)
    d.delete("R", row(a=2), 1)
    target = bag((2, 3))
    d.apply_to(target, "R")
    assert target.count(row(a=1)) == 2
    assert target.count(row(a=2)) == 2


def test_apply_rejects_negative_multiplicity():
    d = BagDelta()
    d.delete("R", row(a=1), 5)
    with pytest.raises(DeltaError):
        d.apply_to(bag((1, 2)), "R")


def test_smash_is_addition():
    d1 = BagDelta.from_counts("R", {row(a=1): 2})
    d2 = BagDelta.from_counts("R", {row(a=1): -1, row(a=2): 4})
    s = d1.smash(d2)
    assert s.count("R", row(a=1)) == 1
    assert s.count("R", row(a=2)) == 4


def test_smash_law_on_bags():
    db = bag((1, 3))
    d1 = BagDelta.from_counts("R", {row(a=1): -2, row(a=2): 1})
    d2 = BagDelta.from_counts("R", {row(a=2): 2})
    assert d1.smash(d2).applied(db, "R") == d2.applied(d1.applied(db, "R"), "R")


def test_inverse():
    d = BagDelta.from_counts("R", {row(a=1): 3, row(a=2): -1})
    inv = d.inverse()
    assert inv.count("R", row(a=1)) == -3
    assert inv.count("R", row(a=2)) == 1
    db = bag((1, 1), (2, 5))
    assert inv.applied(d.applied(db, "R"), "R") == db


def test_diff():
    before = bag((1, 2), (2, 1))
    after = bag((1, 1), (3, 4))
    d = BagDelta.diff("R", before, after)
    assert d.count("R", row(a=1)) == -1
    assert d.count("R", row(a=2)) == -1
    assert d.count("R", row(a=3)) == 4
    assert d.applied(before, "R") == after


def test_insertions_deletions():
    d = BagDelta.from_counts("R", {row(a=1): 2, row(a=2): -3})
    assert d.insertions("R") == [(row(a=1), 2)]
    assert d.deletions("R") == [(row(a=2), 3)]


def test_magnitude_and_entry_count():
    d = BagDelta.from_counts("R", {row(a=1): 2, row(a=2): -3})
    assert d.magnitude() == 5
    assert d.entry_count() == 2


def test_restrict_to():
    d = BagDelta()
    d.add("R", row(a=1), 1)
    d.add("S", row(a=1), 1)
    assert d.restrict_to(["R"]).relations() == ("R",)


def test_equality_copy_bool():
    d = BagDelta.from_counts("R", {row(a=1): 1})
    clone = d.copy()
    assert clone == d and bool(d)
    clone.add("R", row(a=1), 1)
    assert clone != d
    assert not BagDelta()
