"""Unit tests for set-semantics deltas (Section 6.2)."""

import pytest

from repro.deltas import SetDelta
from repro.errors import DeltaError
from repro.relalg import SetRelation, make_schema, row

R = make_schema("R", ["a", "b"])


def rel(*values):
    return SetRelation.from_values(R, values)


def test_insert_delete_atoms():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    d.delete("R", row(a=3, b=4))
    assert d.sign("R", row(a=1, b=2)) == 1
    assert d.sign("R", row(a=3, b=4)) == -1
    assert d.sign("R", row(a=9, b=9)) == 0
    assert d.atom_count() == 2


def test_conflicting_atoms_rejected():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    with pytest.raises(DeltaError):
        d.delete("R", row(a=1, b=2))


def test_duplicate_same_sign_ok():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    d.insert("R", row(a=1, b=2))
    assert d.atom_count() == 1


def test_multi_relation_delta():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    d.insert("S", row(a=1, b=2))
    assert set(d.relations()) == {"R", "S"}
    restricted = d.restrict_to(["S"])
    assert restricted.relations() == ("S",)


def test_apply_semantics():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    d.delete("R", row(a=3, b=4))
    target = rel((3, 4), (5, 6))
    d.apply_to(target, "R")
    assert target.contains(row(a=1, b=2))
    assert not target.contains(row(a=3, b=4))
    assert target.contains(row(a=5, b=6))


def test_apply_is_tolerant_of_redundant_atoms():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))  # already present
    d.delete("R", row(a=9, b=9))  # absent
    target = rel((1, 2))
    d.apply_to(target, "R")
    assert target.to_sorted_list() == [((1, 2), 1)]


def test_smash_law():
    """apply(db, d1 ! d2) == apply(apply(db, d1), d2)."""
    d1 = SetDelta()
    d1.insert("R", row(a=1, b=2))
    d2 = SetDelta()
    d2.delete("R", row(a=1, b=2))
    d2.insert("R", row(a=3, b=4))

    db = rel((5, 6))
    sequential = d2.applied(d1.applied(db, "R"), "R")
    smashed = d1.smash(d2).applied(db, "R")
    assert sequential == smashed


def test_smash_later_wins():
    d1 = SetDelta()
    d1.insert("R", row(a=1, b=2))
    d2 = SetDelta()
    d2.delete("R", row(a=1, b=2))
    s = d1.smash(d2)
    assert s.sign("R", row(a=1, b=2)) == -1


def test_inverse_undoes_nonredundant_delta():
    db = rel((1, 2))
    d = SetDelta.diff("R", db, rel((3, 4)))
    forward = d.applied(db, "R")
    back = d.inverse().applied(forward, "R")
    assert back == db


def test_inverse_of_smash_law():
    d1 = SetDelta()
    d1.insert("R", row(a=1, b=2))
    d2 = SetDelta()
    d2.insert("R", row(a=3, b=4))
    assert d1.smash(d2).inverse() == d2.inverse().smash(d1.inverse())


def test_diff_computes_net_change():
    before = rel((1, 2), (3, 4))
    after = rel((3, 4), (5, 6))
    d = SetDelta.diff("R", before, after)
    assert d.sign("R", row(a=1, b=2)) == -1
    assert d.sign("R", row(a=5, b=6)) == 1
    assert d.sign("R", row(a=3, b=4)) == 0
    assert d.applied(before, "R") == after


def test_redundancy_detection():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    assert d.is_redundant_for(rel((1, 2)), "R")
    assert not d.is_redundant_for(rel((9, 9)), "R")


def test_insertions_deletions_lists():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    d.delete("R", row(a=3, b=4))
    assert d.insertions("R") == [row(a=1, b=2)]
    assert d.deletions("R") == [row(a=3, b=4)]


def test_emptiness_and_bool():
    d = SetDelta()
    assert d.is_empty()
    assert not d
    d.insert("R", row(a=1, b=2))
    assert d


def test_equality_and_copy():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    clone = d.copy()
    assert clone == d
    clone.insert("R", row(a=3, b=4))
    assert clone != d


def test_from_atoms():
    d = SetDelta.from_atoms([("R", row(a=1, b=2), 1), ("R", row(a=3, b=4), -1)])
    assert d.sign("R", row(a=1, b=2)) == 1
    assert d.sign("R", row(a=3, b=4)) == -1


def test_diff_emits_atoms_in_sorted_order():
    """diff's atom order must not follow frozenset (hash) iteration: it is
    observable downstream (propagation, provenance, trace events) and has
    to be identical across processes and hash seeds."""
    before = rel((1, 1), (2, 2), (3, 3))
    after = rel((3, 3), (5, 5), (4, 4), (9, 9))
    d = SetDelta.diff("R", before, after)
    atoms = list(d.atoms())
    inserts = [r for _, r, s in atoms if s > 0]
    deletes = [r for _, r, s in atoms if s < 0]
    assert inserts == sorted(inserts, key=repr)
    assert deletes == sorted(deletes, key=repr)
    # And inserts are emitted before deletes, as one fixed convention.
    assert atoms == [(n, r, s) for n, r, s in atoms if s > 0] + [
        (n, r, s) for n, r, s in atoms if s < 0
    ]
