"""Unit tests for generic delta operations and leaf-parent filtering."""

import pytest

from repro.deltas import (
    BagDelta,
    LeafParentFilter,
    SetDelta,
    apply_delta,
    bag_to_set,
    rename_delta,
    select_project,
    set_to_bag,
    smash_all,
)
from repro.errors import DeltaError
from repro.relalg import (
    BagRelation,
    SetRelation,
    evaluate,
    lt,
    make_schema,
    row,
    scan,
)

R = make_schema("R", ["a", "b"])


def test_apply_delta_dispatch_set():
    target = SetRelation.from_values(R, [(1, 2)])
    d = SetDelta()
    d.insert("R", row(a=3, b=4))
    apply_delta(target, d)
    assert target.contains(row(a=3, b=4))


def test_apply_delta_dispatch_bag():
    target = BagRelation.from_values(R, [(1, 2)])
    d = BagDelta.from_counts("R", {row(a=1, b=2): 2})
    apply_delta(target, d)
    assert target.count(row(a=1, b=2)) == 3


def test_apply_delta_converts_between_kinds():
    target = BagRelation.from_values(R, [(1, 2)])
    d = SetDelta()
    d.delete("R", row(a=1, b=2))
    apply_delta(target, d)
    assert target.is_empty()

    set_target = SetRelation.from_values(R, [(1, 2)])
    bd = BagDelta.from_counts("R", {row(a=1, b=2): -1})
    apply_delta(set_target, bd)
    assert set_target.is_empty()


def test_bag_to_set_rejects_large_counts():
    bd = BagDelta.from_counts("R", {row(a=1, b=2): 2})
    with pytest.raises(DeltaError):
        bag_to_set(bd)


def test_set_to_bag_roundtrip():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    d.delete("R", row(a=3, b=4))
    assert bag_to_set(set_to_bag(d)) == d


def test_smash_all():
    d1 = SetDelta()
    d1.insert("R", row(a=1, b=2))
    d2 = SetDelta()
    d2.delete("R", row(a=1, b=2))
    result = smash_all([d1, d2])
    assert result.sign("R", row(a=1, b=2)) == -1
    assert smash_all([]) is None


def test_smash_all_rejects_mixed_kinds():
    with pytest.raises(DeltaError):
        smash_all([SetDelta(), BagDelta()])


def test_select_project_commutation_law():
    """π_C σ_f apply(R, Δ) == apply(π_C σ_f R, π_C σ_f Δ) — Section 6.2."""
    base = SetRelation.from_values(R, [(1, 10), (2, 20)])
    d = SetDelta()
    d.insert("R", row(a=3, b=5))
    d.delete("R", row(a=1, b=10))

    pred = lt("b", 15)
    attrs = ("a",)

    # Left side: apply then select/project.
    updated = d.applied(base, "R")
    lhs = evaluate(scan("R").select(pred).project(list(attrs)), {"R": updated})

    # Right side: select/project both, then apply.
    view = evaluate(scan("R").select(pred).project(list(attrs)), {"R": base}, "V")
    filtered = select_project(d, "R", pred, attrs, out_relation="V")
    filtered.apply_to(view, "V")

    assert lhs == view


def test_select_project_merges_projected_atoms():
    d = BagDelta()
    d.add("R", row(a=1, b=10), 1)
    d.add("R", row(a=1, b=20), 1)
    out = select_project(d, "R", lt("b", 100), ("a",))
    assert out.count("R", row(a=1)) == 2


def test_rename_delta():
    d = SetDelta()
    d.insert("R", row(a=1, b=2))
    out = rename_delta(d, {"a": "x"}, "R", out_relation="R2")
    assert out.count("R2", row(x=1, b=2)) == 1


def test_leaf_parent_filter():
    lp = LeafParentFilter("Rp", "R", lt("b", 15), ("a",))
    d = SetDelta()
    d.insert("R", row(a=1, b=10))
    d.insert("R", row(a=2, b=99))  # dropped by predicate
    d.insert("S", row(a=5, b=5))  # other relation ignored
    out = lp.filter(d)
    assert out.counts_for("Rp") == {row(a=1): 1}


def test_leaf_parent_prefilter_keeps_other_relations():
    lp = LeafParentFilter("Rp", "R", lt("b", 15))
    d = SetDelta()
    d.insert("R", row(a=2, b=99))
    d.insert("S", row(a=5, b=5))
    out = lp.prefilter(d)
    assert out.sign("R", row(a=2, b=99)) == 0
    assert out.sign("S", row(a=5, b=5)) == 1
