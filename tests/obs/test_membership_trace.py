"""Trace coverage for dynamic membership: backfill spans, attach/detach
events, and schema validation of the exported records."""

from repro.generator import generate_mediator, make_federation, make_sources
from repro.obs import Tracer, export_jsonl, validate_jsonl_file


def _traced_attach_detach():
    fed = make_federation(5, seed=13)
    names = list(fed.names)
    members = names[:4]
    sources = make_sources(fed.spec_text_for(), fed.initial_data())
    tracer = Tracer(enabled=True)
    mediator = generate_mediator(
        fed.spec_text_for(members),
        {n: sources[n] for n in members},
        tracer=tracer,
    )
    joiner = names[4]
    views, annotations = fed.attach_payload(joiner, members)
    attach = mediator.attach_source(sources[joiner], views, annotations)
    detach = mediator.detach_source(members[0])
    return tracer, mediator, fed, joiner, members[0], attach, detach


def test_attach_emits_backfill_span_and_event():
    tracer, _, fed, joiner, _, attach, _ = _traced_attach_detach()
    records = tracer.records()
    spans = [
        r for r in records if r["type"] == "span" and r["name"] == "backfill"
    ]
    assert spans, "attach recorded no backfill span"
    span = spans[-1]
    assert span["attrs"]["source"] == joiner
    assert span["attrs"]["nodes"] == sorted(attach.backfill_nodes)
    assert span["attrs"]["rows"] == attach.backfill_rows
    assert span["end"] is not None

    events = [
        r for r in records if r["type"] == "event" and r["name"] == "source_attach"
    ]
    assert len(events) == 1
    attrs = events[0]["attrs"]
    assert attrs["source"] == joiner
    assert attrs["backfill_rows"] == attach.backfill_rows
    assert set(attrs["nodes"]) == set(attach.new_nodes)


def test_detach_emits_source_detach_event():
    tracer, _, _, _, leaver, _, detach = _traced_attach_detach()
    events = [
        r
        for r in tracer.records()
        if r["type"] == "event" and r["name"] == "source_detach"
    ]
    assert len(events) == 1
    attrs = events[0]["attrs"]
    assert attrs["source"] == leaver
    assert attrs["removed_nodes"] == sorted(detach.removed_nodes)
    assert attrs["dropped_messages"] == detach.dropped_messages


def test_membership_trace_validates_against_schema(tmp_path):
    """The closed taxonomy in trace_schema.json covers the membership
    records: export validates, and re-validating the file passes too."""
    tracer, _, _, _, _, _, _ = _traced_attach_detach()
    path = tmp_path / "membership.jsonl"
    written = export_jsonl(tracer, path, validate=True)
    assert written == tracer.record_count()
    assert validate_jsonl_file(path) == written
