"""Unit tests for the span/event tracer."""

import pytest

from repro.obs import NULL_TRACER, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("update_txn", messages=3) as span:
        span.set(rules_fired=2)
        tracer.event("rule_fire", edge="R->R_p")
        with tracer.span("queue_flush"):
            pass
    tracer.add_completed_span("poll", 0.0, 1.0, source="db1")
    assert tracer.record_count() == 0
    assert tracer.records() == []


def test_disabled_span_is_shared_singleton():
    # The no-op path must not allocate: every disabled span() call returns
    # the same object.
    tracer = Tracer(enabled=False)
    assert tracer.span("a") is tracer.span("b") is NULL_TRACER.span("c")


def test_span_nesting_and_parenting():
    tracer = Tracer(enabled=True, clock=FakeClock())
    with tracer.span("update_txn") as outer:
        with tracer.span("queue_flush") as inner:
            assert inner.record["parent"] == outer.id
        tracer.event("rule_fire", edge="R->R_p")
    records = tracer.records()
    assert [r["name"] for r in records] == ["update_txn", "queue_flush", "rule_fire"]
    event = records[2]
    assert event["type"] == "event"
    assert event["span"] == outer.id  # inner already closed -> hangs off outer
    assert all(r["end"] is not None for r in records if r["type"] == "span")


def test_injected_clock_orders_timestamps():
    tracer = Tracer(enabled=True, clock=FakeClock())
    with tracer.span("query"):
        tracer.event("cache_hit")
    span, event = tracer.records()
    assert span["start"] == 1.0
    assert event["time"] == 2.0
    assert span["end"] == 3.0


def test_span_attrs_merge():
    tracer = Tracer(enabled=True)
    with tracer.span("query", answer="T") as span:
        span.set(rows=5, virtual=True)
    (record,) = tracer.records()
    assert record["attrs"] == {"answer": "T", "rows": 5, "virtual": True}


def test_add_completed_span_parents_under_active_span():
    tracer = Tracer(enabled=True)
    with tracer.span("poll_batch") as batch:
        tracer.add_completed_span("poll", 1.5, 2.5, source="db1", parallel=True)
    poll = tracer.records()[1]
    assert poll["parent"] == batch.id
    assert (poll["start"], poll["end"]) == (1.5, 2.5)
    assert poll["attrs"]["parallel"] is True


def test_exception_marks_span_and_unwinds_stack():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("update_txn"):
            raise RuntimeError("boom")
    with tracer.span("query"):
        pass
    txn, query = tracer.records()
    assert txn["attrs"]["error"] is True
    assert query["parent"] is None  # the failed span was popped


def test_unclosed_inner_span_does_not_corrupt_tree():
    tracer = Tracer(enabled=True)
    outer = tracer.span("update_txn")
    tracer.span("queue_flush")  # never exited
    outer.__exit__(None, None, None)
    with tracer.span("query") as query:
        pass
    assert query.record["parent"] is None


def test_span_tree_shape():
    tracer = Tracer(enabled=True)
    with tracer.span("update_txn"):
        with tracer.span("rule_fire_batch"):
            tracer.event("rule_fire", edge="R->R_p")
        tracer.event("cache_invalidate", relation="T")
    roots = tracer.span_tree()
    assert len(roots) == 1
    (root,) = roots
    assert root["name"] == "update_txn"
    assert [c["name"] for c in root["children"]] == ["rule_fire_batch"]
    assert [e["name"] for e in root["events"]] == ["cache_invalidate"]
    assert [e["name"] for e in root["children"][0]["events"]] == ["rule_fire"]


def test_clear_keeps_ids_unique():
    tracer = Tracer(enabled=True)
    with tracer.span("query"):
        pass
    first_id = tracer.records()[0]["id"]
    tracer.clear()
    assert tracer.record_count() == 0
    with tracer.span("query"):
        pass
    assert tracer.records()[0]["id"] > first_id


def test_provenance_facade_defaults_empty():
    tracer = Tracer(enabled=True)  # provenance not requested
    assert tracer.provenance_of("T") == frozenset()
    assert not tracer.provenance.enabled
    enabled = Tracer(enabled=True, provenance=True)
    assert enabled.provenance.enabled
    disabled = Tracer(enabled=False, provenance=True)
    assert not disabled.provenance.enabled  # provenance rides on tracing


def test_sinks_receive_records_on_completion():
    tracer = Tracer(enabled=True, clock=FakeClock())
    seen = []
    tracer.add_sink(seen.append)
    with tracer.span("update_txn"):
        tracer.event("rule_fire", edge="R->R_p")
        assert [r["name"] for r in seen] == ["rule_fire"]  # span still open
    tracer.add_completed_span("poll", 0.0, 1.0, source="db1")
    # Spans are delivered at *exit*, so sinks only ever see complete records.
    assert [r["name"] for r in seen] == ["rule_fire", "update_txn", "poll"]
    assert all(r["end"] is not None for r in seen if r["type"] == "span")
    tracer.remove_sink(seen.append)
    tracer.event("cache_hit", relation="T")
    assert len(seen) == 3
    tracer.remove_sink(seen.append)  # removing twice is a no-op


def test_retain_free_tracer_feeds_sinks_without_accumulating():
    tracer = Tracer(enabled=True, retain=False)
    seen = []
    tracer.add_sink(seen.append)
    with tracer.span("query", rows=1):
        tracer.event("cache_miss", relation="T")
    assert [r["name"] for r in seen] == ["cache_miss", "query"]
    assert tracer.record_count() == 0  # nothing retained: bounded memory
    assert tracer.records() == []


def test_disabled_tracer_never_calls_sinks():
    tracer = Tracer(enabled=False)
    seen = []
    tracer.add_sink(seen.append)
    with tracer.span("query"):
        tracer.event("cache_hit", relation="T")
    assert seen == []
