"""The cost profiler: folding, ranking, serialization, exact reconciliation.

The headline invariant is *exact* reconciliation: every count the profiler
folds from the trace stream is emitted at the same instrumentation site as
the ``MediatorStats`` counter it mirrors, so
:meth:`CostProfile.reconcile` must return ``[]`` (no tolerance) for every
workload — canned scenarios, the mediator-owned profiler, and
Hypothesis-generated interleavings alike.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mediator import MediatorError
from repro.obs import CostProfile, CostProfiler, Tracer, run_scenario, scenario_names
from repro.workloads import figure1_mediator


def fold(records):
    profiler = CostProfiler()
    for record in records:
        profiler.on_record(record)
    return profiler.profile()


def span(name, start, end, span_id=1, **attrs):
    return {
        "type": "span",
        "id": span_id,
        "parent": None,
        "name": name,
        "start": start,
        "end": end,
        "attrs": attrs,
    }


def event(name, span_id=None, **attrs):
    return {"type": "event", "id": 0, "span": span_id, "name": name, "attrs": attrs}


# ---------------------------------------------------------------------------
# Folding individual record shapes
# ---------------------------------------------------------------------------
def test_propagation_records_fold_into_node_and_edge_costs():
    profile = fold(
        [
            span("process_node", 1.0, 3.0, node="R_p"),
            event("rule_fire", child="R_p", parent="T", delta_size=4, contribution_size=6),
            event("node_apply", node="T", delta_size=6),
            span("shard_worker", 3.0, 4.0, span_id=2, node="R_p", parent="T", work=9),
            event("exchange", child="R_p", parent="T", siblings=[0, 2]),
        ]
    )
    rp, t = profile.nodes["R_p"], profile.nodes["T"]
    assert rp.processed == 1 and rp.process_time == 2.0
    assert rp.fires_out == 1 and rp.delta_rows_out == 4
    assert rp.shard_tasks == 1 and rp.shard_time == 1.0 and rp.shard_work == 9
    assert rp.exchange_reads == 2
    assert rp.propagation_time == 3.0  # process + shard
    assert t.contribution_rows_in == 6
    assert t.applies == 1 and t.apply_rows == 6 and t.propagation_rows == 6
    edge = profile.edges[("R_p", "T")]
    assert edge.fires == 1 and edge.delta_rows == 4 and edge.contribution_rows == 6
    assert edge.shard_tasks == 1 and edge.shard_work == 9 and edge.exchange_reads == 2


def test_vap_and_source_records_fold():
    profile = fold(
        [
            span("poll", 0.0, 0.5, source="db1"),
            event("poll_answer", source="db1", relation="R_p", rows=7),
            event("temp_built", relation="R_p", rows=5),
            event("cache_miss", relation="R_p"),
            event("cache_hit", relation="R_p", subsumption=True),
            event("cache_invalidate", relation="R_p"),
            event("key_based", relation="R_p"),
            event("compensation", source="db1"),
        ]
    )
    node = profile.nodes["R_p"]
    assert node.polls == 1 and node.poll_rows == 7
    assert node.constructs == 1 and node.construct_rows == 5
    assert node.cache_hits == node.cache_misses == node.cache_invalidations == 1
    assert node.key_based == 1
    source = profile.sources["db1"]
    assert source.poll_spans == 1 and source.poll_time == 0.5
    assert source.polls == 1 and source.poll_rows == 7
    assert source.compensations == 1
    assert profile.cache_subsumption_hits == 1
    assert profile.compensations == 1


def test_query_latency_attributed_to_classified_refs():
    # query_classify arrives while its query span is still open; the span's
    # full duration lands on every referenced relation once it closes.
    profile = fold(
        [
            event("query_classify", span_id=42, refs=["T", "R_p"], uncovered=["R_p"]),
            span("query", 1.0, 4.0, span_id=42, rows=10, virtual=True),
            span("query", 4.0, 5.0, span_id=43, rows=2, virtual=False),
        ]
    )
    assert profile.queries.count == 2
    assert profile.queries.time == 4.0
    assert profile.queries.rows == 12
    assert profile.queries.virtual == 1 and profile.queries.materialized_only == 1
    for name in ("T", "R_p"):
        assert profile.nodes[name].queries == 1
        assert profile.nodes[name].query_time == 3.0


def test_durability_records_fold_with_per_txn_wal_attribution():
    profile = fold(
        [
            span("update_txn", 0.0, 1.0),
            event("wal_append", txn=1, bytes=100, sources=["db1"]),
            event("wal_append", txn=1, bytes=50, sources=["db2"]),
            event("wal_append", txn=2, bytes=30, sources=["db1"]),
            span("checkpoint", 1.0, 2.5, span_id=2),
            event("checkpoint_complete", id=1, full=True, nodes=3, rows=40),
        ]
    )
    assert profile.txns.count == 1 and profile.txns.time == 1.0
    dur = profile.durability
    assert dur.wal_records == 3 and dur.wal_bytes == 180
    assert dur.wal_bytes_by_txn == {1: 150, 2: 30}
    assert dur.checkpoints == 1 and dur.checkpoint_time == 1.5
    assert dur.checkpoint_rows == 40


# ---------------------------------------------------------------------------
# Ranking and the advisor contract
# ---------------------------------------------------------------------------
def test_top_ranks_by_key_with_name_ordered_ties():
    profile = fold(
        [
            span("process_node", 0.0, 3.0, span_id=1, node="B"),
            span("process_node", 3.0, 4.0, span_id=2, node="A"),
            span("process_node", 4.0, 5.0, span_id=3, node="C"),
        ]
    )
    assert profile.top(2) == [("B", 3.0), ("A", 1.0)]
    assert profile.top(10) == [("B", 3.0), ("A", 1.0), ("C", 1.0)]
    assert profile.top(10, key="processed") == [("A", 1), ("B", 1), ("C", 1)]


def test_attribute_costs_shape_is_stable():
    profile = fold(
        [
            span("process_node", 0.0, 1.0, node="T"),
            event("rule_fire", child="T", parent="U", delta_size=2, contribution_size=2),
        ]
    )
    costs = profile.attribute_costs()
    assert sorted(costs) == ["T", "U"]
    assert sorted(costs["T"]) == [
        "cache_hits",
        "cache_misses",
        "construct_rows",
        "constructs",
        "exchange_reads",
        "poll_rows",
        "propagation_rows",
        "propagation_time",
        "queries",
        "query_time",
        "rule_fires",
    ]
    assert costs["T"]["rule_fires"] == 1
    assert costs["T"]["propagation_time"] == 1.0


def test_serialization_is_deterministic_and_round_trips():
    records = [
        span("process_node", 0.0, 1.0, node="T"),
        event("rule_fire", child="R_p", parent="T", delta_size=1, contribution_size=1),
        event("poll_answer", source="db1", relation="R_p", rows=3),
    ]
    first, second = fold(records), fold(records)
    assert first.to_json(indent=2) == second.to_json(indent=2)
    document = json.loads(first.to_json())
    assert document["kind"] == "cost-profile" and document["version"] == 1
    assert "R_p->T" in document["edges"]
    assert document["sources"]["db1"]["poll_rows"] == 3
    assert document["attribute_costs"] == {
        name: costs for name, costs in first.attribute_costs().items()
    }


def test_unknown_record_names_are_ignored():
    profile = fold(
        [
            span("kernel", 0.0, 1.0),
            event("fault_drop", source="db1"),
        ]
    )
    assert profile == CostProfile()


# ---------------------------------------------------------------------------
# Exact reconciliation against MediatorStats
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_every_canned_scenario_reconciles_exactly(name):
    tracer = Tracer(enabled=True, provenance=True)
    profiler = CostProfiler().attach(tracer)
    mediator = run_scenario(name, tracer)
    assert profiler.profile().reconcile(mediator.stats()) == []


def test_retain_free_tracer_profiles_without_accumulating_a_trace():
    tracer = Tracer(enabled=True, retain=False)
    profiler = CostProfiler().attach(tracer)
    mediator = run_scenario("ex23", tracer)
    assert tracer.record_count() == 0  # bounded memory: nothing retained
    profile = profiler.profile()
    assert profile.reconcile(mediator.stats()) == []
    assert profile.queries.count > 0 and profile.txns.count > 0


def test_mediator_owned_profiler_reconciles_and_survives_reset():
    mediator, sources = figure1_mediator("ex23", profiling_enabled=True)
    sources["db1"].insert("R", r1=9001, r2=5, r3=77, r4=100)
    mediator.refresh()
    mediator.query_relation("T")
    assert mediator.profile().reconcile(mediator.stats()) == []
    mediator.reset_stats()  # must reset the profiler too, keeping alignment
    assert mediator.profile().reconcile(mediator.stats()) == []
    sources["db2"].insert("S", s1=5, s2=888, s3=10)
    mediator.refresh()
    assert mediator.profile().reconcile(mediator.stats()) == []
    assert mediator.profile().txns.count == mediator.stats().update_transactions == 1


def test_profile_requires_profiling_enabled():
    mediator, _ = figure1_mediator("ex21")
    with pytest.raises(MediatorError, match="profiling_enabled"):
        mediator.profile()


@settings(max_examples=25, deadline=None)
@given(
    example=st.sampled_from(["ex21", "ex22", "ex23"]),
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("r"), st.integers(0, 49), st.integers(0, 999)),
            st.tuples(st.just("s"), st.integers(0, 999), st.integers(0, 99)),
            st.tuples(st.just("refresh"), st.just(0), st.just(0)),
            st.tuples(st.just("query"), st.just(0), st.just(0)),
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_reconciliation_holds_for_arbitrary_interleavings(example, ops):
    """Property: whatever interleaving of source transactions, refreshes
    and queries runs, the profile's totals equal the mediator counters
    field-for-field — the trace taxonomy never drifts from the stats."""
    tracer = Tracer(enabled=True, retain=False)
    mediator, sources = figure1_mediator(example, tracer=tracer)
    mediator.reset_stats()
    profiler = CostProfiler().attach(tracer)
    counter = 70_000
    for kind, a, b in ops:
        counter += 1
        if kind == "r":
            sources["db1"].insert("R", r1=counter, r2=a, r3=b, r4=100)
        elif kind == "s":
            sources["db2"].insert("S", s1=counter, s2=a, s3=b)
        elif kind == "refresh":
            mediator.refresh()
        else:
            mediator.query_relation("T")
    mediator.refresh()
    assert profiler.profile().reconcile(mediator.stats()) == []
