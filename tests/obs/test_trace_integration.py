"""End-to-end trace acceptance: span trees, schema validation, provenance.

The ex23 scenario (Figure 1 under Example 2.3 — hybrid ``T``, virtual
auxiliaries) is the acceptance workload: its trace must contain a complete
span tree for at least one update transaction and one virtual query, every
exported record must validate against the checked-in schema, and every
cache-invalidation event must carry a non-empty origin set that matches
what a from-scratch recomputation says actually changed.
"""

import pytest

from repro.correctness import recompute_all
from repro.deltas import SetDelta
from repro.obs import (
    Tracer,
    TraceValidationError,
    export_jsonl,
    load_schema,
    run_scenario,
    scenario_names,
    validate_jsonl_file,
    validate_records,
)
from repro.relalg import row
from repro.workloads import figure1_mediator, figure1_sources
from repro.workloads.scenarios import figure1_vdp


@pytest.fixture(scope="module")
def ex23_trace():
    tracer = Tracer(enabled=True, provenance=True)
    mediator = run_scenario("ex23", tracer)
    return tracer, mediator


def spans_named(roots, name, out=None):
    out = [] if out is None else out
    for node in roots:
        if node.get("type") == "span":
            if node["name"] == name:
                out.append(node)
            spans_named(node["children"], name, out)
    return out


def events_named(roots, name):
    found = []

    def walk(node):
        for event in node.get("events", ()):
            if event["name"] == name:
                found.append(event)
        for child in node.get("children", ()):
            walk(child)

    for root in roots:
        if root.get("type") == "span":
            walk(root)
    return found


# ---------------------------------------------------------------------------
# Span-tree completeness
# ---------------------------------------------------------------------------
def test_update_transaction_span_tree_complete(ex23_trace):
    tracer, _ = ex23_trace
    tree = tracer.span_tree()
    txns = spans_named(tree, "update_txn")
    assert txns, "no update transaction span recorded"
    txn = txns[-1]
    child_names = [c["name"] for c in txn["children"]]
    assert "queue_flush" in child_names
    assert "kernel" in child_names
    fires = events_named([txn], "rule_fire")
    assert fires, "update transaction fired no rules"
    for fire in fires:
        assert "child" in fire["attrs"] and "parent" in fire["attrs"]
        assert fire["attrs"]["delta_size"] >= 0  # delta sizes per firing
    assert txn["end"] is not None


def test_virtual_query_span_tree_complete(ex23_trace):
    tracer, _ = ex23_trace
    tree = tracer.span_tree()
    virtual = [
        q for q in spans_named(tree, "query") if q["attrs"].get("virtual")
    ]
    assert virtual, "no virtual query recorded"
    query = virtual[0]
    assert spans_named([query], "vap_plan")
    assert spans_named([query], "vap_construct")
    assert spans_named([query], "query_evaluate")
    construct = spans_named([query], "vap_construct")[0]
    polls = spans_named([construct], "poll")
    assert polls, "virtual query polled no sources"
    for poll in polls:
        assert poll["attrs"]["source"] in ("db1", "db2")
        assert poll["end"] >= poll["start"]
    assert events_named([query], "query_classify")


def test_cache_verdict_events_present(ex23_trace):
    tracer, _ = ex23_trace
    tree = tracer.span_tree()
    assert events_named(tree, "cache_miss") or events_named(tree, "cache_hit")
    assert events_named(tree, "temp_built")


# ---------------------------------------------------------------------------
# JSONL export + schema validation
# ---------------------------------------------------------------------------
def test_export_validates_against_checked_in_schema(ex23_trace, tmp_path):
    tracer, _ = ex23_trace
    path = tmp_path / "ex23.jsonl"
    written = export_jsonl(tracer, path)
    assert written == tracer.record_count() > 0
    assert validate_jsonl_file(path) == written


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_every_canned_scenario_validates(name, tmp_path):
    if name == "faults":
        pytest.skip("covered by test_fault_events_trace (slow)")
    tracer = Tracer(enabled=True, provenance=True)
    run_scenario(name, tracer)
    assert validate_records(tracer.records()) > 0


def test_unknown_event_name_fails_validation(ex23_trace):
    tracer, _ = ex23_trace
    records = tracer.records()
    forged = dict(records[-1])
    forged.update(type="event", name="totally_new_event", span=None, time=0.0)
    forged["id"] = 10**9
    with pytest.raises(TraceValidationError, match="unknown event name"):
        validate_records(records + [forged])


def test_unknown_span_name_and_unfinished_span_fail():
    schema = load_schema()
    good = {
        "type": "span",
        "id": 1,
        "parent": None,
        "name": "query",
        "start": 0.0,
        "end": 1.0,
        "attrs": {},
    }
    with pytest.raises(TraceValidationError, match="unknown span name"):
        validate_records([dict(good, name="mystery_span")], schema)
    with pytest.raises(TraceValidationError, match="never ended"):
        validate_records([dict(good, end=None)], schema)
    with pytest.raises(TraceValidationError, match="duplicate id"):
        validate_records([good, dict(good)], schema)
    with pytest.raises(TraceValidationError, match="unknown parent"):
        validate_records([dict(good, parent=99)], schema)


def test_fault_events_trace():
    tracer = Tracer(enabled=True, provenance=True)
    run_scenario("faults", tracer)
    records = tracer.records()
    assert validate_records(records) > 0
    names = {r["name"] for r in records}
    # The faulty-channel scenario must surface reliability-layer activity.
    assert "fault_retransmit" in names or "fault_drop" in names
    assert "update_txn" in names


# ---------------------------------------------------------------------------
# Cache-invalidation provenance vs from-scratch recompute
# ---------------------------------------------------------------------------
def test_cache_invalidation_provenance_matches_recompute():
    """Every ``cache_invalidate`` event carries a non-empty origin set, and
    each origin is a source transaction whose exclusion really changes the
    invalidated relation's recomputed value."""
    tracer = Tracer(enabled=True, provenance=True)
    mediator, sources = figure1_mediator("ex23", tracer=tracer)
    mediator.query_relation("T")  # populate the temp cache

    txn_deltas = {}
    d_r = SetDelta()
    d_r.insert("R", row(r1=9001, r2=5, r3=77, r4=100))
    sources["db1"].execute(d_r)
    txn_deltas["db1#1"] = d_r
    d_s = SetDelta()
    d_s.insert("S", row(s1=5, s2=888, s3=10))
    sources["db2"].execute(d_s)
    txn_deltas["db2#1"] = d_s
    mediator.refresh()

    invalidations = [
        r for r in tracer.records() if r["name"] == "cache_invalidate"
    ]
    assert invalidations, "the update transaction invalidated no cache entries"

    vdp = figure1_vdp()
    truth_full = recompute_all(vdp, sources)
    for event in invalidations:
        attrs = event["attrs"]
        origins = attrs["origins"]
        assert origins, f"invalidation of {attrs['relation']} carries no origins"
        assert set(origins) <= set(txn_deltas)
        for label in origins:
            # Rebuild the pristine sources, apply every transaction except
            # this origin, and the invalidated relation must recompute to a
            # different value — the origin really caused the invalidation.
            fresh = figure1_sources()
            for other, delta in txn_deltas.items():
                if other != label:
                    fresh[{"db1#1": "db1", "db2#1": "db2"}[other]].execute(delta)
            truth_without = recompute_all(vdp, fresh)
            assert truth_without[attrs["relation"]] != truth_full[attrs["relation"]], (
                f"origin {label} did not affect {attrs['relation']}"
            )


def test_provenance_of_survives_queries(ex23_trace):
    tracer, mediator = ex23_trace
    origins = tracer.provenance_of("T")
    assert {o.label for o in origins} == {"db1#1", "db2#1"}
    assert not tracer.provenance.is_approx("T")


def test_sharded_propagation_trace_validates(tmp_path):
    """A sharded update transaction exports shard_worker spans and exchange
    events, both inside the closed taxonomy (schema-validated), with the
    spans parented under the firing node's process_node span."""
    from repro.workloads import figure4_mediator

    tracer = Tracer(enabled=True)
    mediator, sources = figure4_mediator("all_m", shards=4, tracer=tracer)
    sources["dbC"].insert("C", c1=1, c2=2)
    sources["dbA"].insert("A", a1=1, a2=1)
    mediator.refresh()

    path = tmp_path / "sharded.jsonl"
    written = export_jsonl(tracer, path)
    assert validate_jsonl_file(path) == written

    tree = tracer.span_tree()
    workers = spans_named(tree, "shard_worker")
    assert workers, "parallel firings must emit shard_worker spans"
    for span in workers:
        assert span["attrs"]["node"]
        assert "work" in span["attrs"]
    exchanges = events_named(tree, "exchange")
    assert exchanges, "fig4's non-equi E join forces exchange reads"
    for event in exchanges:
        assert event["attrs"]["siblings"]
