"""The telemetry pipeline: Prometheus rendering, the JSONL metrics stream,
and multi-window burn-rate alerting on the freshness SLO."""

import json

import pytest

from repro.obs import (
    FreshnessBurnRateMonitor,
    MetricsStream,
    TelemetryPipeline,
    TraceValidationError,
    Tracer,
    render_prometheus,
    validate_telemetry_file,
)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def test_render_prometheus_scalars_labels_and_namespace():
    text = render_prometheus(
        {
            "iup.rules_fired": 12,
            "soak.ok": True,
            "queue.depth{db1}": 3,
            "soak.members": ["s0", "s1"],  # non-numeric: skipped
        }
    )
    lines = text.splitlines()
    assert "repro_iup_rules_fired 12" in lines
    assert "repro_soak_ok 1" in lines
    assert 'repro_queue_depth{label="db1"} 3' in lines
    assert not any("members" in line for line in lines)
    assert text.endswith("\n")
    # Deterministic: same snapshot, same bytes.
    assert text == render_prometheus(
        {
            "soak.members": ["s0", "s1"],
            "queue.depth{db1}": 3,
            "soak.ok": True,
            "iup.rules_fired": 12,
        }
    )


def test_render_prometheus_histograms_become_summaries():
    summary = {"count": 4, "sum": 10.0, "min": 1.0, "max": 4.0, "p50": 2.0, "p95": 4.0, "p99": 4.0}
    text = render_prometheus({"durability.checkpoint_ms": summary})
    lines = text.splitlines()
    assert "# TYPE repro_durability_checkpoint_ms summary" in lines
    assert 'repro_durability_checkpoint_ms{quantile="0.5"} 2.0' in lines
    assert 'repro_durability_checkpoint_ms{quantile="0.99"} 4.0' in lines
    assert "repro_durability_checkpoint_ms_count 4" in lines
    assert "repro_durability_checkpoint_ms_sum 10.0" in lines
    # Empty histograms (quantiles None) render only count/sum.
    empty = render_prometheus({"h": {"count": 0, "sum": 0.0, "p50": None, "p95": None, "p99": None}})
    assert "quantile" not in empty
    assert "repro_h_count 0" in empty


# ---------------------------------------------------------------------------
# Metrics stream + schema validation
# ---------------------------------------------------------------------------
def test_metrics_stream_round_trips_and_validates(tmp_path):
    path = tmp_path / "metrics.jsonl"
    with MetricsStream(path) as stream:
        stream.write("meta", step=0, cadence=1, bound=4.0)
        stream.write("metrics", step=1, metrics={"iup.rules_fired": 2})
        stream.write(
            "alert",
            step=2,
            source="s001",
            staleness=9.0,
            bound=4.0,
            fast_burn=2.25,
            slow_burn=1.1,
        )
        stream.write("profile", step=3, profile={"kind": "cost-profile"})
    assert validate_telemetry_file(path) == 4
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["kind"] for r in records] == ["meta", "metrics", "alert", "profile"]
    assert [r["seq"] for r in records] == [0, 1, 2, 3]


def write_lines(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


def test_validation_rejects_malformed_streams(tmp_path):
    meta = {"kind": "meta", "seq": 0, "step": 0, "cadence": 1, "bound": 4.0}
    cases = [
        ([{"kind": "metrics", "seq": 0, "step": 1, "metrics": {}}], "must start with a 'meta'"),
        ([meta, {"kind": "mystery", "seq": 1, "step": 1}], "unknown record kind"),
        ([meta, {"kind": "metrics", "seq": 1, "step": 1}], "missing field 'metrics'"),
        ([meta, {"kind": "metrics", "seq": 0, "step": 1, "metrics": {}}], "not greater than"),
    ]
    for index, (records, match) in enumerate(cases):
        path = write_lines(tmp_path / f"bad{index}.jsonl", records)
        with pytest.raises(TraceValidationError, match=match):
            validate_telemetry_file(path)
    garbled = tmp_path / "garbled.jsonl"
    garbled.write_text("not json\n")
    with pytest.raises(TraceValidationError, match="invalid JSON"):
        validate_telemetry_file(garbled)


# ---------------------------------------------------------------------------
# Burn-rate alerting
# ---------------------------------------------------------------------------
def test_single_spike_does_not_page_but_sustained_burn_does():
    monitor = FreshnessBurnRateMonitor(
        bound=4.0, fast_window=1, slow_window=4, slow_threshold=0.9
    )
    for step in range(3):
        assert monitor.observe(step, {"s0": 0.0}) == []
    # One-step spike: the fast window is hot (burn 5/4 = 1.25) but the slow
    # mean over the quiet history is 0.31 < 0.9 — filtered, no page.
    assert monitor.observe(3, {"s0": 5.0}) == []
    # Sustained burn: the slow mean crosses at step 5 -> exactly one
    # rising-edge alert, no re-alert while it keeps burning.
    fired = []
    for step in (4, 5, 6):
        fired += monitor.observe(step, {"s0": 5.0})
    assert len(fired) == 1
    alert = fired[0]
    assert alert.step == 5
    assert alert.source == "s0" and alert.bound == 4.0
    assert alert.fast_burn == 1.25 and alert.staleness == 5.0
    assert monitor.alerts == [alert]


def test_alerts_re_arm_after_the_fast_window_clears():
    monitor = FreshnessBurnRateMonitor(
        bound=2.0, fast_window=1, slow_window=2, slow_threshold=0.5
    )
    first = monitor.observe(0, {"s0": 4.0})
    assert len(first) == 1
    assert monitor.observe(1, {"s0": 4.0}) == []  # still firing: no re-alert
    assert monitor.observe(2, {"s0": 0.0}) == []  # clears -> re-arms
    second = monitor.observe(3, {"s0": 4.0})
    assert len(second) == 1
    assert len(monitor.alerts) == 2


def test_monitor_tracks_sources_independently():
    monitor = FreshnessBurnRateMonitor(bound=1.0, fast_window=1, slow_window=1)
    fired = monitor.observe(0, {"a": 2.0, "b": 0.0})
    assert [alert.source for alert in fired] == ["a"]
    fired = monitor.observe(1, {"a": 2.0, "b": 3.0})
    assert [alert.source for alert in fired] == ["b"]


def test_monitor_validates_configuration():
    with pytest.raises(ValueError, match="bound must be positive"):
        FreshnessBurnRateMonitor(bound=0.0)
    with pytest.raises(ValueError, match="fast_window <= slow_window"):
        FreshnessBurnRateMonitor(bound=1.0, fast_window=5, slow_window=2)


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------
def test_pipeline_snapshots_on_cadence_and_streams_alerts(tmp_path):
    path = tmp_path / "metrics.jsonl"
    tracer = Tracer(enabled=True)
    registry = {"iup.rules_fired": 0}
    pipeline = TelemetryPipeline(
        path,
        snapshot_fn=lambda: dict(registry),
        bound=2.0,
        cadence=2,
        monitor=FreshnessBurnRateMonitor(
            bound=2.0, fast_window=1, slow_window=1
        ),
        tracer=tracer,
    )
    for step in range(1, 6):
        registry["iup.rules_fired"] += 3
        staleness = 5.0 if step == 3 else 0.0
        fired = pipeline.observe(step, {"s0": staleness})
        assert len(fired) == (1 if step == 3 else 0)
    pipeline.close(step=5.0)
    assert validate_telemetry_file(path) > 0

    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records[0]["kind"] == "meta"
    assert records[0]["cadence"] == 2 and records[0]["bound"] == 2.0
    snapshots = [r for r in records if r["kind"] == "metrics"]
    # Cadence 2 samples steps 2 and 4, plus the forced close() sample.
    assert [r["step"] for r in snapshots] == [2, 4, 5.0]
    assert snapshots[0]["metrics"]["iup.rules_fired"] == 6
    # The pipeline's own instruments ride along in every snapshot.
    assert snapshots[0]["metrics"]["telemetry.alerts"] == 0
    assert snapshots[-1]["metrics"]["telemetry.alerts"] == 1
    assert snapshots[-1]["metrics"]["telemetry.staleness"]["count"] == 5
    alerts = [r for r in records if r["kind"] == "alert"]
    assert len(alerts) == 1 and alerts[0]["step"] == 3
    assert alerts[0]["source"] == "s0" and alerts[0]["staleness"] == 5.0
    # Alerts and snapshots are mirrored into the trace.
    names = [r["name"] for r in tracer.records()]
    assert names.count("slo_alert") == 1
    assert names.count("metrics_snapshot") == len(snapshots)


def test_pipeline_writes_profile_records_and_rejects_bad_cadence(tmp_path):
    with pytest.raises(ValueError, match="cadence"):
        TelemetryPipeline(tmp_path / "x.jsonl", snapshot_fn=dict, bound=1.0, cadence=0)
    path = tmp_path / "metrics.jsonl"
    pipeline = TelemetryPipeline(path, snapshot_fn=dict, bound=1.0, cadence=10)
    pipeline.write_profile(7.0, {"kind": "cost-profile", "version": 1})
    pipeline.close()
    assert validate_telemetry_file(path) == 2  # meta + profile, no snapshot
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records[1]["kind"] == "profile"
    assert records[1]["profile"]["kind"] == "cost-profile"
