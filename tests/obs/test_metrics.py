"""Unit tests for the metrics registry and the stats-dataclass derivation."""

import dataclasses

from repro.core import STATS_METRICS, MediatorStats, SquirrelMediator
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    dataclass_counter_items,
    merge_dataclass_counters,
    reset_dataclass_counters,
)
from repro.workloads import figure1_mediator


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
def test_counter_labels_roll_up():
    c = Counter("vap.polls")
    c.labels("db1").inc()
    c.labels("db1").inc(2)
    c.labels("db2").inc()
    assert c.value == 4
    assert c.labels("db1").value == 3
    assert c.labels("db2").value == 1
    c.reset()
    assert c.value == 0 and c.labels("db1").value == 0


def test_gauge_set_and_add():
    g = Gauge("store.rows")
    g.set(10)
    g.add(5)
    assert g.snapshot() == 15
    g.reset()
    assert g.snapshot() == 0


def test_histogram_summary():
    h = Histogram("poll.wall")
    for v in (2.0, 1.0, 4.0):
        h.observe(v)
    snap = h.snapshot()
    assert {k: snap[k] for k in ("count", "sum", "min", "max")} == {
        "count": 3,
        "sum": 7.0,
        "min": 1.0,
        "max": 4.0,
    }
    h.reset()
    assert h.snapshot() == {
        "count": 0,
        "sum": 0.0,
        "min": None,
        "max": None,
        "p50": None,
        "p95": None,
        "p99": None,
    }


def test_histogram_quantiles_are_deterministic_and_bounded():
    h = Histogram("lat.ms")
    values = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0]
    for v in values:
        h.observe(v)
    snap = h.snapshot()
    # Log-bucket answers are clamped to the observed range and within one
    # bucket width (10**(1/16) ≈ 1.155×) of the true rank statistic.
    assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
    assert snap["p50"] <= 8.0 * 1.155
    assert snap["p99"] == 89.0
    # Deterministic: a second identical stream reads identically.
    h2 = Histogram("lat.ms")
    for v in values:
        h2.observe(v)
    assert h2.snapshot() == snap


def test_histogram_single_value_and_underflow():
    h = Histogram("one")
    h.observe(7.0)
    snap = h.snapshot()
    assert snap["p50"] == snap["p95"] == snap["p99"] == 7.0
    z = Histogram("zeros")
    z.observe(0.0)
    z.observe(0.0)
    assert z.quantile(0.5) == 0.0


def test_registry_snapshot_includes_children_and_callables():
    registry = MetricsRegistry()
    registry.counter("iup.rules_fired").labels("R->R_p").inc()
    registry.register_callable("store.rows", lambda: 42)
    snap = registry.snapshot()
    assert snap["iup.rules_fired"] == 1
    assert snap["iup.rules_fired{R->R_p}"] == 1
    assert snap["store.rows"] == 42
    registry.reset()
    snap = registry.snapshot()
    assert snap["iup.rules_fired"] == 0
    assert snap["store.rows"] == 42  # callables are live readings, not reset


def test_registry_register_stats_reads_live():
    @dataclasses.dataclass
    class Stats:
        hits: int = 0
        label: str = "x"  # non-numeric fields stay out of the snapshot

    registry = MetricsRegistry()
    stats = Stats()
    registry.register_stats("cache", stats)
    assert registry.snapshot() == {"cache.hits": 0}
    stats.hits += 3
    assert registry.value("cache.hits") == 3
    registry.reset()
    assert stats.hits == 0


# ---------------------------------------------------------------------------
# dataclasses.fields-driven helpers
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class _Sample:
    a: int = 0
    b: float = 0.0
    name: str = "n"


def test_dataclass_counter_helpers():
    s = _Sample(a=2, b=1.5)
    assert dataclass_counter_items(s) == [("a", 2), ("b", 1.5)]
    merge_dataclass_counters(s, _Sample(a=3, b=0.5))
    assert (s.a, s.b) == (5, 2.0)
    reset_dataclass_counters(s)
    assert (s.a, s.b, s.name) == (0, 0.0, "n")


def test_all_stats_dataclasses_merge_and_reset_every_field():
    """Regression: no stats dataclass may hand-enumerate its fields.

    Every numeric field must survive a merge and a reset — a field silently
    dropped from either would corrupt benchmark accounting.
    """
    from repro.core.iup import IUPStats
    from repro.core.query_processor import QPStats
    from repro.core.vap import VAPStats
    from repro.relalg import EvalCounters

    for cls in (QPStats, IUPStats, VAPStats, EvalCounters):
        numeric = [name for name, _ in dataclass_counter_items(cls())]
        assert numeric, cls
        loaded = cls(**{name: 2 for name in numeric})
        if hasattr(loaded, "merge"):
            target = cls(**{name: 1 for name in numeric})
            target.merge(loaded)
            for name in numeric:
                assert getattr(target, name) == 3, f"{cls.__name__}.{name} dropped by merge"
        loaded.reset()
        for name in numeric:
            assert getattr(loaded, name) == 0, f"{cls.__name__}.{name} dropped by reset"


# ---------------------------------------------------------------------------
# MediatorStats derivation
# ---------------------------------------------------------------------------
def test_stats_metrics_covers_every_mediator_stats_field():
    declared = {f.name for f in dataclasses.fields(MediatorStats)}
    assert set(STATS_METRICS) == declared


def test_mediator_stats_derived_from_registry():
    mediator, sources = figure1_mediator("ex23")
    mediator.query_relation("T")
    snap = mediator.metrics.snapshot()
    stats = mediator.stats()
    for field, metric in STATS_METRICS.items():
        assert getattr(stats, field) == snap[metric], (field, metric)
    assert stats.queries == 1
    assert stats.polls > 0


def test_mediator_stats_diff():
    mediator, sources = figure1_mediator("ex21")
    before = mediator.stats()
    mediator.query_relation("T")
    mediator.query_relation("T")
    delta = mediator.stats().diff(before)
    assert delta.queries == 2
    assert delta.materialized_only_queries == 2
    assert delta.update_transactions == 0
    assert set(delta.as_dict()) == set(STATS_METRICS)


def test_reset_stats_goes_through_registry():
    mediator, _ = figure1_mediator("ex21")
    mediator.query_relation("T")
    assert mediator.stats().queries == 1
    mediator.reset_stats()
    stats = mediator.stats()
    assert stats.queries == 0
    assert stats.rules_fired == 0
    # Gauges over live state survive a counter reset.
    assert stats.stored_rows > 0
