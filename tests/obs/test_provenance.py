"""Unit tests for the delta-provenance tracker."""

from repro.deltas import BagDelta, SetDelta
from repro.obs import ProvenanceTracker, TxnOrigin, origin_labels
from repro.relalg import row


def origin(source, txn):
    return TxnOrigin(source, txn)


def bag(relation, *entries):
    delta = BagDelta()
    for r, count in entries:
        delta.add(relation, r, count)
    return delta


R1 = row(r1=1, r2=5)
R2 = row(r1=2, r2=6)


def test_origin_label_and_sorting():
    a, b = origin("db1", 2), origin("db1", 10)
    assert a.label == "db1#2"
    assert sorted([b, a]) == [a, b]
    assert origin_labels({b, a}) == ["db1#2", "db1#10"]


def test_disabled_tracker_is_inert():
    prov = ProvenanceTracker(enabled=False)
    prov.begin_transaction({"R": [(origin("db1", 1), bag("R", (R1, 1)))]})
    prov.record_contribution("T", origin("db1", 1), bag("T", (R1, 1)))
    prov.commit()
    assert prov.origins_of("T") == frozenset()
    assert prov.tracked_nodes() == []


def test_leaf_attribution_and_commit():
    prov = ProvenanceTracker(enabled=True)
    prov.begin_transaction(
        {
            "R": [
                (origin("db1", 1), bag("R", (R1, 1))),
                (origin("db1", 2), bag("R", (R2, 1))),
            ]
        }
    )
    assert prov.live_origins("R") == {origin("db1", 1), origin("db1", 2)}
    prov.commit()
    assert prov.origins_of("R") == {origin("db1", 1), origin("db1", 2)}
    assert prov.tracked_nodes() == ["R"]
    assert not prov.is_approx("R")


def test_cross_origin_cancellation_keeps_both_origins():
    """An insert and a delete of the same row from different transactions
    net to an empty leaf delta, but both transactions stay in the origin
    set (each alone would have changed the node)."""
    prov = ProvenanceTracker(enabled=True)
    prov.begin_transaction(
        {
            "R": [
                (origin("db1", 1), bag("R", (R1, 1))),
                (origin("db1", 2), bag("R", (R1, -1))),
            ]
        }
    )
    assert prov.live_origins("R") == {origin("db1", 1), origin("db1", 2)}
    # ... and the per-origin sub-deltas survive for downstream re-firing.
    subs = dict(prov.sub_deltas("R"))
    assert list(subs[origin("db1", 1)].entries()) == [("R", R1, 1)]
    assert list(subs[origin("db1", 2)].entries()) == [("R", R1, -1)]


def test_within_origin_cancellation_drops_the_origin():
    prov = ProvenanceTracker(enabled=True)
    prov.begin_transaction(
        {"R": [(origin("db1", 1), bag("R", (R1, 1), (R1, -1)))]}
    )
    assert prov.live_origins("R") == frozenset()
    assert prov.sub_deltas("R") == []


def test_empty_contribution_does_not_attribute():
    prov = ProvenanceTracker(enabled=True)
    prov.begin_transaction({"R": [(origin("db1", 1), bag("R", (R1, 1)))]})
    prov.record_contribution("T", origin("db1", 1), BagDelta())
    prov.commit()
    # The node is tracked (a firing touched it) but no origin is blamed.
    assert prov.origins_of("T") == frozenset()


def test_set_delta_contribution_uses_signs():
    prov = ProvenanceTracker(enabled=True)
    delta = SetDelta()
    delta.insert("R", R1)
    delta.delete("R", R2)
    prov.record_contribution("R", origin("db1", 1), delta)
    counts = prov._counts["R"][origin("db1", 1)]
    assert counts == {R1: 1, R2: -1}


def test_note_origins_and_mark_approx():
    prov = ProvenanceTracker(enabled=True)
    prov.note_origins("G", [origin("db1", 1), origin("db2", 1)])
    prov.mark_approx("G")
    assert prov.live_approx("G")
    prov.commit()
    assert prov.origins_of("G") == {origin("db1", 1), origin("db2", 1)}
    assert prov.is_approx("G")


def test_commit_overwrites_only_touched_nodes():
    prov = ProvenanceTracker(enabled=True)
    prov.record_contribution("T", origin("db1", 1), bag("T", (R1, 1)))
    prov.mark_approx("T")
    prov.commit()
    # Second transaction touches only S': T keeps its committed record.
    prov.record_contribution("S_p", origin("db2", 1), bag("S_p", (R2, 1)))
    prov.commit()
    assert prov.origins_of("T") == {origin("db1", 1)}
    assert prov.is_approx("T")
    assert prov.origins_of("S_p") == {origin("db2", 1)}
    # A third transaction touching T exactly clears the approx flag.
    prov.record_contribution("T", origin("db1", 2), bag("T", (R2, 1)))
    prov.commit()
    assert prov.origins_of("T") == {origin("db1", 2)}
    assert not prov.is_approx("T")


def test_row_counts_expose_signed_history():
    prov = ProvenanceTracker(enabled=True)
    prov.record_contribution("R", origin("db1", 1), bag("R", (R1, 1), (R2, -1)))
    prov.commit()
    assert prov.row_counts("R") == {origin("db1", 1): {R1: 1, R2: -1}}


def test_clear_forgets_everything():
    prov = ProvenanceTracker(enabled=True)
    prov.record_contribution("R", origin("db1", 1), bag("R", (R1, 1)))
    prov.commit()
    prov.clear()
    assert prov.tracked_nodes() == []
    assert prov.origins_of("R") == frozenset()
