"""Tests for the Section 5.3 planner: cost model, heuristics, enumeration."""

import pytest

from repro.core import annotate
from repro.errors import PlanningError
from repro.planner import (
    CostModel,
    WorkloadProfile,
    attrs_needed_by_parents,
    best_annotation,
    candidate_annotations,
    enumerate_annotations,
    is_expensive_join,
    node_statistics,
    suggest_annotation,
)
from repro.workloads import (
    figure1_sources,
    figure1_vdp,
    figure4_sources,
    figure4_vdp,
)


def test_is_expensive_join():
    vdp4 = figure4_vdp()
    assert is_expensive_join(vdp4, "E")      # arithmetic theta join
    assert not is_expensive_join(vdp4, "F")  # equi join
    vdp1 = figure1_vdp()
    assert not is_expensive_join(vdp1, "T")  # r2 = s1 is hash-joinable
    assert not is_expensive_join(vdp1, "R_p")


def test_attrs_needed_by_parents():
    vdp = figure4_vdp()
    needed = attrs_needed_by_parents(vdp, "E")
    # G = π_{a1,b1}E − F reads exactly a1 and b1 from E.
    assert needed == frozenset({"a1", "b1"})
    assert attrs_needed_by_parents(vdp, "G") == frozenset()


def test_node_statistics_measures_cardinalities():
    vdp = figure1_vdp()
    sources = figure1_sources(r_rows=50, s_rows=20)
    stats = node_statistics(vdp, sources)
    assert stats["R"] == 50
    assert stats["T"] >= 0
    assert set(stats) == set(vdp.nodes)


def test_cost_model_prices_storage_and_work():
    vdp = figure1_vdp()
    sources = figure1_sources()
    stats = node_statistics(vdp, sources)
    profile = WorkloadProfile(update_rates={"db1": 1.0, "db2": 0.1}, query_rate=1.0)
    model = CostModel(vdp, stats, profile)

    all_m = model.estimate(annotate(vdp, {}))
    all_v = model.estimate(annotate(vdp, {}, default="v"))
    # Fully materialized stores more and answers queries cheaper.
    assert all_m.storage > all_v.storage
    assert all_m.query_cost < all_v.query_cost
    # Fully virtual pays polls at query time.
    assert all_v.query_cost > 0


def test_suggest_annotation_example22_regime():
    """Frequent R updates + rare queries -> R' goes virtual (Example 2.2)."""
    vdp = figure1_vdp()
    profile = WorkloadProfile(
        update_rates={"db1": 50.0, "db2": 0.01},
        query_rate=1.0,
        default_access=0.9,
    )
    suggestion = suggest_annotation(vdp, profile)
    assert suggestion.is_fully_virtual("R_p")
    assert suggestion.is_fully_materialized("S_p")
    assert suggestion.is_fully_materialized("T")


def test_suggest_annotation_example23_regime():
    """Queries mostly touch r1/s1 -> r3/s2 go virtual in T (Example 2.3)."""
    vdp = figure1_vdp()
    profile = WorkloadProfile(
        update_rates={"db1": 10.0, "db2": 10.0},
        query_rate=1.0,
        attr_access={
            ("T", "r1"): 0.95,
            ("T", "s1"): 0.95,
            ("T", "r3"): 0.05,
            ("T", "s2"): 0.05,
        },
    )
    suggestion = suggest_annotation(vdp, profile)
    ann = suggestion.annotation("T")
    assert set(ann.materialized_attrs) == {"r1", "s1"}
    assert set(ann.virtual_attrs) == {"r3", "s2"}


def test_suggest_annotation_figure4_shape():
    """The suggestion matches Example 5.1's reasoning on Figure 4: E keeps
    a1/b1 (needed by G's rules and as keys), F may stay virtual."""
    vdp = figure4_vdp()
    profile = WorkloadProfile(
        update_rates={"dbA": 1.0, "dbB": 1.0, "dbC": 1.0, "dbD": 1.0},
        query_rate=1.0,
        attr_access={("E", "a2"): 0.05},
        default_access=0.9,
    )
    suggestion = suggest_annotation(vdp, profile)
    e_ann = suggestion.annotation("E")
    assert "a1" in e_ann.materialized_attrs
    assert "b1" in e_ann.materialized_attrs
    assert "a2" in e_ann.virtual_attrs  # rarely accessed
    assert suggestion.is_fully_virtual("F")  # cheap to evaluate
    assert suggestion.is_fully_materialized("G")  # export set node


def test_candidate_annotations_include_hybrid():
    vdp = figure1_vdp()
    candidates = candidate_annotations(vdp, "T")
    kinds = {(c.fully_materialized, c.fully_virtual, c.hybrid) for c in candidates}
    assert (True, False, False) in kinds
    assert (False, True, False) in kinds
    assert any(c.hybrid for c in candidates)


def test_enumeration_ranks_and_respects_constraints():
    vdp = figure1_vdp()
    sources = figure1_sources(r_rows=60, s_rows=20)
    stats = node_statistics(vdp, sources)
    profile = WorkloadProfile(update_rates={"db1": 1.0, "db2": 1.0}, query_rate=1.0)
    ranked = enumerate_annotations(vdp, stats, profile)
    assert ranked[0].total <= ranked[-1].total
    assert ranked[0].describe()
    best = best_annotation(vdp, stats, profile)
    assert best.vdp is vdp


def test_enumeration_space_limit():
    vdp = figure4_vdp()
    stats = {name: 10 for name in vdp.nodes}
    profile = WorkloadProfile()
    with pytest.raises(PlanningError):
        enumerate_annotations(vdp, stats, profile, limit=2)


def test_enumerator_prefers_materialized_under_query_heavy_load():
    vdp = figure1_vdp()
    sources = figure1_sources(r_rows=60, s_rows=20)
    stats = node_statistics(vdp, sources)
    query_heavy = WorkloadProfile(
        update_rates={"db1": 0.01, "db2": 0.01}, query_rate=100.0
    )
    best = best_annotation(vdp, stats, query_heavy)
    assert best.is_fully_materialized("T")

    update_heavy = WorkloadProfile(
        update_rates={"db1": 100.0, "db2": 100.0}, query_rate=0.01
    )
    best_u = best_annotation(vdp, stats, update_heavy)
    # Under overwhelming updates the mediator should store less / do less
    # propagation work than the fully materialized plan.
    model = CostModel(vdp, stats, update_heavy)
    full = model.estimate(annotate(vdp, {}))
    chosen = model.estimate(best_u)
    assert chosen.update_cost <= full.update_cost
