"""Tests for the benchmark harness utilities."""

from repro.bench import Sweep, format_value, grid, render_table, shape_line


def test_format_value():
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(123) == "123"
    assert format_value(1234.5) == "1234"
    assert format_value(12.345) == "12.35"
    assert format_value(0.1234) == "0.1234"
    assert format_value(float("inf")) == "inf"
    assert format_value("abc") == "abc"


def test_render_table_alignment():
    text = render_table(
        "My Title",
        ["col_a", "b"],
        [[1, "xx"], [22222, "y"]],
        note="hello",
    )
    lines = text.splitlines()
    assert "My Title" in lines[1]
    header = next(l for l in lines if "col_a" in l)
    row = next(l for l in lines if "22222" in l)
    assert header.index("b") == row.index("y")
    assert any("note: hello" in l for l in lines)


def test_render_table_empty_rows():
    text = render_table("T", ["a"], [])
    assert "a" in text


def test_shape_line():
    assert shape_line("x beats y", True) == "shape[HOLDS]: x beats y"
    assert shape_line("x beats y", False, "2 vs 3") == "shape[DIVERGES]: x beats y (2 vs 3)"


def test_grid_cross_product():
    points = grid(a=[1, 2], b=["x", "y", "z"])
    assert len(points) == 6
    assert {"a": 2, "b": "z"} in points


def test_sweep_runs_and_projects():
    sweep = Sweep(lambda p: {"double": p["a"] * 2})
    rows = sweep.run(grid(a=[1, 2, 3]))
    assert rows[1] == {"a": 2, "double": 4}
    table = Sweep.to_table(rows, ["a", "double", "missing"])
    assert table == [[1, 2, ""], [2, 4, ""], [3, 6, ""]]
