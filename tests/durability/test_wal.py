"""Tests for the write-ahead delta log: format, torn tails, compaction."""

import os

import pytest

from repro.deltas import SetDelta
from repro.durability import WalRecord, WalSourceEntry, WriteAheadLog
from repro.errors import MediatorError
from repro.relalg import Row


def delta_of(*atoms):
    d = SetDelta()
    for rel, row, sign in atoms:
        if sign > 0:
            d.insert(rel, Row(row))
        else:
            d.delete(rel, Row(row))
    return d


def record(txn, source="db1", seq=None, cursor=None, atoms=None):
    atoms = atoms or [("R", {"r1": txn, "r2": txn * 10}, +1)]
    return WalRecord(
        txn=txn,
        sources={source: WalSourceEntry(seq=seq or txn, cursor=cursor, delta=delta_of(*atoms))},
    )


def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


def test_append_and_read_roundtrip(tmp_path):
    path = wal_path(tmp_path)
    wal = WriteAheadLog(path)
    r1 = record(1, cursor=5)
    r2 = record(2, cursor=6, atoms=[("R", {"r1": 1, "r2": 10}, -1), ("R", {"r1": 9, "r2": 0}, +1)])
    wal.append(r1)
    wal.append(r2)
    wal.close()

    back = WriteAheadLog.read_records(path)
    assert [r.txn for r in back] == [1, 2]
    assert back[0].sources["db1"].cursor == 5
    assert back[0].sources["db1"].seq == 1
    assert back[0].sources["db1"].delta == r1.sources["db1"].delta
    assert back[1].sources["db1"].delta == r2.sources["db1"].delta


def test_null_cursor_survives_roundtrip(tmp_path):
    path = wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append(record(1, cursor=None))
    wal.close()
    assert WriteAheadLog.read_records(path)[0].sources["db1"].cursor is None


def test_torn_final_record_is_dropped(tmp_path):
    path = wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append(record(1))
    wal.append(record(2))
    wal.append(record(3), torn=True)
    wal.close()

    back = WriteAheadLog.read_records(path)
    assert [r.txn for r in back] == [1, 2]


def test_reader_stops_at_crc_corruption(tmp_path):
    path = wal_path(tmp_path)
    wal = WriteAheadLog(path)
    for txn in (1, 2, 3):
        wal.append(record(txn))
    wal.close()
    data = open(path, "rb").read()
    lines = data.split(b"\n")
    # Flip a byte inside record 2's JSON body.
    lines[1] = lines[1][:-5] + (b"X" if lines[1][-5:-4] != b"X" else b"Y") + lines[1][-4:]
    with open(path, "wb") as fh:
        fh.write(b"\n".join(lines))
    # Record 1 survives; 2 fails the CRC; 3 is unreachable (suspect).
    assert [r.txn for r in WriteAheadLog.read_records(path)] == [1]


def test_reader_rejects_non_monotone_txn(tmp_path):
    path = wal_path(tmp_path)
    with open(path, "wb") as fh:
        fh.write(record(2).encode())
        fh.write(record(2).encode())  # replayed line: same txn again
    assert [r.txn for r in WriteAheadLog.read_records(path)] == [2]


def test_append_rejects_stale_txn(tmp_path):
    wal = WriteAheadLog(wal_path(tmp_path))
    wal.append(record(1))
    with pytest.raises(MediatorError):
        wal.append(record(1))
    wal.close()


def test_compact_drops_absorbed_prefix(tmp_path):
    path = wal_path(tmp_path)
    wal = WriteAheadLog(path)
    for txn in (1, 2, 3, 4):
        wal.append(record(txn))
    assert wal.compact(through_txn=2) == 2
    assert [r.txn for r in wal.records] == [3, 4]
    # The rewrite is durable and the log stays appendable.
    wal.append(record(5))
    wal.close()
    assert [r.txn for r in WriteAheadLog.read_records(path)] == [3, 4, 5]


def test_truncate_tail_makes_log_appendable_after_torn_write(tmp_path):
    path = wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append(record(1))
    wal.append(record(2), torn=True)
    wal.close()

    # A new writer over the same file sheds the torn bytes first —
    # appending straight onto them would corrupt the next record too.
    wal = WriteAheadLog(path)
    assert wal.truncate_tail() is True
    wal.append(record(2))
    wal.close()
    assert [r.txn for r in WriteAheadLog.read_records(path)] == [1, 2]


def test_source_seqs_and_last_txn_resume(tmp_path):
    path = wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append(
        WalRecord(
            txn=1,
            sources={
                "db1": WalSourceEntry(seq=1, cursor=3, delta=delta_of(("R", {"r1": 1}, +1))),
                "db2": WalSourceEntry(seq=1, cursor=2, delta=delta_of(("S", {"s1": 1}, +1))),
            },
        )
    )
    wal.append(record(2, source="db1", seq=2))
    wal.close()

    resumed = WriteAheadLog(path)
    assert resumed.last_txn == 2
    assert resumed.source_seqs() == {"db1": 2, "db2": 1}
    resumed.close()


def test_missing_file_is_empty_log(tmp_path):
    assert WriteAheadLog.read_records(str(tmp_path / "absent.log")) == []
