"""Tests for checkpoint policy, atomic publish, and chain resolution."""

import json
import os

import pytest

from repro.durability import CheckpointPolicy, CheckpointStore
from repro.errors import MediatorError


def payload(ckpt_id, parent, nodes, wal_txn=0):
    return {
        "id": ckpt_id,
        "parent": parent,
        "wal_txn": wal_txn,
        "source_seqs": {},
        "cursors": {},
        "nodes": {name: {"columns": ["a"], "rows": [[[ckpt_id], 1]]} for name in nodes},
    }


def test_policy_triggers():
    policy = CheckpointPolicy(every_txns=4, every_wal_bytes=1000)
    assert not policy.due(3, 999)
    assert policy.due(4, 0)
    assert policy.due(0, 1000)
    disabled = CheckpointPolicy(every_txns=0, every_wal_bytes=0)
    assert not disabled.due(10_000, 10_000_000)


def test_write_load_roundtrip(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write(payload(0, None, ["A", "B"]))
    loaded = store.load_all()
    assert set(loaded) == {0}
    assert loaded[0]["complete"] is True
    assert set(loaded[0]["nodes"]) == {"A", "B"}


def test_aborted_publish_leaves_only_tmp(tmp_path):
    store = CheckpointStore(str(tmp_path))
    tmp = store.write(payload(0, None, ["A"]), abort_before_publish=True)
    assert tmp.endswith(".tmp") and os.path.exists(tmp)
    assert store.load_all() == {}


def test_chain_resolution_newest_node_wins(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write(payload(0, None, ["A", "B"], wal_txn=0))   # base
    store.write(payload(1, 0, ["A"], wal_txn=4))           # A dirtied
    store.write(payload(2, 1, ["B"], wal_txn=8))           # B dirtied
    meta, nodes = store.resolve_chain(["A", "B"])
    assert meta["id"] == 2 and meta["wal_txn"] == 8
    assert nodes["B"]["rows"] == [[[2], 1]]   # from checkpoint 2
    assert nodes["A"]["rows"] == [[[1], 1]]   # newest image is checkpoint 1's


def test_broken_chain_falls_back_to_older_candidate(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write(payload(0, None, ["A", "B"]))
    store.write(payload(1, 0, ["A"]))
    store.write(payload(3, 2, ["B"]))  # parent 2 never published (crashed)
    meta, nodes = store.resolve_chain(["A", "B"])
    assert meta["id"] == 1


def test_unparseable_checkpoint_is_skipped(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write(payload(0, None, ["A"]))
    with open(store.path_for(1), "w") as fh:
        fh.write("{ not json")
    meta, _ = store.resolve_chain(["A"])
    assert meta["id"] == 0


def test_no_usable_chain_raises(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(MediatorError):
        store.resolve_chain(["A"])
    # A chain that never covers node B is unusable too.
    store.write(payload(0, None, ["A"]))
    with pytest.raises(MediatorError):
        store.resolve_chain(["A", "B"])
