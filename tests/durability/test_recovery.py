"""Deterministic crash/recovery scenarios over the Figure-1 mediator."""

import pytest

from repro.core import annotate
from repro.core.persistence import (
    reinitialize_sources,
    restore_mediator,
    save_mediator,
)
from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.durability import (
    CheckpointPolicy,
    Commit,
    CompactLog,
    DurabilityManager,
    RecoveryManager,
    run_crash_workload,
)
from repro.deltas import SetDelta
from repro.errors import MediatorError, SimulatedCrash, SnapshotStaleError
from repro.faults import CrashPoint, CrashSchedule
from repro.relalg import Row
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_mediator, figure1_vdp


def insert_r(r1, r2=1):
    d = SetDelta()
    d.insert("R", Row({"r1": r1, "r2": r2, "r3": r1 % 7, "r4": 100}))
    return d


def insert_s(s1):
    d = SetDelta()
    d.insert("S", Row({"s1": s1, "s2": s1 % 5, "s3": 7}))
    return d


def steps_mixed(n, base=50_000):
    steps = []
    for i in range(n):
        if i % 3 == 2:
            steps.append(Commit("db2", insert_s(base + i)))
        else:
            steps.append(Commit("db1", insert_r(base + i, r2=i % 50)))
    return steps


def drained_and_correct(mediator):
    assert mediator.refresh().flushed_messages == 0
    assert_view_correct(mediator)
    assert_materialized_correct(mediator)


# ----------------------------------------------------------------------
# Crash points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("phase", ["post-wal-append", "torn-wal"])
def test_crash_and_recover_matches_recompute(tmp_path, phase):
    mediator, sources = figure1_mediator("ex21", seed=21)
    schedule = CrashSchedule([CrashPoint(3, phase)])
    outcome = run_crash_workload(
        mediator.annotated,
        sources,
        str(tmp_path),
        steps_mixed(7),
        crash_schedule=schedule,
        policy=CheckpointPolicy(every_txns=2),
    )
    assert outcome.crashes == [(phase, 3)]
    assert len(outcome.recoveries) == 1
    drained_and_correct(outcome.mediator)


def test_mid_checkpoint_crash_keeps_previous_chain(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=22)
    # txn 4 triggers the every-2 policy; the crash lands before the publish
    # rename, so recovery must run from the txn-2 checkpoint plus WAL tail.
    schedule = CrashSchedule([CrashPoint(4, "mid-checkpoint")])
    outcome = run_crash_workload(
        mediator.annotated,
        sources,
        str(tmp_path),
        steps_mixed(7),
        crash_schedule=schedule,
        policy=CheckpointPolicy(every_txns=2),
    )
    assert outcome.crashes == [("mid-checkpoint", 4)]
    recovery = outcome.recoveries[0]
    assert recovery.wal_records_replayed >= 2  # txns 3 and 4 were not absorbed
    drained_and_correct(outcome.mediator)


def test_torn_record_recovered_from_source_log(tmp_path):
    """The torn transaction's WAL record never became durable; its data
    comes back through the source's own log past the last good cursor."""
    mediator, sources = figure1_mediator("ex21", seed=23)
    schedule = CrashSchedule([CrashPoint(2, "torn-wal")])
    outcome = run_crash_workload(
        mediator.annotated,
        sources,
        str(tmp_path),
        steps_mixed(4),
        crash_schedule=schedule,
        policy=CheckpointPolicy(every_txns=100),  # no checkpoint after base
    )
    recovery = outcome.recoveries[0]
    assert recovery.replayed_txns >= 1
    drained_and_correct(outcome.mediator)


def test_multiple_crashes_in_one_run(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=24)
    schedule = CrashSchedule(
        [CrashPoint(2, "post-wal-append"), CrashPoint(5, "torn-wal")]
    )
    outcome = run_crash_workload(
        mediator.annotated,
        sources,
        str(tmp_path),
        steps_mixed(8),
        crash_schedule=schedule,
        policy=CheckpointPolicy(every_txns=3),
    )
    assert len(outcome.crashes) == 2
    drained_and_correct(outcome.mediator)


# ----------------------------------------------------------------------
# Recovery protocol details
# ----------------------------------------------------------------------
def test_recovery_without_checkpoint_raises(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=25)
    with pytest.raises(MediatorError):
        RecoveryManager(str(tmp_path)).recover(mediator.annotated, sources)


def test_recovery_is_idempotent_under_repeated_restart(tmp_path):
    """Crash, recover, crash again before any new checkpoint: the second
    recovery replays the same WAL tail over the same checkpoint and must
    land in the same state (the (source, seq) key keeps replay idempotent)."""
    mediator, sources = figure1_mediator("ex21", seed=26)
    annotated = mediator.annotated
    manager = DurabilityManager.attach(
        mediator, str(tmp_path), policy=CheckpointPolicy(every_txns=100)
    )
    for step in steps_mixed(3):
        sources[step.source].execute(step.delta)
        mediator.refresh()
    manager.close()

    first = RecoveryManager(str(tmp_path)).recover(annotated, sources)
    second = RecoveryManager(str(tmp_path)).recover(annotated, sources)
    assert first.wal_records_replayed == second.wal_records_replayed
    t1 = first.mediator.query_relation("T")
    t2 = second.mediator.query_relation("T")
    assert t1 == t2
    drained_and_correct(second.mediator)


def test_unheard_source_commits_recovered_from_log(tmp_path):
    """Transactions committed while the mediator was 'down' (never
    announced, never logged) come back through the source-log catch-up."""
    mediator, sources = figure1_mediator("ex21", seed=27)
    annotated = mediator.annotated
    manager = DurabilityManager.attach(mediator, str(tmp_path))
    sources["db1"].execute(insert_r(61_000))
    mediator.refresh()
    manager.close()
    # Mediator is dead; sources keep committing.
    sources["db1"].execute(insert_r(61_001))
    sources["db2"].execute(insert_s(61_002))

    recovery = RecoveryManager(str(tmp_path)).recover(annotated, sources)
    assert recovery.replayed_txns == 2
    drained_and_correct(recovery.mediator)


# ----------------------------------------------------------------------
# Selective re-initialization (compacted source logs)
# ----------------------------------------------------------------------
def compacted_scenario(tmp_path, on_stale):
    mediator, sources = figure1_mediator("ex21", seed=28)
    steps = [
        Commit("db1", insert_r(62_000)),
        Commit("db2", insert_s(62_001)),
        # db1 commits the mediator never hears, then reclaims its log.
        Commit("db1", insert_r(62_002), refresh=False),
        Commit("db1", insert_r(62_003), refresh=False),
        CompactLog("db1"),
        Commit("db2", insert_s(62_004)),  # txn 3: torn -> record lost
    ]
    schedule = CrashSchedule([CrashPoint(3, "torn-wal")])
    if on_stale == "reinit":
        return run_crash_workload(
            mediator.annotated,
            sources,
            str(tmp_path),
            steps,
            crash_schedule=schedule,
            policy=CheckpointPolicy(every_txns=100),
        )
    # on_stale == "raise": drive the same scenario by hand.
    manager = DurabilityManager.attach(
        mediator, str(tmp_path), crash_schedule=schedule,
        policy=CheckpointPolicy(every_txns=100),
    )
    for step in steps:
        if isinstance(step, CompactLog):
            sources[step.source].compact_log(sources[step.source].txn_count)
            continue
        sources[step.source].execute(step.delta)
        if step.refresh:
            try:
                mediator.refresh()
            except SimulatedCrash:
                manager.close()
                return mediator.annotated, sources


def test_compacted_log_triggers_selective_reinit(tmp_path):
    outcome = compacted_scenario(tmp_path, "reinit")
    recovery = outcome.recoveries[0]
    assert recovery.reinitialized_sources == ("db1",)
    # Only db1's subtree was rebuilt: R_p and the shared export T — never
    # S_p, which db1 cannot reach.
    assert set(recovery.reinitialized_nodes) == {"R_p", "T"}
    assert recovery.stale_gaps["db1"][0] < recovery.stale_gaps["db1"][1]
    drained_and_correct(outcome.mediator)


def test_compacted_log_with_on_stale_raise(tmp_path):
    annotated, sources = compacted_scenario(tmp_path, "raise")
    with pytest.raises(SnapshotStaleError) as excinfo:
        RecoveryManager(str(tmp_path)).recover(annotated, sources, on_stale="raise")
    assert "db1" in excinfo.value.gaps
    cursor, floor = excinfo.value.gaps["db1"]
    assert floor > cursor
    assert "reinit" in str(excinfo.value)


def test_resync_staleness_disclosed_during_reinit(tmp_path):
    """While a selective re-initialization is in flight the source must be
    disclosed with unbounded staleness; afterwards the tag clears."""
    mediator, sources = figure1_mediator("ex21", seed=29)
    mediator.begin_resync("db1")
    tag = mediator.staleness_tag()
    assert tag.staleness["db1"] == float("inf")
    mediator.end_resync("db1")
    assert "db1" not in mediator.staleness_tag().staleness
    with pytest.raises(MediatorError):
        mediator.begin_resync("nope")


def test_reinitialize_sources_compensates_in_flight_updates(tmp_path):
    """Intact sources' queued/pending announcements must not be baked into
    the rebuilt subtree — they are still due for incremental delivery."""
    mediator, sources = figure1_mediator("ex21", seed=30)
    # db2 has one queued and one unannounced update in flight.
    sources["db2"].execute(insert_s(63_000))
    mediator.collect_announcements()
    sources["db2"].execute(insert_s(63_001))
    replaced = reinitialize_sources(mediator, ["db1"])
    assert set(replaced) == {"R_p", "T"}
    # Delivering the in-flight updates now must land exactly once.
    result = mediator.refresh()
    assert result.flushed_messages >= 1
    assert_view_correct(mediator)
    assert_materialized_correct(mediator)


def test_traced_crash_run_validates_against_schema(tmp_path):
    """Spans and events emitted by WAL/checkpoint/recovery code must stay
    inside the closed trace taxonomy — a traced crash run exports clean."""
    from repro.obs import Tracer
    from repro.obs.export import export_jsonl

    tracer = Tracer(enabled=True)
    mediator, sources = figure1_mediator("ex21", seed=33)
    steps = [
        Commit("db1", insert_r(65_000)),
        Commit("db1", insert_r(65_001), refresh=False),
        CompactLog("db1"),
        Commit("db2", insert_s(65_002)),
        Commit("db2", insert_s(65_003)),
    ]
    outcome = run_crash_workload(
        mediator.annotated,
        sources,
        str(tmp_path / "dur"),
        steps,
        crash_schedule=CrashSchedule([CrashPoint(2, "torn-wal")]),
        policy=CheckpointPolicy(every_txns=2),
        mediator_kwargs={"tracer": tracer},
    )
    assert outcome.crashes and outcome.recoveries[0].reinitialized_sources
    written = export_jsonl(tracer, str(tmp_path / "trace.jsonl"))
    assert written > 0
    names = {r["name"] for r in tracer.records()}
    for required in (
        "checkpoint",
        "recovery",
        "wal_replay",
        "selective_reinit",
        "wal_append",
        "wal_torn",
        "crash_injected",
        "recovery_catchup",
        "source_reinit",
        "checkpoint_complete",
    ):
        assert required in names, required


# ----------------------------------------------------------------------
# restore_mediator: typed staleness and the reinit fallback
# ----------------------------------------------------------------------
def stale_snapshot(tmp_path):
    mediator, sources = figure1_mediator("ex21", seed=31)
    path = str(tmp_path / "mediator.snapshot")
    save_mediator(mediator, path)
    sources["db1"].insert("R", r1=64_000, r2=1, r3=1, r4=100)
    sources["db1"].insert("R", r1=64_001, r2=2, r3=2, r4=100)
    sources["db2"].insert("S", s1=64_002, s2=1, s3=7)
    sources["db1"].compact_log(sources["db1"].txn_count)
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    return annotated, sources, path


def test_restore_stale_raises_typed_error_with_gap(tmp_path):
    annotated, sources, path = stale_snapshot(tmp_path)
    with pytest.raises(SnapshotStaleError) as excinfo:
        restore_mediator(annotated, sources, path)
    gaps = excinfo.value.gaps
    assert set(gaps) == {"db1"}
    cursor, floor = gaps["db1"]
    assert cursor == 0 and floor > cursor
    assert "on_stale" in str(excinfo.value)


def test_restore_stale_reinit_fallback(tmp_path):
    annotated, sources, path = stale_snapshot(tmp_path)
    restored = restore_mediator(annotated, sources, path, on_stale="reinit")
    drained_and_correct(restored)


def test_restore_rejects_unknown_on_stale(tmp_path):
    annotated, sources, path = stale_snapshot(tmp_path)
    with pytest.raises(MediatorError):
        restore_mediator(annotated, sources, path, on_stale="panic")
