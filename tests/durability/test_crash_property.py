"""Crash-recovery property test.

The headline invariant of the durability subsystem: run a random Figure-1
workload — source commits (some silent), autonomous source-log
compactions — under a random :class:`CrashSchedule`, let the harness
kill and recover the mediator at every injected crash, drain, and demand
that **the recovered mediator's state equals a from-scratch recomputation**
from current source states (materialized repositories multiplicity-exact,
exports through the QP included).

Everything is a pure function of the drawn example (``derandomize=True``),
so every failing example replays exactly.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.deltas import SetDelta
from repro.durability import CheckpointPolicy, Commit, CompactLog, run_crash_workload
from repro.faults import CRASH_PHASES, CrashPoint, CrashSchedule
from repro.relalg import Row
from repro.workloads import figure1_mediator


@st.composite
def workload_steps(draw, sources):
    """A random mixed workload over db1/db2.

    Includes deletes, silent commits (``refresh=False``) and source-log
    compactions, so the property also exercises delta inversion in the WAL
    and the selective-reinitialization path — not just clean replay.  A
    model of each relation's current rows is maintained so every generated
    atom is non-redundant (sources reject redundant inserts/deletes).
    """
    model = {
        rel: {row["%s1" % rel.lower()]: dict(row) for row in sources[db].relation(rel).rows()}
        for db, rel in (("db1", "R"), ("db2", "S"))
    }
    n = draw(st.integers(min_value=2, max_value=10))
    steps = []
    key = 70_000
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["ir", "ir", "is", "dr", "ds", "ir-silent", "is-silent", "compact"]
            )
        )
        if kind == "compact":
            steps.append(CompactLog(draw(st.sampled_from(["db1", "db2"]))))
            continue
        silent = kind.endswith("silent")
        op, rel = kind[0], kind[1].upper()
        source = "db1" if rel == "R" else "db2"
        delta = SetDelta()
        if op == "d":
            if not model[rel]:
                continue
            victim = model[rel].pop(
                draw(st.sampled_from(sorted(model[rel])))
            )
            delta.delete(rel, Row(victim))
        elif rel == "R":
            key += 1
            row = {
                "r1": key,
                "r2": draw(st.integers(min_value=0, max_value=60)),
                "r3": key % 7,
                "r4": draw(st.sampled_from([100, 100, 7])),
            }
            model["R"][key] = row
            delta.insert("R", Row(row))
        else:
            # Initial S occupies s1 = 0..49; stay clear of live keys while
            # keeping some values inside the join domain.
            s1 = draw(st.integers(min_value=40, max_value=120))
            while s1 in model["S"]:
                s1 += 1
            key += 1
            row = {"s1": s1, "s2": key % 5, "s3": draw(st.sampled_from([7, 7, 99]))}
            model["S"][s1] = row
            delta.insert("S", Row(row))
        steps.append(Commit(source, delta, refresh=not silent))
    return steps


@st.composite
def crash_schedules(draw, max_txn):
    points = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=max(max_txn, 1)),
                st.sampled_from(CRASH_PHASES),
            ),
            min_size=0,
            max_size=3,
            unique_by=lambda p: p[0],  # one crash per transaction at most
        )
    )
    return CrashSchedule([CrashPoint(txn, phase) for txn, phase in points])


@given(st.data())
@settings(max_examples=100, deadline=None, derandomize=True)
def test_recovered_state_equals_recompute(data):
    mediator, sources = figure1_mediator(
        data.draw(st.sampled_from(["ex21", "ex22", "ex23"])),
        seed=data.draw(st.integers(min_value=0, max_value=2**16)),
    )
    steps = data.draw(workload_steps(sources))
    refreshing = sum(1 for s in steps if isinstance(s, Commit) and s.refresh)
    schedule = data.draw(crash_schedules(max_txn=refreshing))
    policy = CheckpointPolicy(
        every_txns=data.draw(st.sampled_from([1, 2, 3, 100])),
        every_wal_bytes=data.draw(st.sampled_from([0, 2_048])),
    )

    with tempfile.TemporaryDirectory() as directory:
        outcome = run_crash_workload(
            mediator.annotated,
            sources,
            directory,
            steps,
            crash_schedule=schedule,
            policy=policy,
        )
        # Every injected crash that fired was followed by a recovery.
        assert len(outcome.recoveries) == len(outcome.crashes)
        # Detach durability (no more injected crashes), drain whatever the
        # workload left in flight (silent commits, post-recovery catch-up),
        # then compare against ground truth.
        outcome.manager.close()
        outcome.mediator.refresh()
        assert outcome.mediator.refresh().flushed_messages == 0
        assert_materialized_correct(outcome.mediator)
        assert_view_correct(outcome.mediator)


@given(st.data())
@settings(max_examples=20, deadline=None, derandomize=True)
def test_crashes_actually_fire(data):
    """Meta-check: the property is not vacuously passing — schedules with
    in-range crash points do interrupt runs."""
    txn = data.draw(st.integers(min_value=1, max_value=3))
    phase = data.draw(st.sampled_from(CRASH_PHASES))
    schedule = CrashSchedule([CrashPoint(txn, phase)])
    mediator, sources = figure1_mediator("ex21", seed=17)
    steps = []
    for i in range(4):
        delta = SetDelta()
        delta.insert("R", Row({"r1": 80_000 + i, "r2": 1, "r3": i, "r4": 100}))
        steps.append(Commit("db1", delta))
    with tempfile.TemporaryDirectory() as directory:
        outcome = run_crash_workload(
            mediator.annotated,
            sources,
            directory,
            steps,
            crash_schedule=schedule,
            # Checkpoint after every txn so a "mid-checkpoint" point always
            # has a checkpoint to interrupt at its transaction.
            policy=CheckpointPolicy(every_txns=1),
        )
        assert outcome.crashes == [(phase, txn)]
        assert schedule.fired()
        outcome.manager.close()
