"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_mediator_from_files, main

SPEC = """
source db1 { relation R(r1: int key, r2: int) }
source db2 { relation S(s1: int key, s2: int) }
view R_p = R
view S_p = S
export V = project[r1, s2](R_p join[r2 = s1] S_p)
annotate V [r1^m, s2^v]
"""

DATA = {
    "db1": {"R": [[1, 10], [2, 20]]},
    "db2": {"S": [[10, 111], [30, 333]]},
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "mediator.spec"
    path.write_text(SPEC)
    return str(path)


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.json"
    path.write_text(json.dumps(DATA))
    return str(path)


def test_build_mediator_from_files(spec_file, data_file):
    mediator = build_mediator_from_files(spec_file, data_file)
    assert mediator.query("project[r1](V)").to_sorted_list() == [((1,), 1)]


def test_describe_command(spec_file, data_file):
    out = io.StringIO()
    code = main(["--data", data_file, "describe", spec_file], out=out)
    assert code == 0
    text = out.getvalue()
    assert "V[r1^m, s2^v]" in text
    assert "contributors:" in text


def test_query_command(spec_file, data_file):
    out = io.StringIO()
    code = main(["--data", data_file, "query", spec_file, "project[r1, s2](V)"], out=out)
    assert code == 0
    assert "1 | 111" in out.getvalue()
    assert "[1 rows]" in out.getvalue()


def test_query_without_data(spec_file):
    out = io.StringIO()
    code = main(["query", spec_file, "project[r1](V)"], out=out)
    assert code == 0
    assert "[0 rows]" in out.getvalue()


def test_sqlite_backend_flag(spec_file, data_file):
    out = io.StringIO()
    code = main(
        ["--data", data_file, "--backend", "sqlite", "query", spec_file, "project[r1](V)"],
        out=out,
    )
    assert code == 0
    assert "[1 rows]" in out.getvalue()


def test_missing_spec_file():
    code = main(["describe", "/nonexistent/path.spec"])
    assert code == 1


def test_bad_spec_reports_error(tmp_path):
    path = tmp_path / "bad.spec"
    path.write_text("wibble")
    assert main(["describe", str(path)]) == 1


def test_repl_command_dispatch(spec_file, data_file):
    from repro.cli import _repl_command, build_mediator_from_files

    mediator = build_mediator_from_files(spec_file, data_file)
    out = io.StringIO()
    assert _repl_command(mediator, "\\vdp", out)
    assert "V[r1^m, s2^v]" in out.getvalue()

    out = io.StringIO()
    assert _repl_command(mediator, "\\insert db1 R 3 30", out)
    assert _repl_command(mediator, "\\refresh", out)
    assert _repl_command(mediator, "project[r1](V)", out)
    text = out.getvalue()
    assert "messages" in text
    assert "[2 rows]" in text  # r2=30 joins s1=30

    out = io.StringIO()
    assert _repl_command(mediator, "\\delete db1 R 3 30", out)
    assert _repl_command(mediator, "\\stats", out)
    assert "queries" in out.getvalue()

    out = io.StringIO()
    assert _repl_command(mediator, "\\insert db1 R 9", out)  # wrong arity
    assert "expected 2 values" in out.getvalue()

    assert not _repl_command(mediator, "\\quit", io.StringIO())


def test_cli_module_entrypoint(spec_file, data_file):
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "--data", data_file, "query", spec_file, "project[r1](V)"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0
    assert "[1 rows]" in result.stdout


def test_cli_trace_exports_validated_jsonl(tmp_path):
    from repro.obs import validate_jsonl_file

    path = tmp_path / "trace.jsonl"
    out = io.StringIO()
    assert main(["trace", "ex21", "--out", str(path)], out=out) == 0
    text = out.getvalue()
    assert f"records to {path}" in text
    assert "update_txn" in text  # the span tree rendering
    assert validate_jsonl_file(path) > 0


def test_cli_trace_quiet_suppresses_tree(tmp_path):
    out = io.StringIO()
    assert main(["trace", "ex21", "--quiet"], out=out) == 0
    assert "update_txn" not in out.getvalue()


def test_cli_trace_rejects_unknown_scenario():
    import pytest

    with pytest.raises(SystemExit):
        main(["trace", "no_such_scenario"], out=io.StringIO())


def test_cli_stats_prints_metrics_and_provenance():
    out = io.StringIO()
    assert main(["stats", "ex23"], out=out) == 0
    text = out.getvalue()
    assert "iup.rules_fired" in text
    assert "qp.queries" in text
    assert "delta provenance" in text
    assert "db1#1" in text


def test_cli_checkpoint_then_recover_roundtrip(spec_file, data_file, tmp_path):
    durdir = str(tmp_path / "dur")
    out = io.StringIO()
    assert main(["--data", data_file, "checkpoint", spec_file, "--dir", durdir], out=out) == 0
    assert "checkpoint 0 written" in out.getvalue()
    assert (tmp_path / "dur" / "ckpt-00000000.json").exists()
    assert (tmp_path / "dur" / "wal.log").exists()

    out = io.StringIO()
    code = main(
        [
            "--data", data_file,
            "recover", spec_file, "--dir", durdir,
            "--query", "project[r1, s2](V)",
        ],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "recovered from checkpoint 0" in text
    assert "1 | 111" in text  # the recovered view answers correctly


def test_cli_checkpoint_is_repeatable(spec_file, data_file, tmp_path):
    durdir = str(tmp_path / "dur")
    assert main(["--data", data_file, "checkpoint", spec_file, "--dir", durdir], out=io.StringIO()) == 0
    out = io.StringIO()
    assert main(["--data", data_file, "checkpoint", spec_file, "--dir", durdir], out=out) == 0
    assert "checkpoint 1 written" in out.getvalue()


def test_cli_recover_without_checkpoint_fails(spec_file, data_file, tmp_path):
    code = main(
        ["--data", data_file, "recover", spec_file, "--dir", str(tmp_path / "empty")],
        out=io.StringIO(),
    )
    assert code == 1


def test_cli_soak_writes_report_and_exits_zero(tmp_path):
    report = tmp_path / "slo.json"
    out = io.StringIO()
    code = main(
        [
            "soak",
            "--sources", "8",
            "--seed", "3",
            "--steps", "12",
            "--checkpoint-every", "6",
            "--report", str(report),
        ],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "soak: 12 steps over 8 sources" in text
    assert "zero convergence violations, freshness SLO held" in text
    document = json.loads(report.read_text())
    assert document["kind"] == "soak-slo-report"
    assert document["ok"] is True


def test_cli_soak_with_crash_points(tmp_path):
    out = io.StringIO()
    code = main(
        [
            "soak",
            "--sources", "8",
            "--seed", "5",
            "--steps", "12",
            "--checkpoint-every", "6",
            "--crash", "2:post-wal-append",
            "--durability-dir", str(tmp_path / "dur"),
        ],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "durability: 1 crashes, 1 recoveries" in text


@pytest.mark.parametrize(
    "point",
    [
        "2",                  # no colon at all
        "2:",                 # empty phase
        "2:no-such-phase",    # unknown phase
        "x:post-wal-append",  # non-integer transaction index
        ":torn-wal",          # empty transaction index
    ],
)
def test_cli_soak_rejects_malformed_crash_point(point, capsys):
    code = main(["soak", "--crash", point], out=io.StringIO())
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error: --crash")
    assert repr(point) in err
