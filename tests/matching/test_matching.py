"""Tests for object matching: normalizers, rules, and the engine."""

import pytest

from repro.errors import SchemaError, SourceError
from repro.matching import (
    MatchCriterion,
    MatchRule,
    MatchingEngine,
    alnum_only,
    casefold_trim,
    chain,
    digits_only,
    prefix,
    rounded,
    soundex,
)
from repro.relalg import make_schema, row
from repro.sources import MemorySource

CUSTOMERS = make_schema("customers", ["cid", "name", "phone"], key=["cid"])
CLIENTS = make_schema("clients", ["clid", "fullname", "tel"], key=["clid"])


def make_rule(criteria=None):
    return MatchRule(
        "cust_match",
        "customers",
        "clients",
        tuple(
            criteria
            or [
                MatchCriterion("name", "fullname", casefold_trim),
                MatchCriterion("phone", "tel", digits_only),
            ]
        ),
        left_keys=("cid",),
        right_keys=("clid",),
    )


def make_sources():
    left = MemorySource(
        "crm_a",
        [CUSTOMERS],
        initial={
            "customers": [
                (1, "Ada Lovelace", "+1 (303) 555-0101"),
                (2, "Grace Hopper", "303-555-0202"),
                (3, "Alan Turing", "303.555.0303"),
            ]
        },
    )
    right = MemorySource(
        "crm_b",
        [CLIENTS],
        initial={
            "clients": [
                (901, "ada   lovelace", "13035550101"),
                (902, "GRACE HOPPER", "3035550202"),
                (903, "Edsger Dijkstra", "3035550404"),
            ]
        },
    )
    return left, right


# ---------------------------------------------------------------------------
# Normalizers
# ---------------------------------------------------------------------------
def test_casefold_trim():
    assert casefold_trim("  Ada   LOVELACE ") == "ada lovelace"


def test_digits_only():
    assert digits_only("+1 (303) 555-0101") == "13035550101"


def test_alnum_only_and_prefix():
    assert alnum_only("AB-12/x") == "ab12x"
    assert prefix(3)("  Ada Lovelace") == "ada"


def test_rounded():
    assert rounded(1)(3.14159) == 3.1
    assert rounded()(2.6) == 3.0


def test_soundex_classics():
    assert soundex("Robert") == "R163"
    assert soundex("Rupert") == "R163"
    assert soundex("Ashcraft") == soundex("Ashcroft")
    assert soundex("Tymczak") == "T522"
    assert soundex("") == "0000"


def test_chain():
    n = chain(casefold_trim, prefix(2))
    assert n("  HeLLo world") == "he"


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------
def test_rule_schema_prefixes_keys():
    schema = make_rule().schema()
    assert schema.attribute_names == ("l_cid", "r_clid")


def test_rule_matches_and_pairs():
    rule = make_rule()
    left = row(cid=1, name="Ada Lovelace", phone="+1 (303) 555-0101")
    right = row(clid=901, fullname="ada lovelace", tel="1-303-555-0101")
    assert rule.matches(left, right)
    assert rule.pair(left, right) == row(l_cid=1, r_clid=901)
    assert not rule.matches(left, row(clid=9, fullname="ada lovelace", tel="000"))


def test_rule_validation():
    with pytest.raises(SchemaError):
        MatchRule("m", "a", "b", (), ("k",), ("k",))
    with pytest.raises(SchemaError):
        MatchRule("m", "a", "b", (MatchCriterion("x", "y"),), (), ("k",))


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------
def test_engine_bootstrap_matches_existing_rows():
    left, right = make_sources()
    engine = MatchingEngine([make_rule()], left, right)
    table = engine.match_table("cust_match")
    assert table.to_sorted_list() == [((1, 901), 1), ((2, 902), 1)]
    # Bootstrap is initial state, not an announcement.
    assert not engine.source.has_pending_announcement()


def test_engine_incremental_insert_both_sides():
    left, right = make_sources()
    engine = MatchingEngine([make_rule()], left, right)
    left.insert("customers", cid=4, name="Edsger Dijkstra", phone="303 555 0404")
    assert engine.match_table("cust_match").contains(row(l_cid=4, r_clid=903))
    right.insert("clients", clid=904, fullname="alan turing", tel="303-555-0303")
    assert engine.match_table("cust_match").contains(row(l_cid=3, r_clid=904))
    assert engine.pairs_emitted == 4


def test_engine_incremental_delete():
    left, right = make_sources()
    engine = MatchingEngine([make_rule()], left, right)
    left.delete("customers", cid=1, name="Ada Lovelace", phone="+1 (303) 555-0101")
    assert not engine.match_table("cust_match").contains(row(l_cid=1, r_clid=901))
    assert engine.pairs_retracted == 1


def test_engine_modify_moves_matches():
    left, right = make_sources()
    engine = MatchingEngine([make_rule()], left, right)
    # Grace changes phone number: the old pair retracts.
    left.update(
        "customers",
        {"cid": 2, "name": "Grace Hopper", "phone": "303-555-0202"},
        {"cid": 2, "name": "Grace Hopper", "phone": "303-555-9999"},
    )
    assert not engine.match_table("cust_match").contains(row(l_cid=2, r_clid=902))


def test_engine_announces_net_deltas():
    left, right = make_sources()
    engine = MatchingEngine([make_rule()], left, right)
    left.insert("customers", cid=4, name="Edsger Dijkstra", phone="303 555 0404")
    announcement = engine.source.take_announcement()
    assert announcement.sign("cust_match", row(l_cid=4, r_clid=903)) == 1


def test_engine_rejects_unknown_relation():
    left, right = make_sources()
    bad = MatchRule(
        "m", "nope", "clients", (MatchCriterion("a", "b"),), ("a",), ("b",)
    )
    with pytest.raises(SourceError):
        MatchingEngine([bad], left, right)


def test_engine_soundex_rule():
    left, right = make_sources()
    rule = MatchRule(
        "fuzzy",
        "customers",
        "clients",
        (MatchCriterion("name", "fullname", soundex),),
        ("cid",),
        ("clid",),
    )
    engine = MatchingEngine([rule], left, right)
    # Ada/ada and Grace/GRACE match by soundex of the first name.
    table = engine.match_table("fuzzy")
    assert table.contains(row(l_cid=1, r_clid=901))
    assert table.contains(row(l_cid=2, r_clid=902))
