"""Integration: a match table as a mediator source relation.

The match table produced by the engine is an ordinary announcing source;
a VDP joins the two CRMs *through* it, and the whole pipeline (commit →
match maintenance → announcement → IUP) keeps the unified view exact.
"""

import pytest

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.correctness import assert_view_correct
from repro.matching import MatchCriterion, MatchRule, MatchingEngine, casefold_trim, digits_only
from repro.relalg import make_schema, row
from repro.sources import MemorySource

CUSTOMERS = make_schema("customers", ["cid", "name", "phone"], key=["cid"])
CLIENTS = make_schema("clients", ["clid", "fullname", "tel"], key=["clid"])


def build_stack():
    left = MemorySource(
        "crm_a",
        [CUSTOMERS],
        initial={
            "customers": [
                (1, "Ada Lovelace", "3035550101"),
                (2, "Grace Hopper", "3035550202"),
            ]
        },
    )
    right = MemorySource(
        "crm_b",
        [CLIENTS],
        initial={
            "clients": [
                (901, "ADA LOVELACE", "3035550101"),
                (903, "Edsger Dijkstra", "3035550404"),
            ]
        },
    )
    rule = MatchRule(
        "cust_match",
        "customers",
        "clients",
        (
            MatchCriterion("name", "fullname", casefold_trim),
            MatchCriterion("phone", "tel", digits_only),
        ),
        left_keys=("cid",),
        right_keys=("clid",),
    )
    engine = MatchingEngine([rule], left, right)

    vdp = build_vdp(
        source_schemas={
            "customers": CUSTOMERS,
            "clients": CLIENTS,
            "cust_match": rule.schema(),
        },
        source_of={
            "customers": "crm_a",
            "clients": "crm_b",
            "cust_match": "matcher",
        },
        views={
            "cust_p": "customers",
            "cli_p": "clients",
            "match_p": "cust_match",
            # One row per matched entity, with both systems' ids and names.
            "unified": (
                "project[cid, clid, name, fullname]"
                "((cust_p join[cid = l_cid] match_p) join[r_clid = clid] cli_p)"
            ),
        },
        exports=["unified"],
    )
    mediator = SquirrelMediator(
        annotate(vdp, {}),
        {"crm_a": left, "crm_b": right, "matcher": engine.source},
    )
    mediator.initialize()
    return mediator, left, right, engine


def test_unified_view_over_match_table():
    mediator, left, right, engine = build_stack()
    unified = mediator.query_relation("unified")
    assert unified.to_sorted_list() == [((1, 901, "Ada Lovelace", "ADA LOVELACE"), 1)]
    assert_view_correct(mediator)


def test_new_match_flows_through_to_the_view():
    mediator, left, right, engine = build_stack()
    # A new client for Grace arrives in the second CRM...
    right.insert("clients", clid=902, fullname="grace hopper", tel="3035550202")
    # ...the engine updates the match table; one refresh propagates BOTH the
    # client row and the match row into the unified view.
    mediator.refresh()
    assert_view_correct(mediator)
    unified = mediator.query_relation("unified")
    assert unified.contains(
        row(cid=2, clid=902, name="Grace Hopper", fullname="grace hopper")
    )


def test_retracted_match_disappears_from_view():
    mediator, left, right, engine = build_stack()
    left.update(
        "customers",
        {"cid": 1, "name": "Ada Lovelace", "phone": "3035550101"},
        {"cid": 1, "name": "Ada Lovelace", "phone": "9999999999"},
    )
    mediator.refresh()
    assert_view_correct(mediator)
    assert mediator.query_relation("unified").is_empty()
