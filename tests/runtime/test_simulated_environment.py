"""Simulation-level tests: Theorem 7.1 (consistency) and 7.2 (freshness).

Run the Figure 1 mediator inside the discrete-event environment with real
announcement/communication delays and verify the recorded trace against the
Section 3 checkers — the mechanized versions of the paper's two theorems.
"""

import random

import pytest

from repro.core import annotate
from repro.correctness import check_consistency, check_freshness, view_function_from_vdp
from repro.deltas import SetDelta
from repro.errors import SimulationError
from repro.relalg import row
from repro.sim import EnvironmentDelays
from repro.runtime import SimulatedEnvironment
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp


def build_env(example="ex21", ann=0.5, comm=0.3, hold=1.0, seed=7, **kwargs):
    delays = EnvironmentDelays.uniform(
        ["db1", "db2"],
        ann_delay=ann,
        comm_delay=comm,
        u_hold_delay_med=hold,
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS[example])
    sources = figure1_sources(r_rows=30, s_rows=20, seed=seed)
    return SimulatedEnvironment(annotated, sources, delays, **kwargs)


def schedule_workload(env, rng, n_updates=6, n_queries=5, horizon=20.0):
    # Pick, from the deterministic initial data, S rows whose removal and R
    # values whose insertion definitely change T.
    s_rows = list(env.sources["db2"].relation("S").rows())
    r_rows = list(env.sources["db1"].relation("R").rows())
    joinable_s1 = sorted(r["s1"] for r in s_rows if r["s3"] < 50)
    active_r2 = {r["r2"] for r in r_rows if r["r4"] == 100}
    deletable_s = [r for r in s_rows if r["s3"] < 50 and r["s1"] in active_r2]

    update_times = []
    for k in range(n_updates):
        t = rng.uniform(0.5, horizon - 5)
        update_times.append(t)
        delta = SetDelta()
        if k % 2 == 0 or not deletable_s:
            delta.insert(
                "R",
                row(
                    r1=1000 + k,
                    r2=joinable_s1[k % len(joinable_s1)],
                    r3=rng.randrange(1000),
                    r4=100,
                ),
            )
            env.schedule_transaction(t, "db1", delta)
        else:
            delta.delete("S", deletable_s.pop())
            env.schedule_transaction(t, "db2", delta)
    for i in range(n_queries):
        # Query shortly after an update, inside the propagation window.
        base = update_times[i % len(update_times)]
        env.schedule_query(min(horizon - 0.5, base + rng.uniform(0.2, 1.2)))


@pytest.mark.parametrize("example", ["ex21", "ex22", "ex23"])
def test_theorem_71_consistency_in_simulation(example):
    env = build_env(example)
    rng = random.Random(17)
    schedule_workload(env, rng)
    env.run_until(25.0)

    view_fn = view_function_from_vdp(env.mediator.vdp)
    verdict = check_consistency(env.trace, view_fn)
    assert verdict.consistent, verdict.failures
    assert verdict.pseudo_consistent


def test_theorem_72_freshness_in_simulation():
    env = build_env("ex21", ann=0.5, comm=0.3, hold=1.0)
    rng = random.Random(23)
    schedule_workload(env, rng)
    env.run_until(25.0)

    view_fn = view_function_from_vdp(env.mediator.vdp)
    kinds = env.mediator.contributor_kinds
    materialized = [s for s, k in kinds.items() if k.value == "materialized-contributor"]
    hybrid = [s for s, k in kinds.items() if k.value == "hybrid-contributor"]
    virtual = [s for s, k in kinds.items() if k.value == "virtual-contributor"]
    bound = env.delays.freshness_bound(materialized, hybrid, virtual)

    report = check_freshness(env.trace, view_fn, bound)
    assert report.within_bound, report.violations
    # The bound is meaningful: achieved staleness is positive somewhere.
    assert any(v > 0 for v in report.worst.values())


def test_staleness_grows_with_hold_delay():
    """Shape check: a slower flush policy yields staler views."""
    worst = {}
    for hold in (0.5, 4.0):
        env = build_env("ex21", ann=0.1, comm=0.1, hold=hold, seed=5)
        rng = random.Random(31)
        schedule_workload(env, rng, n_updates=8, n_queries=6)
        env.run_until(30.0)
        view_fn = view_function_from_vdp(env.mediator.vdp)
        report = check_freshness(
            env.trace, view_fn, env.delays.freshness_bound(["db1", "db2"], [], [])
        )
        assert report.within_bound, report.violations
        worst[hold] = max(report.worst.values())
    assert worst[4.0] >= worst[0.5]


def test_announcements_batch_within_ann_delay():
    env = build_env("ex21", ann=2.0, comm=0.1, hold=1.0)
    db1 = env.sources["db1"]

    def commit(k):
        return lambda: db1.insert("R", r1=5000 + k, r2=1, r3=1, r4=100)

    # Three commits inside one announcement window -> one message.
    env.schedule_action(1.0, commit(0))
    env.schedule_action(1.5, commit(1))
    env.schedule_action(2.5, commit(2))
    env.run_until(10.0)
    assert env._channels["db1"].messages_sent == 1
    # All three rows made it into the view anyway.
    t = env.mediator.query_relation("T")
    assert env.mediator.store.repo("T").cardinality() >= 0  # smoke
    from repro.correctness import assert_view_correct

    assert_view_correct(env.mediator)


def _eca_scenario(eca_enabled):
    """An in-flight R modification racing an S-triggered poll (Example 2.2
    setting: R' virtual, so an S update polls R).

    db1 announces slowly (its modification stays in flight) while db2
    announces fast; without compensation the poll's fresh answer mixes the
    new r3 into rows derived from ΔS while materialized rows keep the old
    r3 — no single R state matches, and the follow-up ΔR application can
    even underflow T's bag.
    """
    from repro.sim import DelayProfile

    delays = EnvironmentDelays(
        {
            "db1": DelayProfile(ann_delay=5.0, comm_delay=0.1, q_proc_delay=0.0),
            "db2": DelayProfile(ann_delay=0.1, comm_delay=0.1, q_proc_delay=0.0),
        },
        u_hold_delay_med=0.5,
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex22"])
    sources = figure1_sources(r_rows=30, s_rows=20, seed=7)
    env = SimulatedEnvironment(annotated, sources, delays, eca_enabled=eca_enabled)

    # A joining R row from the initial data (r4=100 and r2 hits a live S key).
    s_keys = {r["s1"] for r in sources["db2"].relation("S").rows() if r["s3"] < 50}
    target = next(
        r
        for r in sources["db1"].relation("R").rows()
        if r["r4"] == 100 and r["r2"] in s_keys
    )
    modified = dict(target)
    modified["r3"] = 999_999

    d_r = SetDelta()
    d_r.delete("R", target)
    d_r.insert("R", row(**modified))
    env.schedule_transaction(1.0, "db1", d_r)  # announced only at t=6.0

    # Replace the S row the target joins with (same key, new payload): the
    # S-side rule then both deletes and re-inserts T rows for the target's
    # r1, reading R through a poll.
    s_row = next(
        r for r in sources["db2"].relation("S").rows() if r["s1"] == target["r2"]
    )
    d_s = SetDelta()
    d_s.delete("S", s_row)
    d_s.insert("S", row(s1=s_row["s1"], s2=777_777, s3=1))
    env.schedule_transaction(1.2, "db2", d_s)
    return env


def test_eca_disabled_breaks_consistency_under_inflight_updates():
    """Ablation: without eager compensation the environment misbehaves —
    either the trace stops being consistent or maintenance corrupts/crashes."""
    env = _eca_scenario(eca_enabled=False)
    broke = False
    try:
        env.schedule_query(1.8)  # between the poll and ΔR's arrival
        env.run_until(10.0)
        verdict = check_consistency(env.trace, view_function_from_vdp(env.mediator.vdp))
        broke = not verdict.consistent
    except Exception:
        broke = True
    assert broke, "disabling ECA never produced an inconsistency"


def test_eca_enabled_keeps_same_scenario_consistent():
    env = _eca_scenario(eca_enabled=True)
    env.schedule_query(1.8)
    env.run_until(10.0)
    verdict = check_consistency(env.trace, view_function_from_vdp(env.mediator.vdp))
    assert verdict.consistent, verdict.failures
    assert env.mediator.vap.stats.compensations > 0


def test_flush_period_must_be_positive():
    delays = EnvironmentDelays.uniform(["db1", "db2"])  # hold = 0
    annotated = annotate(figure1_vdp(), {})
    with pytest.raises(SimulationError):
        SimulatedEnvironment(annotated, figure1_sources(), delays)
