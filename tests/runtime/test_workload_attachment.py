"""Tests for Poisson workload attachment to simulated environments."""

import random

import pytest

from repro.core import annotate
from repro.correctness import assert_view_correct, check_consistency, view_function_from_vdp
from repro.errors import SimulationError
from repro.runtime import SimulatedEnvironment
from repro.sim import EnvironmentDelays
from repro.workloads import (
    FIGURE1_ANNOTATIONS,
    UpdateStream,
    choice_of,
    figure1_sources,
    figure1_vdp,
    uniform_int,
)


def build_env():
    delays = EnvironmentDelays.uniform(
        ["db1", "db2"], ann_delay=0.3, comm_delay=0.1, u_hold_delay_med=1.0
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    sources = figure1_sources(r_rows=30, s_rows=20, seed=44)
    env = SimulatedEnvironment(annotated, sources, delays)
    stream = UpdateStream(
        sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 20),
            "r3": uniform_int(0, 100),
            "r4": choice_of([100, 200]),
        },
        rng=random.Random(44),
    )
    return env, stream


def test_attached_workload_runs_and_stays_consistent():
    env, stream = build_env()
    n_updates = env.attach_update_stream(stream, rate=0.8, until=20.0, rng_seed=3)
    n_queries = env.attach_query_load(rate=0.3, until=20.0, rng_seed=4)
    assert n_updates > 5
    assert n_queries >= 2
    env.run_until(25.0)
    assert stream.steps == n_updates
    assert_view_correct(env.mediator)
    verdict = check_consistency(env.trace, view_function_from_vdp(env.mediator.vdp))
    assert verdict.consistent, verdict.failures


def test_attachment_respects_horizon():
    env, stream = build_env()
    env.attach_update_stream(stream, rate=2.0, until=5.0, rng_seed=5)
    env.run_until(30.0)
    # All transactions happened strictly before the horizon.
    assert all(t <= 5.0 for t, _ in [(r.time, r) for r in env.trace.source_history("db1")])


def test_attachment_validates_rates():
    env, stream = build_env()
    with pytest.raises(SimulationError):
        env.attach_update_stream(stream, rate=0, until=5.0)
    with pytest.raises(SimulationError):
        env.attach_query_load(rate=-1, until=5.0)
