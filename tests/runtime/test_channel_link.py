"""Unit tests for the channel-aware source link."""

from repro.deltas import SetDelta
from repro.relalg import make_schema, row, scan
from repro.runtime import ChannelLink
from repro.sim import Channel, Simulator
from repro.sources import MemorySource

R = make_schema("R", ["a", "b"], key=["a"])


def build(announces=True):
    sim = Simulator()
    source = MemorySource("db", [R], initial={"R": [(1, 10)]})
    delivered = []
    channel = Channel(sim, delay=5.0, deliver=lambda msg, st: delivered.append(msg))
    link = ChannelLink(source, channel, announces=announces)
    return sim, source, channel, link, delivered


def test_poll_sends_pending_and_expedites_in_flight():
    sim, source, channel, link, delivered = build()

    # An announcement already travelling the channel...
    source.insert("R", a=2, b=20)
    channel.send(source.take_announcement())
    # ...and a fresh commit whose announcement has not been sent yet.
    source.insert("R", a=3, b=30)

    def poll():
        answers = link.poll_many({"Q": scan("R")})
        # Everything the source produced is delivered before the answer is
        # used, and the answer reflects the current state.
        assert len(delivered) == 2
        assert answers["Q"].cardinality() == 3

    sim.schedule(1.0, poll)
    sim.run_until(2.0)
    # The expedited in-flight message is not delivered a second time later.
    sim.run_until(100.0)
    assert len(delivered) == 2
    assert channel.messages_delivered == 2


def test_non_announcing_link_drops_pending():
    sim, source, channel, link, delivered = build(announces=False)
    source.insert("R", a=2, b=20)

    def poll():
        answers = link.poll_many({"Q": scan("R")})
        assert answers["Q"].cardinality() == 2

    sim.schedule(1.0, poll)
    sim.run_until(10.0)
    assert delivered == []
    assert not source.has_pending_announcement()


def test_poll_counters():
    sim, source, channel, link, _ = build()

    def poll():
        link.poll_many({"Q1": scan("R"), "Q2": scan("R")})

    sim.schedule(1.0, poll)
    sim.run_until(2.0)
    assert link.poll_count == 1
    assert link.polled_rows == 2
    assert source.query_count == 2
