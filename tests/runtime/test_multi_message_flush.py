"""Regression tests: several in-order messages from one source per flush.

Found by code review: folding queued messages with *smash* turns an
insert-then-delete message pair into a spurious net deletion whose
bag-projection corrupts (or underflows) leaf-parent multiplicities.  The
queue and the compensation path must fold with cancellation instead.
"""

import pytest

from repro.core import annotate
from repro.correctness import (
    assert_view_correct,
    check_consistency,
    view_function_from_vdp,
)
from repro.deltas import SetDelta
from repro.relalg import row
from repro.runtime import SimulatedEnvironment
from repro.sim import EnvironmentDelays
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp


def build_env(example, hold=5.0):
    delays = EnvironmentDelays.uniform(
        ["db1", "db2"], ann_delay=0.1, comm_delay=0.1, u_hold_delay_med=hold
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS[example])
    sources = figure1_sources(r_rows=10, s_rows=10, seed=1)
    return SimulatedEnvironment(annotated, sources, delays), sources


def joining_key(sources):
    return sorted(r["s1"] for r in sources["db2"].relation("S").rows() if r["s3"] < 50)[0]


def schedule_insert_then_delete(env, sources, t0=1.0, t1=2.0):
    key = joining_key(sources)
    target = row(r1=5000, r2=key, r3=1, r4=100)
    d1 = SetDelta()
    d1.insert("R", target)
    d2 = SetDelta()
    d2.delete("R", target)
    env.schedule_transaction(t0, "db1", d1)
    env.schedule_transaction(t1, "db1", d2)


@pytest.mark.parametrize("example", ["ex21", "ex22", "ex23"])
def test_insert_then_delete_across_messages_in_one_flush(example):
    env, sources = build_env(example)
    schedule_insert_then_delete(env, sources)
    env.run_until(12.0)  # one flush (t=5) sees both messages
    assert_view_correct(env.mediator)
    verdict = check_consistency(env.trace, view_function_from_vdp(env.mediator.vdp))
    assert verdict.consistent, verdict.failures


def test_delete_then_reinsert_across_messages():
    env, sources = build_env("ex21")
    key = joining_key(sources)
    existing = next(
        r
        for r in sources["db1"].relation("R").rows()
        if r["r4"] == 100 and r["r2"] == key
    ) if any(
        r["r4"] == 100 and r["r2"] == key for r in sources["db1"].relation("R").rows()
    ) else None
    if existing is None:
        # Create one first, flush it in, then run the cycle.
        sources["db1"].insert("R", r1=7000, r2=key, r3=9, r4=100)
        existing = row(r1=7000, r2=key, r3=9, r4=100)
        env.mediator.refresh()
    d1 = SetDelta()
    d1.delete("R", existing)
    d2 = SetDelta()
    d2.insert("R", existing)
    env.schedule_transaction(1.0, "db1", d1)
    env.schedule_transaction(2.0, "db1", d2)
    env.run_until(12.0)
    assert_view_correct(env.mediator)


def test_compensation_with_multiple_inflight_messages():
    """ex22: an S-update triggers a poll of R while TWO R-messages (insert
    then delete of the same row) are queued — compensation must fold them
    with cancellation too."""
    env, sources = build_env("ex22", hold=5.0)
    schedule_insert_then_delete(env, sources, t0=1.0, t1=2.0)
    d_s = SetDelta()
    d_s.insert("S", row(s1=800, s2=1, s3=5))
    env.schedule_transaction(3.0, "db2", d_s)
    env.run_until(12.0)
    assert_view_correct(env.mediator)
    verdict = check_consistency(env.trace, view_function_from_vdp(env.mediator.vdp))
    assert verdict.consistent, verdict.failures
