"""Experiment X4 — the §6.2 source-side filtering optimization.

"A straightforward optimization that can be applied in some cases is to
'filter' the incremental updates at the source databases."

Regenerated table: bytes-on-the-wire proxy (messages and atoms announced)
and mediator-side work, with and without source-side prefiltering, under
an update mix where most updates fail the leaf-parent selections.
Expected shape: identical final view, fewer transferred atoms/messages and
less mediator work with prefiltering; the saving grows with the fraction
of irrelevant updates.
"""

import pytest

from repro.correctness import assert_view_correct
from repro.workloads import figure1_mediator

from _util import report
from repro.bench import shape_line

IRRELEVANT_FRACTIONS = [0.0, 0.5, 0.9]
UPDATES = 60


def drive(prefilter, irrelevant_fraction, seed=81):
    mediator, sources = figure1_mediator("ex21", seed=seed)
    if prefilter:
        mediator.install_source_prefilters()
    mediator.reset_stats()
    announced_atoms = 0
    messages = 0
    cutoff = int(UPDATES * (1 - irrelevant_fraction))
    for k in range(UPDATES):
        relevant = k < cutoff
        sources["db1"].insert(
            "R",
            r1=93_000 + k,
            r2=k % 50,
            r3=k,
            r4=100 if relevant else 200,  # r4 != 100 fails R_p's selection
        )
        announcement = sources["db1"].take_announcement()
        if announcement is not None:
            messages += 1
            announced_atoms += announcement.atom_count()
            mediator.enqueue_update("db1", announcement)
        mediator.run_update_transaction()
    assert_view_correct(mediator)
    return {
        "messages": messages,
        "atoms": announced_atoms,
        "rules": mediator.iup.stats.rules_fired,
        "t": mediator.query_relation("T"),
    }


def test_prefilter_transfer_savings():
    rows = []
    savings_grow = []
    for fraction in IRRELEVANT_FRACTIONS:
        plain = drive(False, fraction)
        filtered = drive(True, fraction)
        assert plain["t"] == filtered["t"], "prefiltering changed the view!"
        saving = 1 - (filtered["atoms"] / plain["atoms"]) if plain["atoms"] else 0.0
        savings_grow.append(saving)
        rows.append(
            [
                f"{fraction:.0%}",
                plain["messages"],
                filtered["messages"],
                plain["atoms"],
                filtered["atoms"],
                f"{saving:.0%}",
                plain["rules"],
                filtered["rules"],
            ]
        )
    shapes = [
        shape_line(
            "prefiltering never changes the integrated view",
            True,
        ),
        shape_line(
            "transferred atoms shrink as the irrelevant fraction grows",
            savings_grow == sorted(savings_grow),
            f"savings {['%.0f%%' % (s * 100) for s in savings_grow]}",
        ),
        shape_line(
            "mediator rule firings shrink along with the transfer",
            rows[-1][7] <= rows[-1][6],
        ),
    ]
    report(
        "X4_prefilter",
        f"X4 (§6.2 optimization): source-side prefiltering, {UPDATES} R-updates",
        ["irrelevant", "msgs plain", "msgs filt", "atoms plain", "atoms filt",
         "atom saving", "rules plain", "rules filt"],
        rows,
        shapes=shapes,
    )
    assert savings_grow[-1] > 0.5


@pytest.mark.parametrize("prefilter", [False, True])
def test_prefilter_round_benchmark(benchmark, prefilter):
    mediator, sources = figure1_mediator("ex21", seed=82)
    if prefilter:
        mediator.install_source_prefilters()
    counter = [0]

    def setup():
        k = counter[0]
        counter[0] += 1
        # 9 in 10 updates fail the selection.
        sources["db1"].insert(
            "R", r1=94_000 + k, r2=k % 50, r3=k, r4=100 if k % 10 == 0 else 200
        )
        mediator.collect_announcements()
        return (), {}

    benchmark.pedantic(mediator.run_update_transaction, setup=setup, rounds=30)
