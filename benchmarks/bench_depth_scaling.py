"""Experiment X5 — scaling with VDP depth.

Section 2: "Although the examples used a very simple VDP, in general VDPs
can be of any size."  This experiment quantifies that generality: join
chains of growing depth, with an update entering at the *bottom* source and
propagating through every level.

Expected shape: per-update propagation cost grows roughly linearly in the
chain depth (one rule firing and one repository application per level) —
not exponentially — while a full recomputation re-joins the entire chain
every time.
"""

import pytest

from repro.correctness import assert_view_correct, recompute
from repro.workloads import chain_mediator

from _util import report, time_callable
from repro.bench import shape_line

DEPTHS = [1, 2, 4, 8]
ROWS = 40


def one_update(mediator, sources, key):
    sources["db0"].insert("T0", k0=key, v0=key % ROWS)
    mediator.collect_announcements()
    return lambda: mediator.run_update_transaction()


def test_depth_scaling():
    rows = []
    per_depth_cost = {}
    for depth in DEPTHS:
        mediator, sources = chain_mediator(depth, rows_per_source=ROWS, seed=5)
        export = f"N{depth}"

        # Warm, then time a batch of bottom-level updates.
        total = 0.0
        fired = 0
        for k in range(10):
            run = one_update(mediator, sources, 10_000 + k)
            total += time_callable(run, repeats=1)
        fired = mediator.iup.stats.rules_fired
        assert_view_correct(mediator)

        recompute_ms = time_callable(
            lambda: recompute(mediator.vdp, sources, export), repeats=2
        ) * 1e3
        per_update_ms = total / 10 * 1e3
        per_depth_cost[depth] = per_update_ms
        rows.append(
            [
                depth,
                len(mediator.vdp.nodes),
                f"{per_update_ms:.2f}",
                fired,
                f"{recompute_ms:.2f}",
            ]
        )

    growth = per_depth_cost[DEPTHS[-1]] / max(per_depth_cost[DEPTHS[0]], 1e-9)
    depth_ratio = DEPTHS[-1] / DEPTHS[0]
    shapes = [
        shape_line(
            "propagation cost grows with depth but stays near-linear "
            "(no blow-up through intermediate nodes)",
            growth < depth_ratio * 6,
            f"wall-cost growth bounded by 6x over {depth_ratio:.0f}x depth",
        ),
        shape_line(
            "incremental maintenance stays exact at every depth",
            True,
        ),
    ]
    report(
        "X5_depth_scaling",
        f"X5 (Section 2 generality): join-chain depth scaling, {ROWS} rows/source",
        ["depth", "VDP nodes", "ms/update", "rules fired (10 updates)", "recompute ms"],
        rows,
        shapes=shapes,
    )


@pytest.mark.parametrize("depth", [2, 6])
def test_depth_update_benchmark(benchmark, depth):
    mediator, sources = chain_mediator(depth, rows_per_source=ROWS, seed=6)
    counter = [0]

    def setup():
        counter[0] += 1
        sources["db0"].insert("T0", k0=20_000 + counter[0], v0=counter[0] % ROWS)
        mediator.collect_announcements()
        return (), {}

    benchmark.pedantic(mediator.run_update_transaction, setup=setup, rounds=20)
