"""Experiment SK — attach backfill cost: joining source's data, not federation size.

The Section 8 dynamicity claim for the soak suite: when a source joins a
running federation, the backfill touches only the subtree the joiner
contributes, so its cost is a function of the *joining source's* data and
join fan-in — never of how many other sources happen to be federated.

Two sweeps over the seeded federation generator pin that shape:

* **federation sweep** — the same joiner (same seed-derived data, no join
  partners, so its payload is identical everywhere) attaches to
  federations of 50 / 100 / 200 sources: backfilled rows and nodes must
  be *constant* across sizes;
* **volume sweep** — at a fixed 50-source federation, the joiner commits
  0 / 32 / 128 extra rows while detached before attaching: backfilled
  rows must grow exactly with the extra volume.

All counters are deterministic (the generator draws every value from the
federation seed), so ``BENCH_soak.json`` at the repo root is an exact
regression baseline:
``python benchmarks/bench_soak.py --check BENCH_soak.json``.
Wall time appears in the printed table only.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.generator import generate_mediator, make_federation, make_sources
from repro.generator.federation import KEY_DOMAIN

try:
    from _util import BENCH_SEED, report, time_callable
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import BENCH_SEED, report, time_callable

FEDERATION_SIZES = [50, 100, 200]
EXTRA_ROWS = [0, 32, 128]
VOLUME_FEDERATION = 50
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_soak.json"


def pick_isolated_joiner() -> str:
    """A non-bulk source with no join partners even in the largest
    federation.

    Per-source draws are keyed by ``(seed, name)``, so the first
    ``min(FEDERATION_SIZES)`` sources — and every join whose endpoints
    fall among them — are identical across all sizes; a partner-free
    source among them brings a byte-identical attach payload to each
    federation, making the sweep a pure federation-size comparison.
    """
    largest = make_federation(max(FEDERATION_SIZES), seed=BENCH_SEED)
    for s in largest.sources:
        if s.index >= min(FEDERATION_SIZES):
            break
        if s.tier != "bulk" and not largest.joins_of(s.name, largest.names):
            return s.name
    raise AssertionError("no isolated non-bulk source in the first block")


def attach_once(n_sources: int, joiner: str, extra_rows: int = 0) -> dict:
    """Build an ``n``-source federation without ``joiner``, optionally
    commit extra rows at the absent source, then attach it."""
    fed = make_federation(n_sources, seed=BENCH_SEED)
    members = [name for name in fed.names if name != joiner]
    sources = make_sources(fed.spec_text_for(members), fed.initial_data(members))
    mediator = generate_mediator(fed.spec_text_for(members), sources)

    joining = make_sources(fed.spec_text_for([joiner]), fed.initial_data([joiner]))[
        joiner
    ]
    k, a, b = fed.attributes(joiner)
    for i in range(extra_rows):
        joining.insert(
            fed.relation(joiner), **{k: KEY_DOMAIN + i, a: i % KEY_DOMAIN, b: i}
        )
    views, annotations = fed.attach_payload(joiner, members)
    result = mediator.attach_source(joining, views, annotations)
    return {
        "federation": n_sources,
        "joiner_rows": fed.source(joiner).rows + extra_rows,
        "extra_rows": extra_rows,
        "new_nodes": len(result.new_nodes),
        "backfill_nodes": len(result.backfill_nodes),
        "backfill_rows": result.backfill_rows,
    }


def collect() -> dict:
    joiner = pick_isolated_joiner()
    return {
        "joiner": joiner,
        "federation_sweep": [attach_once(n, joiner) for n in FEDERATION_SIZES],
        "volume_sweep": [
            attach_once(VOLUME_FEDERATION, joiner, extra_rows=extra)
            for extra in EXTRA_ROWS
        ],
    }


def render(results, times=None) -> None:
    from repro.bench import shape_line

    sweep = results["federation_sweep"]
    volume = results["volume_sweep"]
    rows = []
    for i, r in enumerate(sweep):
        rows.append(
            [
                r["federation"],
                r["joiner_rows"],
                r["new_nodes"],
                r["backfill_nodes"],
                r["backfill_rows"],
                f"{times[i] * 1e3:.1f}" if times else "-",
            ]
        )
    for r in volume:
        rows.append(
            [
                f"{r['federation']} (+{r['extra_rows']} rows)",
                r["joiner_rows"],
                r["new_nodes"],
                r["backfill_nodes"],
                r["backfill_rows"],
                "-",
            ]
        )
    constant = len({(r["backfill_rows"], r["backfill_nodes"]) for r in sweep}) == 1
    base = volume[0]["backfill_rows"]
    proportional = all(
        r["backfill_rows"] == base + r["extra_rows"] for r in volume
    )
    report(
        "SK_attach_backfill",
        f"SK: attach backfill cost (joiner {results['joiner']!r})",
        [
            "federation",
            "joiner rows",
            "new nodes",
            "backfill nodes",
            "backfill rows",
            "wall ms (build+attach)",
        ],
        rows,
        shapes=[
            shape_line(
                "backfill is constant across federation sizes", constant
            ),
            shape_line(
                "backfill grows exactly with the joiner's data", proportional
            ),
        ],
        note="counters are deterministic; JSON baseline: BENCH_soak.json",
    )


def test_soak_backfill_baseline():
    """Pytest entry point: regenerate the sweeps and pin the shape claims."""
    results = collect()
    render(results)
    sweep = results["federation_sweep"]
    assert len({r["backfill_rows"] for r in sweep}) == 1
    assert len({r["backfill_nodes"] for r in sweep}) == 1
    volume = results["volume_sweep"]
    base = volume[0]["backfill_rows"]
    for r in volume:
        assert r["backfill_rows"] == base + r["extra_rows"]
    baseline = DEFAULT_BASELINE
    if baseline.exists():
        assert json.loads(baseline.read_text())["results"] == results, (
            "deterministic counters diverged from BENCH_soak.json — "
            "regenerate with: python benchmarks/bench_soak.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    args = parser.parse_args(argv)

    joiner = pick_isolated_joiner()
    times = [
        time_callable(lambda n=n: attach_once(n, joiner), repeats=1)
        for n in FEDERATION_SIZES
    ]
    results = collect()
    render(results, times=times)

    payload = {
        "experiment": "SK_attach_backfill",
        "workload": {
            "federation_sizes": FEDERATION_SIZES,
            "extra_rows": EXTRA_ROWS,
            "volume_federation": VOLUME_FEDERATION,
            "seed": BENCH_SEED,
        },
        "results": results,
    }
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != results:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(results, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
