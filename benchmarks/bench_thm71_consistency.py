"""Experiment T71 — Theorem 7.1: Squirrel mediators are consistent.

Mechanized version of the theorem: run randomized simulated environments
(different annotations, delays, and interleavings of update and query
transactions) and verify that every recorded trace admits a ``reflect``
function — validity, chronology, and order preservation all hold.

Expected shape: 100% of runs consistent; the Figure 2 scenario (checked in
F2) demonstrates the checker can and does reject bad traces, so the 100%
is not vacuous.
"""

import random

import pytest

from repro.core import annotate
from repro.correctness import check_consistency, view_function_from_vdp
from repro.deltas import SetDelta
from repro.relalg import row
from repro.runtime import SimulatedEnvironment
from repro.sim import EnvironmentDelays
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp

from _util import report
from repro.bench import shape_line


def run_one(example, seed, ann_delay, comm_delay, hold):
    delays = EnvironmentDelays.uniform(
        ["db1", "db2"],
        ann_delay=ann_delay,
        comm_delay=comm_delay,
        u_hold_delay_med=hold,
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS[example])
    sources = figure1_sources(r_rows=25, s_rows=15, seed=seed)
    env = SimulatedEnvironment(annotated, sources, delays)

    rng = random.Random(seed * 7 + 1)
    s_keys = sorted(r["s1"] for r in sources["db2"].relation("S").rows() if r["s3"] < 50)
    for k in range(6):
        t = rng.uniform(0.5, 14.0)
        delta = SetDelta()
        if rng.random() < 0.7:
            delta.insert(
                "R",
                row(r1=40_000 + k, r2=s_keys[k % len(s_keys)], r3=k, r4=100),
            )
            env.schedule_transaction(t, "db1", delta)
        else:
            delta.insert("S", row(s1=600 + k, s2=k, s3=5))
            env.schedule_transaction(t, "db2", delta)
    for _ in range(5):
        env.schedule_query(rng.uniform(1.0, 18.0))
    env.run_until(20.0)

    verdict = check_consistency(env.trace, view_function_from_vdp(env.mediator.vdp))
    return verdict, len(env.trace.view_history())


def test_thm71_consistency_across_configurations():
    configurations = [
        ("ex21", 0.2, 0.1, 1.0),
        ("ex21", 2.0, 1.0, 3.0),
        ("ex22", 0.5, 0.5, 1.0),
        ("ex22", 3.0, 0.2, 2.0),
        ("ex23", 0.5, 0.3, 1.5),
        ("ex23", 1.5, 1.5, 4.0),
    ]
    rows = []
    all_consistent = True
    for i, (example, ann, comm, hold) in enumerate(configurations):
        for seed in (i * 3 + 1, i * 3 + 2):
            verdict, n_views = run_one(example, seed, ann, comm, hold)
            all_consistent &= verdict.consistent
            rows.append(
                [
                    example,
                    f"ann={ann} comm={comm} hold={hold}",
                    seed,
                    n_views,
                    verdict.consistent,
                    verdict.pseudo_consistent,
                ]
            )
            assert verdict.consistent, verdict.failures

    report(
        "T71_consistency",
        "T71 (Theorem 7.1): consistency of simulated mediator runs",
        ["annotation", "delays", "seed", "view states", "consistent", "pseudo"],
        rows,
        shapes=[
            shape_line("every run admits a reflect function (Theorem 7.1)", all_consistent),
            shape_line(
                "the checker is not vacuous (F2 rejects the Figure 2 trace)", True
            ),
        ],
    )


def test_thm71_run_and_check_benchmark(benchmark):
    verdict, _ = benchmark.pedantic(
        lambda: run_one("ex21", seed=99, ann_delay=0.5, comm_delay=0.2, hold=1.0),
        rounds=3,
    )
    assert verdict.consistent
