"""Experiment X2 — ablation of the Eager Compensation Algorithm (§6.3).

The ECA rewinds poll answers past in-flight/queued updates so virtual data
matches the state the materialized data reflects.  This ablation re-runs
the deterministic race of the runtime tests (an R modification in flight
while an S update forces a poll of R) with compensation on and off.

Expected shape: with ECA the trace is consistent and compensations fire;
without it the environment either records an inconsistent view state or
corrupts maintenance outright (bag underflow).
"""

import pytest

from repro.correctness import check_consistency, view_function_from_vdp

from _util import report
from repro.bench import shape_line

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests" / "runtime"))
from test_simulated_environment import _eca_scenario  # noqa: E402


def run_scenario(eca_enabled):
    env = _eca_scenario(eca_enabled=eca_enabled)
    outcome = {"crashed": False, "consistent": None, "compensations": 0}
    try:
        env.schedule_query(1.8)
        env.run_until(10.0)
        verdict = check_consistency(env.trace, view_function_from_vdp(env.mediator.vdp))
        outcome["consistent"] = verdict.consistent
    except Exception as exc:  # corruption surfaces as DeltaError/MediatorError
        outcome["crashed"] = True
        outcome["error"] = type(exc).__name__
    outcome["compensations"] = env.mediator.vap.stats.compensations
    return outcome


def test_eca_ablation():
    with_eca = run_scenario(True)
    without_eca = run_scenario(False)

    rows = [
        [
            "ECA on",
            with_eca["compensations"],
            with_eca["consistent"],
            with_eca["crashed"],
        ],
        [
            "ECA off",
            without_eca["compensations"],
            without_eca["consistent"],
            without_eca["crashed"],
        ],
    ]
    broke = without_eca["crashed"] or without_eca["consistent"] is False
    shapes = [
        shape_line(
            "with compensation the race stays consistent",
            bool(with_eca["consistent"]) and not with_eca["crashed"],
        ),
        shape_line(
            "without compensation the same race breaks the environment",
            broke,
            without_eca.get("error", "inconsistent trace"),
        ),
        shape_line(
            "compensation actually fired in the ECA-on run",
            with_eca["compensations"] > 0,
        ),
    ]
    report(
        "X2_eca_ablation",
        "X2 (§6.3 ECA ablation): in-flight R modification racing an S-triggered poll",
        ["configuration", "compensations", "trace consistent", "maintenance crashed"],
        rows,
        shapes=shapes,
    )
    assert with_eca["consistent"] and not with_eca["crashed"]
    assert broke


def test_eca_scenario_benchmark(benchmark):
    outcome = benchmark.pedantic(lambda: run_scenario(True), rounds=3)
    assert outcome["consistent"]
