"""Experiment F4 — Figure 4 / Example 5.1: the two-export hybrid VDP.

Example 5.1 argues for a specific annotation of Figure 4's VDP: B' and F
virtual, E hybrid ``[a1^m, a2^v, b1^m]``, everything else materialized —
because (i) E is "very expensive to evaluate unless it is at least
partially materialized" (the arithmetic join), (ii) E's a1/b1 feed G's
incremental rules, (iii) a2 is fetchable via the materialized key a1, and
(iv) "F is easy to evaluate, so a virtual relation F would not cause a
heavy performance penalty".

Regenerated table: the paper's annotation vs fully materialized vs fully
virtual, under a mixed workload — storage, maintenance work, and query
latency per export.  Expected shape: the paper's annotation stores less
than all-materialized while keeping query latency near it, and avoids
all-virtual's expensive re-evaluation of E per query.
"""

import random

import pytest

from repro.correctness import assert_view_correct
from repro.workloads import UpdateStream, figure4_mediator, figure4_sources, uniform_int

from _util import report, time_callable
from repro.bench import shape_line

UPDATES = 20
QUERIES = {
    "E hot (a1,b1)": "project[a1, b1](E)",
    "E full (incl a2)": "project[a1, a2, b1](E)",
    "G": "project[a1, b1](G)",
}


def drive(annotation):
    mediator, sources = figure4_mediator(annotation, seed=51)
    rng = random.Random(6)
    streams = [
        UpdateStream(sources["dbA"], "A", {"a2": uniform_int(0, 20)}, rng),
        UpdateStream(sources["dbC"], "C", {"c2": uniform_int(0, 60)}, rng),
        UpdateStream(sources["dbD"], "D", {"d2": uniform_int(0, 40)}, rng),
    ]
    mediator.reset_stats()
    maintenance = 0.0
    for k in range(UPDATES):
        streams[k % len(streams)].run(1)
        maintenance += time_callable(mediator.refresh, repeats=1)
    assert_view_correct(mediator)

    latencies = {}
    for label, query in QUERIES.items():
        latencies[label] = time_callable(lambda q=query: mediator.query(q), repeats=3)
    stats = mediator.stats()
    return {
        "storage": stats.stored_rows,
        "maintenance_ms": maintenance * 1e3,
        "polls": stats.polls,
        "latency": latencies,
    }


def test_fig4_annotation_comparison():
    results = {name: drive(name) for name in ("all_m", "paper", "all_v")}
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r["storage"],
                f"{r['maintenance_ms']:.1f}",
                r["polls"],
                f"{r['latency']['E hot (a1,b1)'] * 1e3:.2f}",
                f"{r['latency']['E full (incl a2)'] * 1e3:.2f}",
                f"{r['latency']['G'] * 1e3:.2f}",
            ]
        )
    paper, all_m, all_v = results["paper"], results["all_m"], results["all_v"]
    shapes = [
        shape_line(
            "the suggested annotation stores less than fully materialized",
            paper["storage"] < all_m["storage"],
            f"{paper['storage']} vs {all_m['storage']} rows",
        ),
        shape_line(
            "hot E queries under the suggested annotation stay near all-materialized speed",
            paper["latency"]["E hot (a1,b1)"] < 5 * all_m["latency"]["E hot (a1,b1)"],
        ),
        shape_line(
            "fully virtual pays the expensive theta-join on every E query",
            all_v["latency"]["E full (incl a2)"]
            > 3 * paper["latency"]["E hot (a1,b1)"],
        ),
        shape_line(
            "fully materialized maintenance needs no polls",
            all_m["polls"] == 0,
        ),
    ]
    report(
        "F4_two_exports",
        f"F4 (Figure 4 / Ex 5.1): annotation comparison under {UPDATES} mixed updates",
        ["annotation", "stored rows", "maint ms", "polls",
         "q(E hot) ms", "q(E full) ms", "q(G) ms"],
        rows,
        shapes=shapes,
    )
    assert paper["storage"] < all_m["storage"]
    assert all_m["polls"] == 0


@pytest.mark.parametrize("annotation", ["all_m", "paper"])
def test_fig4_update_benchmark(benchmark, annotation):
    mediator, sources = figure4_mediator(annotation, seed=52)
    rng = random.Random(7)
    stream = UpdateStream(sources["dbA"], "A", {"a2": uniform_int(0, 20)}, rng)

    def setup():
        stream.run(1)
        mediator.collect_announcements()
        return (), {}

    benchmark.pedantic(mediator.run_update_transaction, setup=setup, rounds=20)


def test_fig4_g_query_benchmark(benchmark):
    mediator, _ = figure4_mediator("paper", seed=53)
    result = benchmark(lambda: mediator.query("project[a1, b1](G)"))
    assert result is not None
