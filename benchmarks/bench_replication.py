"""Experiment RF — replication fleet scaling: shipping, routing, failover.

The replication layer's economics mirror Section 2's argument for
materialization: a read replica answers ``π_A σ_f R`` from its own copies
— zero load on the primary or the sources — so read capacity should
scale with fleet size while the primary's only extra cost is shipping
each committed WAL record once per replica.  This experiment deploys the
:class:`~repro.replication.ReplicationHarness` (Figure 1 / ex21) at four
fleet sizes, runs an identical committed workload through faulted
shipping channels, routes an identical read load, then kills the primary
(two more transactions commit at the autonomous sources over the corpse)
and promotes.

What the counters must show, at every fleet size:

* **shipping is linear in the fleet** — records shipped ≥ commits × N,
  never more than the fault-plan retransmissions explain;
* **read load spreads evenly** — round-robin routing serves every
  replica the same ±1 share of the in-budget reads;
* **convergence is exact** — after drain every replica's exports equal a
  from-scratch recompute over the live sources, at zero lag;
* **failover loses nothing** — the promoted replica recovers both
  silent source-side transactions (source-log catch-up), and its exports
  equal the ground truth again.

Counters are deterministic (integer-step clock, seeded fault plans); the
regression baseline is checked with
``python benchmarks/bench_replication.py --check BENCH_replication.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.faults import ChannelFaults, FaultPlan
from repro.replication import ReplicationHarness

try:
    from _util import report
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import report

FLEETS = [1, 2, 4, 8]
COMMITS = 12
SILENT_COMMITS = 2     # committed at the sources after the primary dies
READS_PER_REPLICA = 6  # routed load: fleet size × this many budget reads
SEED = 23
DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_replication.json"
)


def _fault_plan(replicas: int) -> FaultPlan:
    channels = {
        f"ship:replica-{i}": ChannelFaults(
            drop_rate=0.2,
            duplicate_rate=0.1,
            delay_rate=0.2,
            reorder_rate=0.1,
            delay_range=(1.0, 2.0),
        )
        for i in range(replicas)
    }
    return FaultPlan(seed=SEED, channels=channels)


def run_fleet(replicas: int) -> dict:
    h = ReplicationHarness(
        replicas=replicas,
        seed=SEED,
        faults=_fault_plan(replicas),
        heartbeat_timeout=3.0,
    )
    try:
        h.run(commits=COMMITS)
        h.drain()
        h.assert_converged()  # raises on divergence
        now = float(h.step)
        worst_lag = max(r.lag(now) for r in h.replicas)

        export = sorted(h.primary.vdp.exports)[0]
        for _ in range(READS_PER_REPLICA * replicas):
            h.router.query(export, now, staleness_budget=0.0)
        served = sorted(h.router.served.values())

        h.kill_primary()
        for _ in range(SILENT_COMMITS):
            h.silent_commit()
        now = h.advance_past_timeout()
        promotion = h.coordinator.check(now)
        assert promotion is not None
        promoted_ok = h.replica_exports(h.coordinator.promoted) == h.expected_exports()

        return {
            "replicas": replicas,
            "commits": COMMITS,
            "records_shipped": h.primary.replication.records_shipped,
            "resyncs": h.primary.replication.replica_resyncs,
            "worst_lag_after_drain": worst_lag,
            "reads_routed": READS_PER_REPLICA * replicas,
            "served_min": served[0],
            "served_max": served[-1],
            "failover_wal_replayed": promotion.wal_records_replayed,
            "failover_txns_replayed": promotion.replayed_txns,
            "promoted_converged": promoted_ok,
        }
    finally:
        h.close()


def collect() -> list:
    return [run_fleet(n) for n in FLEETS]


def _stable(results: list) -> list:
    """The committed baseline: every counter here is deterministic."""
    return [{k: v for k, v in r.items() if not k.startswith("_")} for r in results]


def render(results) -> None:
    from repro.bench import shape_line

    rows = [
        [
            r["replicas"],
            r["commits"],
            r["records_shipped"],
            r["resyncs"],
            r["worst_lag_after_drain"],
            r["reads_routed"],
            f"{r['served_min']}..{r['served_max']}",
            r["failover_wal_replayed"],
            r["failover_txns_replayed"],
            "yes" if r["promoted_converged"] else "NO",
        ]
        for r in results
    ]
    report(
        "RF_replication",
        "RF: replication fleet scaling — shipping, routing, failover (Figure 1 / ex21)",
        [
            "replicas",
            "commits",
            "shipped",
            "resyncs",
            "worst lag",
            "reads",
            "served/replica",
            "failover wal",
            "failover src txns",
            "promoted ok",
        ],
        rows,
        shapes=[
            shape_line(
                "shipping linear in fleet size (>= commits x N at every size)",
                all(r["records_shipped"] >= COMMITS * r["replicas"] for r in results),
            ),
            shape_line(
                "read load spread evenly (served max - min <= 1)",
                all(r["served_max"] - r["served_min"] <= 1 for r in results),
            ),
            shape_line(
                "zero-lag convergence after drain at every fleet size",
                all(r["worst_lag_after_drain"] == 0.0 for r in results),
            ),
            shape_line(
                "promotion recovers every silent source txn, exports converge",
                all(
                    r["failover_txns_replayed"] >= SILENT_COMMITS
                    and r["promoted_converged"]
                    for r in results
                ),
            ),
        ],
        note="counters are deterministic; JSON baseline: BENCH_replication.json",
    )


def test_replication_baseline():
    """Pytest entry point: regenerate the table and pin the shape claims."""
    results = collect()
    render(results)
    for r in results:
        assert r["records_shipped"] >= COMMITS * r["replicas"]
        assert r["served_max"] - r["served_min"] <= 1
        assert r["worst_lag_after_drain"] == 0.0
        assert r["failover_txns_replayed"] >= SILENT_COMMITS
        assert r["promoted_converged"]
    baseline = DEFAULT_BASELINE
    if baseline.exists():
        assert json.loads(baseline.read_text())["results"] == _stable(results), (
            "deterministic counters diverged from BENCH_replication.json — "
            "regenerate with: python benchmarks/bench_replication.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    args = parser.parse_args(argv)

    results = collect()
    render(results)
    stable = _stable(results)

    payload = {
        "experiment": "RF_replication",
        "workload": {
            "fleets": FLEETS,
            "commits": COMMITS,
            "silent_commits": SILENT_COMMITS,
            "reads_per_replica": READS_PER_REPLICA,
            "seed": SEED,
        },
        "results": stable,
    }
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != stable:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(stable, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
