"""Experiment F2 — Figure 2 / Remark 3.1: pseudo-consistency ≠ consistency.

Regenerates Figure 2's six-step table verbatim and runs the mechanized
checkers over it: the scenario must be judged pseudo-consistent (every pair
of view instants has ordered valid vectors) but NOT consistent (no single
order-preserving ``reflect`` function exists).
"""

import pytest

from repro.correctness import check_consistency, check_pseudo_consistency
from repro.workloads import figure2_trace

from _util import report
from repro.bench import shape_line


def render_states(trace):
    rows = []
    for i, view in enumerate(trace.view_history()):
        source = trace.source_state_at("db", view.time)
        r_rows = sorted(
            f"R({r['x']},{r['y']})" for r, _ in source.state["R"].items()
        )
        v_rows = sorted(f"S({r['y']})" for r, _ in view.state["S"].items())
        rows.append([f"t{i + 1}", " ".join(r_rows), " ".join(v_rows)])
    return rows


def test_fig2_scenario_table_and_verdicts():
    trace, view_fn = figure2_trace()
    verdict = check_consistency(trace, view_fn)
    pseudo = check_pseudo_consistency(trace, view_fn)

    rows = render_states(trace)
    shapes = [
        shape_line("the scenario satisfies pseudo-consistency", pseudo),
        shape_line("the scenario violates (full) consistency", not verdict.consistent),
        shape_line(
            "the violation is in order preservation, not validity",
            any("order preservation" in f for f in verdict.failures),
        ),
    ]
    report(
        "F2_consistency",
        "F2 (Figure 2): scenario satisfying pseudo-consistency but not consistency",
        ["time", "state(DB)", "state(V)"],
        rows,
        shapes=shapes,
        note="view definition: S = π₂(R); exact reproduction of the paper's table",
    )
    assert pseudo and not verdict.consistent


def test_fig2_checker_benchmark(benchmark):
    trace, view_fn = figure2_trace()
    verdict = benchmark(lambda: check_consistency(trace, view_fn))
    assert not verdict.consistent


def test_fig2_trap_closes_at_the_fifth_step():
    """Prefixes t1..t4 are still consistent; t5 closes the trap: reflect(t4)
    must be ≥ reflect(t3)=t2, but the only state showing {b} for t5 is t2
    itself, forcing reflect(t4)=t2 — whose projection is {b}, not {a}."""
    trace, view_fn = figure2_trace()
    views = trace.view_history()
    from repro.correctness import IntegrationTrace

    history = trace.source_history("db")
    verdicts = []
    for k in range(1, len(views) + 1):
        prefix = IntegrationTrace(["db"])
        for record in history:
            if record.time <= views[k - 1].time:
                prefix.record_source_state("db", record.time, record.state)
        for view in views[:k]:
            prefix.record_view_state(view.time, view.kind, view.state)
        verdicts.append(check_consistency(prefix, view_fn).consistent)
    assert verdicts == [True, True, True, True, False, False]
