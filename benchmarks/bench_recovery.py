"""Experiment RC — warm-restart recovery cost vs database size.

Section 2's economic argument for materialization — never re-read the
sources wholesale — must survive a mediator crash, or every restart pays
the cold build the architecture exists to avoid.  This experiment deploys
the Figure 1 environment at three database sizes, runs an identical
committed workload under a :class:`~repro.durability.DurabilityManager`
(checkpoint every 4 transactions), "kills" the mediator (the object is
abandoned; only the durability directory and the autonomous sources
survive), and recovers.

What the counters must show, at every size:

* **the replay suffix is flat** — the recovery replays exactly the WAL
  records past the last checkpoint and the source-log transactions past
  the recorded cursors, regardless of how many rows the database holds;
* **zero full-node recomputes** — with intact source logs no source is
  selectively re-initialized and no leaf is re-snapshotted;
* **WAL overhead is bounded** — bytes logged per committed transaction
  are a function of the *delta*, not the database, so they are identical
  across sizes;
* **the recovered state is correct** — it equals a from-scratch
  recompute (``assert_view_correct`` + ``assert_materialized_correct``).

Wall-clock columns (recover vs cold rebuild) are printed live and masked
in the committed copy; the deterministic counters are the regression
baseline: ``python benchmarks/bench_recovery.py --check BENCH_recovery.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.core import SquirrelMediator, annotate
from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.durability import CheckpointPolicy, DurabilityManager, RecoveryManager
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp

try:
    from _util import report
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import report

#: (r_rows, s_rows) per size step; the workload below is identical at all
#: three, so every per-transaction counter must be too.
SIZES = [(200, 60), (800, 60), (3200, 60)]
COMMITS = 14          # checkpoints land at txns 4, 8, 12 → a 2-record WAL tail
SILENT_COMMITS = 2    # committed at the sources after the last refresh
EVERY_TXNS = 4
SEED = 17
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_recovery.json"


def _workload_delta(k: int):
    from repro.deltas import SetDelta
    from repro.relalg import row

    delta = SetDelta()
    if k % 3 == 2:
        delta.insert("S", row(s1=k, s2=7000 + k, s3=5))
    else:
        delta.insert("R", row(r1=50_000 + k, r2=k % 50, r3=k * 11 % 1000, r4=100))
    return delta


def run_size(r_rows: int, s_rows: int) -> dict:
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    sources = figure1_sources(r_rows=r_rows, s_rows=s_rows, seed=SEED)
    with tempfile.TemporaryDirectory() as directory:
        mediator = SquirrelMediator(annotated, sources)
        mediator.initialize()
        manager = DurabilityManager.attach(
            mediator,
            directory,
            policy=CheckpointPolicy(every_txns=EVERY_TXNS, every_wal_bytes=0),
        )
        for k in range(COMMITS):
            source = "db2" if k % 3 == 2 else "db1"
            sources[source].execute(_workload_delta(k))
            mediator.refresh()
        wal_bytes = manager.stats.wal_bytes
        wal_records = manager.stats.wal_records
        checkpoints = manager.stats.checkpoints
        # The mediator dies *now*: two more transactions commit at the
        # sources while it is down, then we recover from the directory.
        for k in range(COMMITS, COMMITS + SILENT_COMMITS):
            source = "db2" if k % 3 == 2 else "db1"
            sources[source].execute(_workload_delta(k))
        manager.close()
        del mediator

        started = time.perf_counter()
        result = RecoveryManager(directory).recover(annotated, sources)
        recover_s = time.perf_counter() - started
        assert_view_correct(result.mediator)
        assert_materialized_correct(result.mediator)

        started = time.perf_counter()
        cold = SquirrelMediator(annotated, sources)
        cold.initialize()
        cold_s = time.perf_counter() - started

    return {
        "r_rows": r_rows,
        "s_rows": s_rows,
        "commits": COMMITS + SILENT_COMMITS,
        "wal_records": wal_records,
        "wal_bytes_per_txn": wal_bytes // wal_records,
        "checkpoints": checkpoints,
        "checkpoint_id": result.checkpoint_id,
        "wal_records_replayed": result.wal_records_replayed,
        "replayed_txns": result.replayed_txns,
        "reinitialized_sources": len(result.reinitialized_sources),
        "recovery_update_txns": result.mediator.iup.stats.transactions,
        "converged": True,  # the asserts above would have raised otherwise
        "_recover_s": recover_s,
        "_cold_s": cold_s,
    }


def collect() -> list:
    return [run_size(r, s) for r, s in SIZES]


def _stable(results: list) -> list:
    """The committed baseline: every deterministic counter, no wall clock."""
    return [{k: v for k, v in r.items() if not k.startswith("_")} for r in results]


def render(results) -> None:
    from repro.bench import shape_line

    rows = [
        [
            r["r_rows"] + r["s_rows"],
            r["commits"],
            r["wal_records_replayed"],
            r["replayed_txns"],
            r["reinitialized_sources"],
            r["wal_bytes_per_txn"],
            f"{r['_recover_s'] * 1e3:.1f}",
            f"{r['_cold_s'] * 1e3:.1f}",
        ]
        for r in results
    ]
    first = results[0]
    report(
        "RC_recovery",
        "RC: warm-restart recovery vs database size (Figure 1 / ex21)",
        [
            "db rows",
            "commits",
            "wal replayed",
            "src txns replayed",
            "reinit sources",
            "wal bytes/txn",
            "recover wall ms",
            "cold init wall ms",
        ],
        rows,
        shapes=[
            shape_line(
                "replay suffix flat in db size (only txns past the checkpoint)",
                all(
                    r["wal_records_replayed"] == first["wal_records_replayed"]
                    and r["replayed_txns"] == first["replayed_txns"]
                    for r in results
                ),
            ),
            shape_line(
                "zero full-node recomputes with intact source logs",
                all(r["reinitialized_sources"] == 0 for r in results),
            ),
            shape_line(
                "per-txn WAL overhead independent of db size",
                len({r["wal_bytes_per_txn"] for r in results}) == 1,
            ),
            shape_line(
                "recovered state equals from-scratch recompute at every size",
                all(r["converged"] for r in results),
            ),
        ],
        note="counters are deterministic; JSON baseline: BENCH_recovery.json",
    )


def test_recovery_baseline():
    """Pytest entry point: regenerate the table and pin the shape claims."""
    results = collect()
    render(results)
    first = results[0]
    assert first["wal_records_replayed"] == COMMITS - 3 * EVERY_TXNS
    assert first["replayed_txns"] == SILENT_COMMITS
    for r in results:
        assert r["wal_records_replayed"] == first["wal_records_replayed"]
        assert r["replayed_txns"] == first["replayed_txns"]
        assert r["reinitialized_sources"] == 0
        assert r["recovery_update_txns"] == 1  # one propagation pass, total
        assert r["wal_bytes_per_txn"] == first["wal_bytes_per_txn"]
    baseline = DEFAULT_BASELINE
    if baseline.exists():
        assert json.loads(baseline.read_text())["results"] == _stable(results), (
            "deterministic counters diverged from BENCH_recovery.json — "
            "regenerate with: python benchmarks/bench_recovery.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    args = parser.parse_args(argv)

    results = collect()
    render(results)
    stable = _stable(results)

    payload = {
        "experiment": "RC_recovery",
        "workload": {
            "sizes": SIZES,
            "commits": COMMITS,
            "silent_commits": SILENT_COMMITS,
            "checkpoint_every_txns": EVERY_TXNS,
            "seed": SEED,
        },
        "results": stable,
    }
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != stable:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(stable, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
