"""Experiment X1 — the introduction's virtual/materialized crossover claim.

"Speaking broadly, the virtual approach may be better if the information
sources are changing frequently, whereas the materialized approach may be
better if the information sources change infrequently and very fast query
response time is needed."

Sweep the query:update ratio and measure total wall time (maintenance +
queries) for the fully materialized, fully virtual, and hybrid (Example
2.3) annotations of the Figure 1 view.  Expected shape: materialized wins
on query-heavy mixes, virtual wins on update-heavy mixes, the crossover
falls in between, and the hybrid interpolates.
"""

import random
import time

import pytest

from repro.core import annotate
from repro.workloads import (
    FIGURE1_ANNOTATIONS,
    UpdateStream,
    choice_of,
    figure1_mediator,
    figure1_sources,
    uniform_int,
)

from _util import report
from repro.bench import shape_line

# (updates, queries) mixes from update-heavy to query-heavy; constant total.
MIXES = [(180, 5), (120, 30), (60, 60), (30, 120), (5, 180)]

ANNOTATIONS = {
    "materialized": "ex21",
    "hybrid (ex 2.3)": "ex23",
}

HOT_QUERY = "project[r1, s1](T)"


def fully_virtual_mediator(seed):
    from repro.core import SquirrelMediator
    from repro.workloads import figure1_vdp

    sources = figure1_sources(r_rows=150, s_rows=40, seed=seed)
    annotated = annotate(figure1_vdp(), {}, default="v")
    mediator = SquirrelMediator(annotated, sources)
    mediator.initialize()
    return mediator, sources


_KEYSPACE = [1_000_000]


def run_mix(mediator, sources, n_updates, n_queries, seed):
    rng = random.Random(seed)
    _KEYSPACE[0] += 100_000  # disjoint insert keys per invocation
    stream = UpdateStream(
        sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 40),
            "r3": uniform_int(0, 1000),
            "r4": choice_of([100, 200]),
        },
        rng=rng,
        key_start=_KEYSPACE[0],
    )
    ops = ["u"] * n_updates + ["q"] * n_queries
    rng.shuffle(ops)
    start = time.perf_counter()
    for op in ops:
        if op == "u":
            stream.run(1)
            mediator.refresh()
        else:
            mediator.query(HOT_QUERY)
    return time.perf_counter() - start


def test_crossover_sweep():
    rows = []
    winners = []
    for n_updates, n_queries in MIXES:
        cell = {}
        for label, example in ANNOTATIONS.items():
            mediator, sources = figure1_mediator(
                example, sources=figure1_sources(r_rows=150, s_rows=40, seed=3)
            )
            cell[label] = run_mix(mediator, sources, n_updates, n_queries, seed=11)
        mediator, sources = fully_virtual_mediator(seed=3)
        cell["virtual"] = run_mix(mediator, sources, n_updates, n_queries, seed=11)

        winner = min(cell, key=cell.get)
        winners.append(winner)
        rows.append(
            [
                f"{n_updates}:{n_queries}",
                f"{cell['materialized'] * 1e3:.1f}",
                f"{cell['hybrid (ex 2.3)'] * 1e3:.1f}",
                f"{cell['virtual'] * 1e3:.1f}",
                winner,
            ]
        )

    shapes = [
        shape_line(
            "the virtual approach wins the most update-heavy mix",
            winners[0] == "virtual",
            f"winner at {MIXES[0]}: {winners[0]}",
        ),
        shape_line(
            "the materialized approach wins the most query-heavy mix",
            winners[-1] in ("materialized", "hybrid (ex 2.3)"),
            f"winner at {MIXES[-1]}: {winners[-1]}",
        ),
        shape_line(
            "a crossover exists inside the sweep",
            winners[0] != winners[-1],
        ),
    ]
    report(
        "X1_crossover",
        "X1 (intro claim): total time (ms) vs update:query mix — who wins where",
        ["updates:queries", "materialized ms", "hybrid ms", "virtual ms", "winner"],
        rows,
        volatile=("winner",),
        shapes=shapes,
    )
    assert winners[0] != winners[-1], "no crossover observed"


@pytest.mark.parametrize("example", ["ex21", "ex23"])
def test_crossover_cell_benchmark(benchmark, example):
    mediator, sources = figure1_mediator(example, seed=12)
    benchmark.pedantic(
        lambda: run_mix(mediator, sources, 5, 5, seed=13), rounds=3
    )
