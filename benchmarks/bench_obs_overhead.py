"""Experiment OB — tracing overhead: disabled must be free, enabled bounded.

The tracer's design contract (``repro.obs.tracer``) is that every
instrumentation site in the hot path short-circuits on a single
``tracer.enabled`` attribute check, so production deployments (the default
:data:`~repro.obs.tracer.NULL_TRACER`) pay nothing measurable.  This
harness pins that claim on the propagation-scaling workload (Figure 1 /
ex21, update-batch heavy — the same shape as experiment PS):

* the workload runs under four tracer modes — **off** (the default
  ``NULL_TRACER``), **disabled** (a private ``Tracer(enabled=False)``, the
  ablation-honest control), **enabled** (full tracing + provenance), and
  **profiled** (enabled + a live :class:`~repro.obs.profile.CostProfiler`
  sink) — and all four must land in identical repository states with
  identical mediator counters: observation must never change behavior.
  The profiled run additionally proves the profiler's attribution
  reconciles *exactly* with the mediator counters;
* the **<2 % disabled overhead** claim is asserted *structurally*, not by
  comparing two noisy wall clocks: the per-call cost of a disabled
  ``span()``/``event()`` is microbenchmarked, multiplied by the number of
  instrumentation-site executions the workload performs (= the enabled
  run's record count, a deterministic number), and that estimated total
  must stay under 2 % of the measured workload wall time.  The expected
  margin is ~100×, so the check cannot flake on a loaded CI box.

All counters in ``BENCH_obs.json`` are deterministic (record counts,
state-equality verdicts, workload counters); wall-clock readings appear in
the printed table only and are masked in the persisted copy.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.deltas import SetDelta
from repro.obs import NULL_TRACER, CostProfiler, Tracer, validate_records
from repro.relalg import row
from repro.workloads import figure1_mediator, figure1_sources

try:
    from _util import report, time_callable
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import report, time_callable

DB_SIZE = 400
DELTA_ROWS = 20
BATCHES = 8
OVERHEAD_BUDGET = 0.02  # the headline claim: disabled-mode overhead < 2%
MICROBENCH_CALLS = 50_000
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def build_mediator(tracer):
    sources = figure1_sources(
        r_rows=DB_SIZE, s_rows=DB_SIZE // 2, seed=7, join_domain=DB_SIZE // 2
    )
    mediator, _ = figure1_mediator("ex21", sources=sources, tracer=tracer)
    return mediator


def run_workload(tracer, profiler=None) -> dict:
    """The PS-shaped workload: update batches interleaved with queries.

    ``profiler`` (a :class:`CostProfiler`) is attached *after* the build
    and stats reset, so the profiled window is exactly the counter window
    and the two must reconcile field-for-field.
    """
    mediator = build_mediator(tracer)
    mediator.reset_stats()
    if profiler is not None:
        profiler.attach(tracer)
    for batch in range(BATCHES):
        delta = SetDelta()
        for k in range(DELTA_ROWS):
            key = 1_000_000 + batch * DELTA_ROWS + k
            delta.insert("R", row(r1=key, r2=key % 50, r3=key * 7 % 1000, r4=100))
        mediator.enqueue_update("db1", delta)
        mediator.run_update_transaction()
        mediator.query_relation("T")
    stats = mediator.stats()
    state = {
        name: sorted((tuple(sorted(dict(r).items())), n) for r, n in repo.items())
        for name, repo in mediator.store.repos().items()
    }
    out = {
        "state": state,
        "stats": stats.as_dict(),
        "records": tracer.record_count() if tracer is not NULL_TRACER else 0,
    }
    if profiler is not None:
        out["profile_mismatches"] = profiler.profile().reconcile(stats)
    return out


def disabled_call_cost() -> float:
    """Measured seconds per instrumentation-site execution, tracing off."""
    tracer = Tracer(enabled=False)
    start = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        with tracer.span("x", a=1):
            pass
        tracer.event("y", b=2)
    elapsed = time.perf_counter() - start
    return elapsed / (2 * MICROBENCH_CALLS)  # one span + one event per loop


def collect() -> dict:
    off = run_workload(NULL_TRACER)
    disabled = run_workload(Tracer(enabled=False))
    enabled_tracer = Tracer(enabled=True, provenance=True)
    enabled = run_workload(enabled_tracer)
    validate_records(enabled_tracer.records())
    profiled_tracer = Tracer(enabled=True, provenance=True)
    profiled = run_workload(profiled_tracer, profiler=CostProfiler())

    return {
        "workload": {"db_size": DB_SIZE, "delta_rows": DELTA_ROWS, "batches": BATCHES},
        "records": {
            "off": off["records"],
            "disabled": disabled["records"],
            "enabled": enabled["records"],
            "profiled": profiled["records"],
        },
        "states_match": off["state"] == disabled["state"] == enabled["state"]
        == profiled["state"],
        "stats_match": off["stats"] == disabled["stats"] == enabled["stats"]
        == profiled["stats"],
        "profile_reconciles": not profiled["profile_mismatches"],
        "workload_counters": {
            "update_transactions": int(off["stats"]["update_transactions"]),
            "rules_fired": int(off["stats"]["rules_fired"]),
            "queries": int(off["stats"]["queries"]),
        },
    }


def measure_overhead(results) -> dict:
    """The runtime (non-committed) side: walls and the structural bound."""
    wall_off = time_callable(lambda: run_workload(NULL_TRACER), repeats=3)
    wall_disabled = time_callable(
        lambda: run_workload(Tracer(enabled=False)), repeats=3
    )
    wall_enabled = time_callable(
        lambda: run_workload(Tracer(enabled=True, provenance=True)), repeats=3
    )
    wall_profiled = time_callable(
        lambda: run_workload(
            Tracer(enabled=True, provenance=True), profiler=CostProfiler()
        ),
        repeats=3,
    )
    per_call = disabled_call_cost()
    # Every emitted record in the enabled run is one instrumentation site
    # the disabled run also reached (plus pure `.enabled` checks, which are
    # cheaper still) — so sites × per-call cost bounds the disabled cost.
    sites = results["records"]["enabled"]
    estimated = per_call * sites
    return {
        "wall_off": wall_off,
        "wall_disabled": wall_disabled,
        "wall_enabled": wall_enabled,
        "wall_profiled": wall_profiled,
        "per_call_us": per_call * 1e6,
        "sites": sites,
        "estimated_disabled_overhead": estimated,
        "overhead_ratio": estimated / wall_off,
    }


def render(results, overhead=None) -> None:
    from repro.bench import shape_line

    rows = []
    for mode in ("off", "disabled", "enabled", "profiled"):
        wall = overhead[f"wall_{mode}"] if overhead else None
        rows.append(
            [
                mode,
                results["records"][mode],
                "yes" if results["states_match"] else "NO",
                "yes" if results["stats_match"] else "NO",
                f"{wall * 1e3:.1f}" if wall is not None else "-",
            ]
        )
    shapes = [
        shape_line(
            "observation never changes behavior (states and counters identical)",
            results["states_match"] and results["stats_match"],
        ),
        shape_line(
            "disabled tracers record nothing; enabled records a full trace",
            results["records"]["off"] == results["records"]["disabled"] == 0
            and results["records"]["enabled"] > 0,
        ),
        shape_line(
            "profiler attribution reconciles exactly with mediator counters",
            results["profile_reconciles"],
        ),
    ]
    if overhead is not None:
        shapes.append(
            shape_line(
                f"disabled-mode overhead bound "
                f"({overhead['sites']} sites x {overhead['per_call_us']:.2f}us) "
                f"= {overhead['overhead_ratio']:.4%} of workload < "
                f"{OVERHEAD_BUDGET:.0%}",
                overhead["overhead_ratio"] < OVERHEAD_BUDGET,
            )
        )
    report(
        "OB_obs_overhead",
        "OB: tracing overhead on the propagation-scaling workload (Figure 1 / ex21)",
        ["tracer", "trace records", "states match", "stats match", "wall ms"],
        rows,
        shapes=shapes,
        note="counters are deterministic; JSON baseline: BENCH_obs.json",
    )


def check_shapes(results, overhead) -> list:
    return [
        ("all tracer modes land in identical repository states", results["states_match"]),
        ("all tracer modes report identical mediator counters", results["stats_match"]),
        (
            "disabled tracers record nothing",
            results["records"]["off"] == 0 and results["records"]["disabled"] == 0,
        ),
        ("the enabled tracer records a non-trivial trace", results["records"]["enabled"] > 50),
        (
            "profiler attribution reconciles exactly with mediator counters",
            results["profile_reconciles"],
        ),
        (
            f"estimated disabled-mode overhead under {OVERHEAD_BUDGET:.0%}",
            overhead["overhead_ratio"] < OVERHEAD_BUDGET,
        ),
    ]


def test_obs_overhead_baseline():
    """Pytest entry point: regenerate the table and pin the shape claims."""
    results = collect()
    overhead = measure_overhead(results)
    render(results, overhead)
    for desc, ok in check_shapes(results, overhead):
        assert ok, desc
    baseline = DEFAULT_BASELINE
    if baseline.exists():
        assert json.loads(baseline.read_text())["results"] == results, (
            "deterministic counters diverged from BENCH_obs.json — "
            "regenerate with: python benchmarks/bench_obs_overhead.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    args = parser.parse_args(argv)

    results = collect()
    overhead = measure_overhead(results)
    render(results, overhead)

    failed = [desc for desc, ok in check_shapes(results, overhead) if not ok]
    if failed:
        for desc in failed:
            print(f"SHAPE FAILED: {desc}", file=sys.stderr)
        return 1

    payload = {"experiment": "OB_obs_overhead", "results": results}
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != results:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(results, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
