"""Experiment E22 — Example 2.2: selectively virtual auxiliary data.

"Updates to relation R are frequent, but updates to relation S are
infrequent.  To reduce the overhead of continually maintaining R' and to
conserve space in the mediator, we change the annotation of R' to be
virtual ... In the rare case when updates to relation S occur, the mediator
must incur the expense of sending queries to relation R."

Regenerated table: under an R-heavy update mix, compare Example 2.1's
fully-materialized-support annotation with Example 2.2's virtual-R'
annotation — storage, propagation work, and when polls happen.
"""

import random

import pytest

from repro.correctness import assert_view_correct
from repro.workloads import UpdateStream, choice_of, figure1_mediator, uniform_int

from _util import report
from repro.bench import shape_line

R_UPDATES = 60
S_UPDATES = 3


def drive(example):
    mediator, sources = figure1_mediator(example, seed=31)
    rng = random.Random(8)
    r_stream = UpdateStream(
        sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 50),
            "r3": uniform_int(0, 1000),
            "r4": choice_of([100, 200]),
        },
        rng=rng,
    )
    s_stream = UpdateStream(
        sources["db2"],
        "S",
        policies={"s2": uniform_int(0, 1000), "s3": uniform_int(0, 100)},
        rng=rng,
    )
    mediator.reset_stats()

    # Phase 1: the frequent R updates.
    polls_during_r = 0
    for _ in range(R_UPDATES):
        r_stream.run(1)
        mediator.refresh()
    polls_during_r = mediator.vap.stats.polls

    # Phase 2: the rare S updates.
    for _ in range(S_UPDATES):
        s_stream.run(1)
        mediator.refresh()
    polls_total = mediator.vap.stats.polls

    assert_view_correct(mediator)
    stats = mediator.stats()
    return {
        "storage": stats.stored_rows,
        "rules": stats.rules_fired,
        "polls_r_phase": polls_during_r,
        "polls_s_phase": polls_total - polls_during_r,
        "polled_rows": stats.polled_rows,
    }


def test_ex22_virtual_auxiliary_tradeoff():
    ex21 = drive("ex21")
    ex22 = drive("ex22")

    rows = [
        ["ex 2.1 (R' materialized)", ex21["storage"], ex21["rules"],
         ex21["polls_r_phase"], ex21["polls_s_phase"], ex21["polled_rows"]],
        ["ex 2.2 (R' virtual)", ex22["storage"], ex22["rules"],
         ex22["polls_r_phase"], ex22["polls_s_phase"], ex22["polled_rows"]],
    ]
    shapes = [
        shape_line(
            "virtual R' stores less mediator data",
            ex22["storage"] < ex21["storage"],
            f"{ex22['storage']} vs {ex21['storage']} rows",
        ),
        shape_line(
            "frequent R updates propagate without any polling",
            ex22["polls_r_phase"] == 0,
        ),
        shape_line(
            "rare S updates are the only events that query R",
            ex22["polls_s_phase"] > 0,
            f"{ex22['polls_s_phase']} polls across {S_UPDATES} S-updates",
        ),
        shape_line(
            "fully materialized support never polls at all",
            ex21["polls_r_phase"] == 0 and ex21["polls_s_phase"] == 0,
        ),
    ]
    report(
        "E22_virtual_aux",
        f"E22 (Example 2.2): R-heavy mix ({R_UPDATES} R-updates, {S_UPDATES} S-updates)",
        ["annotation", "stored rows", "rules fired", "polls in R-phase",
         "polls in S-phase", "polled rows"],
        rows,
        shapes=shapes,
    )
    assert ex22["storage"] < ex21["storage"]
    assert ex22["polls_r_phase"] == 0
    assert ex22["polls_s_phase"] > 0


@pytest.mark.parametrize("example", ["ex21", "ex22"])
def test_ex22_propagation_benchmark(benchmark, example):
    """Timing of one R-update propagation under each annotation."""
    mediator, sources = figure1_mediator(example, seed=32)
    rng = random.Random(9)
    stream = UpdateStream(
        sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 50),
            "r3": uniform_int(0, 1000),
            "r4": choice_of([100, 200]),
        },
        rng=rng,
    )

    def setup():
        stream.run(1)
        mediator.collect_announcements()
        return (), {}

    benchmark.pedantic(mediator.run_update_transaction, setup=setup, rounds=30)
