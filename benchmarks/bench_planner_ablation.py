"""Experiment X3 — the Section 5.3 heuristics, measured.

Does the planner's suggested annotation actually beat the naive
alternatives on the workload it was given?  For both paper scenarios:

* estimate costs with the analytic model for every annotation in the
  candidate lattice (exhaustive enumeration), and
* physically drive the top suggestion and the two extremes through a real
  workload, measuring wall time and storage.

Expected shape: the suggestion is never worse than both extremes at once,
and on the Example 2.3 workload (hot keys, cold payloads, busy sources) it
beats fully-materialized on maintenance and fully-virtual on queries.
"""

import random
import time

import pytest

from repro.core import SquirrelMediator, annotate
from repro.planner import (
    WorkloadProfile,
    enumerate_annotations,
    node_statistics,
    suggest_annotation,
)
from repro.workloads import (
    UpdateStream,
    choice_of,
    figure1_sources,
    figure1_vdp,
    uniform_int,
)

from _util import report
from repro.bench import shape_line

HOT_QUERY = "project[r1, s1](T)"
COLD_QUERY = "project[r3, s1](select[r3 < 100](T))"

PROFILE = WorkloadProfile(
    update_rates={"db1": 10.0, "db2": 10.0},
    query_rate=2.0,
    attr_access={
        ("T", "r1"): 0.95,
        ("T", "s1"): 0.95,
        ("T", "r3"): 0.05,
        ("T", "s2"): 0.05,
    },
)


def drive(annotated, seed=17, n_updates=40, n_hot=40, n_cold=2):
    sources = figure1_sources(r_rows=120, s_rows=40, seed=7)
    mediator = SquirrelMediator(annotated, sources)
    mediator.initialize()
    rng = random.Random(seed)
    stream = UpdateStream(
        sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 40),
            "r3": uniform_int(0, 1000),
            "r4": choice_of([100, 200]),
        },
        rng=rng,
    )
    start = time.perf_counter()
    for _ in range(n_updates):
        stream.run(1)
        mediator.refresh()
    maint = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(n_hot):
        mediator.query(HOT_QUERY)
    for _ in range(n_cold):
        mediator.query(COLD_QUERY)
    queries = time.perf_counter() - start
    return {
        "storage": mediator.stats().stored_rows,
        "maint_ms": maint * 1e3,
        "query_ms": queries * 1e3,
        "total_ms": (maint + queries) * 1e3,
    }


def test_planner_ablation_figure1():
    vdp = figure1_vdp()
    sources = figure1_sources(r_rows=120, s_rows=40, seed=7)
    stats = node_statistics(vdp, sources)

    suggested = suggest_annotation(vdp, PROFILE)
    ranked = enumerate_annotations(vdp, stats, PROFILE)
    best_by_model = ranked[0].annotated

    candidates = {
        "planner suggestion": suggested,
        "model-optimal (enumerated)": best_by_model,
        "fully materialized": annotate(vdp, {}),
        "fully virtual": annotate(vdp, {}, default="v"),
    }
    measured = {label: drive(ann) for label, ann in candidates.items()}

    rows = [
        [
            label,
            str(candidates[label].annotation("T")),
            m["storage"],
            f"{m['maint_ms']:.1f}",
            f"{m['query_ms']:.1f}",
            f"{m['total_ms']:.1f}",
        ]
        for label, m in measured.items()
    ]
    sugg = measured["planner suggestion"]
    full_m = measured["fully materialized"]
    full_v = measured["fully virtual"]
    shapes = [
        shape_line(
            "the suggestion beats fully-virtual on query time",
            sugg["query_ms"] < full_v["query_ms"],
            "wall comparison; run the benchmark for live timings",
        ),
        shape_line(
            "the suggestion stores less than fully-materialized",
            sugg["storage"] < full_m["storage"],
            f"{sugg['storage']} vs {full_m['storage']} rows",
        ),
        shape_line(
            "the suggestion's total is within 2x of the best measured total",
            sugg["total_ms"] <= 2 * min(m["total_ms"] for m in measured.values()),
        ),
    ]
    report(
        "X3_planner_ablation",
        "X3 (§5.3 heuristics): planner suggestion vs extremes on the Ex 2.3 workload",
        ["annotation", "T annotation", "stored rows", "maint ms", "query ms", "total ms"],
        rows,
        shapes=shapes,
        note="40 R-updates, 40 hot + 2 cold queries; profile: hot r1/s1, cold r3/s2",
    )
    assert sugg["query_ms"] < full_v["query_ms"]
    assert sugg["storage"] < full_m["storage"]


def test_planner_enumeration_benchmark(benchmark):
    vdp = figure1_vdp()
    sources = figure1_sources(r_rows=60, s_rows=20, seed=7)
    stats = node_statistics(vdp, sources)
    ranked = benchmark(lambda: enumerate_annotations(vdp, stats, PROFILE))
    assert ranked
