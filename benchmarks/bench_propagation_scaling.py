"""Experiment PS — propagation cost vs database size at fixed delta size.

The paper's incremental-maintenance story (§5.2, §6.2) is that update
propagation touches deltas, not databases.  This harness pins that claim
for the compiled propagation engine: it sweeps database size at fixed
delta size (1, 10, 100 rows) over the Figure 1 (ex21, fully materialized)
and Figure 4 (all_m) scenarios and records the ``rows_hashed`` work
counter for two engines built from identical sources:

* **indexed** — the default: compiled rules probe persistent join indexes
  maintained incrementally on the repositories.  Steady-state propagation
  hashes nothing and never rebuilds an index, so ``rows_hashed`` is flat
  in database size.
* **legacy** — ``indexing_enabled=False``: no persistent indexes exist, so
  the evaluator falls back to building an ephemeral hash table over the
  sibling relation on every rule firing — ``rows_hashed`` grows linearly
  with the database.

Both engines must land in identical repository states (asserted per cell);
the speedup is reported as legacy/indexed rows hashed at each scale.

All reported counters are deterministic (fixed seeds, no wall-clock
anywhere near them), so ``BENCH_propagation.json`` at the repo root is an
exact regression baseline:
``python benchmarks/bench_propagation_scaling.py --check`` recomputes and
compares.  Wall time appears in the printed table only.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.deltas import SetDelta
from repro.relalg import row
from repro.workloads import (
    figure1_mediator,
    figure1_sources,
    figure4_mediator,
    figure4_sources,
)

try:
    from _util import report, time_callable
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import report, time_callable

DB_SIZES = [100, 400, 1600]
DELTA_SIZES = [1, 10, 100]
DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_propagation.json"
)
#: Shard-ablation sweep (``--shards``): delta size is pinned at the largest
#: sweep point, and the speedup model is deterministic — per-task work is
#: the sum of that task's fresh evaluator counters, so
#: serial_work / critical_path_work is the parallel speedup an idealized
#: scheduler extracts, independent of wall clocks and the GIL.
SHARD_COUNTS = [1, 2, 4]
SHARD_DELTA_ROWS = 100
SHARD_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_shard_scaling.json"
)


# ---------------------------------------------------------------------------
# Scenario builders: (mediator, source_name, delta) per cell
# ---------------------------------------------------------------------------
def build_fig1(db_size: int, indexing_enabled: bool, tracer=None, shards: int = 1):
    from repro.obs import NULL_TRACER

    sources = figure1_sources(
        r_rows=db_size, s_rows=db_size // 2, seed=7, join_domain=db_size // 2
    )
    mediator, _ = figure1_mediator(
        "ex21",
        sources=sources,
        indexing_enabled=indexing_enabled,
        shards=shards,
        tracer=tracer or NULL_TRACER,
    )
    return mediator


def fig1_delta(delta_rows: int) -> SetDelta:
    delta = SetDelta()
    for k in range(delta_rows):
        delta.insert("R", row(r1=1_000_000 + k, r2=k % 50, r3=k * 7 % 1000, r4=100))
    return delta


def build_fig4(db_size: int, indexing_enabled: bool, shards: int = 1):
    # A and B stay small: E's theta join (a1^2 + a2 < b2^2) has no equi keys
    # and would swamp the sweep quadratically without exercising hashing.
    # C and D carry the scaling — F's equi join c1 = d1 is the hash path.
    sources = figure4_sources(a_rows=30, b_rows=20, cd_rows=db_size, seed=11)
    mediator, _ = figure4_mediator(
        "all_m", sources=sources, indexing_enabled=indexing_enabled, shards=shards
    )
    return mediator


def fig4_delta(delta_rows: int, db_size: int) -> SetDelta:
    delta = SetDelta()
    for k in range(delta_rows):
        # c1 values land on existing d1 keys, so the F join actually produces
        # rows and the difference node G fires too.
        delta.insert("C", row(c1=k % db_size, c2=k % 30))
    return delta


SCENARIOS = {
    "fig1_ex21": {
        "build": build_fig1,
        "source": "db1",
        "delta": lambda n, db: fig1_delta(n),
    },
    "fig4_all_m": {
        "build": build_fig4,
        "source": "dbC",
        "delta": fig4_delta,
    },
}


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------
def repo_snapshot(mediator):
    out = {}
    for name, repo in mediator.store.repos().items():
        out[name] = sorted(
            (tuple(sorted(dict(r).items())), n) for r, n in repo.items()
        )
    return out


def run_engine(scenario: str, db_size: int, delta_rows: int, indexing_enabled: bool):
    spec = SCENARIOS[scenario]
    mediator = spec["build"](db_size, indexing_enabled)
    mediator.reset_stats()
    mediator.enqueue_update(spec["source"], spec["delta"](delta_rows, db_size))
    mediator.run_update_transaction()
    stats = mediator.stats()
    return {
        "rows_hashed": stats.rows_hashed,
        "index_probes": stats.index_probes,
        "index_rebuilds": stats.index_rebuilds,
        "hash_probes": mediator.store.counters.hash_probes,
        "propagation_passes": stats.propagation_passes,
    }, repo_snapshot(mediator)


def run_cell(scenario: str, db_size: int, delta_rows: int) -> dict:
    indexed, state_indexed = run_engine(scenario, db_size, delta_rows, True)
    legacy, state_legacy = run_engine(scenario, db_size, delta_rows, False)
    assert state_indexed == state_legacy, (
        f"{scenario} db={db_size} delta={delta_rows}: "
        "indexed and legacy engines diverged"
    )
    return {
        "scenario": scenario,
        "db_size": db_size,
        "delta_rows": delta_rows,
        "indexed": indexed,
        "legacy": legacy,
        "rows_hashed_ratio": round(
            legacy["rows_hashed"] / max(indexed["rows_hashed"], 1), 1
        ),
        "states_match": True,
    }


def collect() -> list:
    return [
        run_cell(scenario, db, delta)
        for scenario in SCENARIOS
        for delta in DELTA_SIZES
        for db in DB_SIZES
    ]


# ---------------------------------------------------------------------------
# Shape claims (asserted in tests and in --check runs)
# ---------------------------------------------------------------------------
def check_shapes(results) -> list:
    """The load-bearing claims as (description, holds) pairs."""
    by_key = {(r["scenario"], r["delta_rows"], r["db_size"]): r for r in results}
    flat = True
    for scenario in SCENARIOS:
        for delta in DELTA_SIZES:
            hashed = [
                by_key[(scenario, delta, db)]["indexed"]["rows_hashed"]
                for db in DB_SIZES
            ]
            if len(set(hashed)) != 1:
                flat = False
    largest = [r for r in results if r["db_size"] == max(DB_SIZES)]
    return [
        ("indexed rows_hashed is flat in database size at fixed delta size", flat),
        (
            "≥10× fewer rows hashed than the legacy engine at the largest scale",
            all(r["rows_hashed_ratio"] >= 10 for r in largest),
        ),
        (
            "steady-state propagation never rebuilds an index",
            all(r["indexed"]["index_rebuilds"] == 0 for r in results),
        ),
        (
            "indexed propagation probes maintained indexes",
            all(r["indexed"]["index_probes"] > 0 for r in results),
        ),
        (
            "every batch costs exactly one propagation pass",
            all(
                r[eng]["propagation_passes"] == 1
                for r in results
                for eng in ("indexed", "legacy")
            ),
        ),
        ("indexed and legacy engines agree on every final state", True),
    ]


def render(results, times=None) -> None:
    from repro.bench import shape_line

    rows = []
    for i, r in enumerate(results):
        rows.append(
            [
                r["scenario"],
                r["db_size"],
                r["delta_rows"],
                r["indexed"]["rows_hashed"],
                r["legacy"]["rows_hashed"],
                f"{r['rows_hashed_ratio']}x",
                r["indexed"]["index_probes"],
                r["indexed"]["index_rebuilds"],
                f"{times[i] * 1e3:.1f}" if times else "-",
            ]
        )
    report(
        "PS_propagation_scaling",
        "PS: propagation cost vs database size at fixed delta size",
        [
            "scenario",
            "db rows",
            "delta rows",
            "hashed (indexed)",
            "hashed (legacy)",
            "speedup",
            "index probes",
            "rebuilds",
            "wall ms",
        ],
        rows,
        shapes=[shape_line(desc, ok) for desc, ok in check_shapes(results)],
        note="counters are deterministic; JSON baseline: BENCH_propagation.json",
    )


# ---------------------------------------------------------------------------
# Shard ablation (--shards): hash-partitioned parallel propagation
# ---------------------------------------------------------------------------
def run_shard_engine(scenario: str, db_size: int, shards: int):
    spec = SCENARIOS[scenario]
    mediator = spec["build"](db_size, True, shards=shards)
    mediator.reset_stats()
    mediator.enqueue_update(spec["source"], spec["delta"](SHARD_DELTA_ROWS, db_size))
    mediator.run_update_transaction()
    stats = mediator.stats()
    iup = mediator.iup.stats
    # index_rebuilds is deliberately absent: a partitioned repository builds
    # one index per (shard, keyset), so the rebuild count legitimately
    # multiplies with the shard count.  Everything below must be identical.
    counters = {
        "rules_fired": stats.rules_fired,
        "index_probes": stats.index_probes,
        "rows_scanned": stats.rows_scanned,
        "rows_produced": mediator.store.counters.rows_produced,
        "propagation_passes": stats.propagation_passes,
    }
    work = {
        "shard_tasks": iup.shard_tasks,
        "shard_batches": iup.shard_batches,
        "exchange_reads": iup.exchange_reads,
        "serial_work": iup.shard_serial_work,
        "critical_work": iup.shard_critical_work,
    }
    return counters, work, repo_snapshot(mediator)


def run_shard_cell(scenario: str, db_size: int, shard_counts) -> dict:
    serial_counters, _, serial_state = run_shard_engine(scenario, db_size, 1)
    cell = {
        "scenario": scenario,
        "db_size": db_size,
        "delta_rows": SHARD_DELTA_ROWS,
        "serial": serial_counters,
        "shards": [],
    }
    for n in [c for c in shard_counts if c > 1]:
        counters, work, state = run_shard_engine(scenario, db_size, n)
        assert state == serial_state, (
            f"{scenario} db={db_size} shards={n}: repositories diverged from serial"
        )
        assert counters == serial_counters, (
            f"{scenario} db={db_size} shards={n}: work counters diverged from "
            f"serial ({counters} != {serial_counters})"
        )
        cell["shards"].append(
            {
                "num_shards": n,
                **work,
                "speedup": round(work["serial_work"] / max(work["critical_work"], 1), 2),
                "parity": True,
            }
        )
    return cell


def collect_shards(shard_counts) -> list:
    return [
        run_shard_cell(scenario, db, shard_counts)
        for scenario in SCENARIOS
        for db in DB_SIZES
    ]


def check_shard_shapes(results, shard_counts) -> list:
    """The shard-ablation claims as (description, holds) pairs."""
    top = max(shard_counts)
    largest = max(DB_SIZES)
    all_runs = [(r, s) for r in results for s in r["shards"]]
    fig1_top = [
        s["speedup"]
        for r, s in all_runs
        if r["scenario"] == "fig1_ex21"
        and r["db_size"] == largest
        and s["num_shards"] == top
    ]
    return [
        (
            "sharded counters and repository states match serial in every cell",
            all(s["parity"] for _, s in all_runs),
        ),
        (
            f"≥2× parallel speedup at {top} shards on the largest database "
            "(equi-join scenario)",
            bool(fig1_top) and all(sp >= 2.0 for sp in fig1_top),
        ),
        (
            "parallel speedup never drops below serial",
            all(s["speedup"] >= 1.0 for _, s in all_runs),
        ),
        (
            "non-aligned joins take counted cross-shard exchange reads",
            any(s["exchange_reads"] > 0 for _, s in all_runs),
        ),
        (
            "every firing batch splits into at least one task per shard "
            "somewhere (work actually fans out)",
            any(s["shard_tasks"] >= s["num_shards"] for _, s in all_runs),
        ),
    ]


def render_shards(results, shard_counts) -> None:
    from repro.bench import shape_line

    rows = []
    for r in results:
        for s in r["shards"]:
            rows.append(
                [
                    r["scenario"],
                    r["db_size"],
                    s["num_shards"],
                    s["shard_tasks"],
                    s["exchange_reads"],
                    s["serial_work"],
                    s["critical_work"],
                    f"{s['speedup']}x",
                ]
            )
    report(
        "PS_shard_scaling",
        "PS-shard: hash-partitioned parallel propagation (work model)",
        [
            "scenario",
            "db rows",
            "shards",
            "tasks",
            "exchange",
            "serial work",
            "critical path",
            "speedup",
        ],
        rows,
        shapes=[
            shape_line(desc, ok) for desc, ok in check_shard_shapes(results, shard_counts)
        ],
        note=(
            "speedup = serial work / critical-path work (deterministic counters); "
            "JSON baseline: BENCH_shard_scaling.json"
        ),
    )


def test_shard_scaling_baseline():
    """Pytest entry point: regenerate the shard sweep and pin its claims."""
    results = collect_shards(SHARD_COUNTS)
    render_shards(results, SHARD_COUNTS)
    for desc, ok in check_shard_shapes(results, SHARD_COUNTS):
        assert ok, desc
    if SHARD_BASELINE.exists():
        assert json.loads(SHARD_BASELINE.read_text())["results"] == results, (
            "deterministic counters diverged from BENCH_shard_scaling.json — "
            "regenerate with: python benchmarks/bench_propagation_scaling.py "
            "--shards 1,2,4 --write"
        )


def test_propagation_scaling_baseline():
    """Pytest entry point: regenerate the sweep and pin the shape claims."""
    results = collect()
    render(results)
    for desc, ok in check_shapes(results):
        assert ok, desc
    baseline = DEFAULT_BASELINE
    if baseline.exists():
        assert json.loads(baseline.read_text())["results"] == results, (
            "deterministic counters diverged from BENCH_propagation.json — "
            "regenerate with: python benchmarks/bench_propagation_scaling.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="re-run the largest fig1 cell with tracing on and export "
        "a schema-validated JSONL trace to PATH",
    )
    parser.add_argument(
        "--shards",
        metavar="N,N,...",
        help="run the shard-ablation sweep over these shard counts (e.g. "
        "1,2,4) instead of the indexing sweep; --check/--write then default "
        "to BENCH_shard_scaling.json",
    )
    args = parser.parse_args(argv)

    if args.shards:
        try:
            shard_counts = sorted({int(part) for part in args.shards.split(",")})
        except ValueError:
            parser.error(f"--shards expects a comma-separated int list, got {args.shards!r}")
        if not shard_counts or shard_counts[0] < 1:
            parser.error("--shards counts must be >= 1")
        results = collect_shards(shard_counts)
        render_shards(results, shard_counts)
        failed = [desc for desc, ok in check_shard_shapes(results, shard_counts) if not ok]
        if failed:
            for desc in failed:
                print(f"SHAPE FAILED: {desc}", file=sys.stderr)
            return 1
        payload = {
            "experiment": "PS_shard_scaling",
            "workload": {
                "db_sizes": DB_SIZES,
                "delta_rows": SHARD_DELTA_ROWS,
                "shard_counts": shard_counts,
                "scenarios": sorted(SCENARIOS),
            },
            "results": results,
        }
        if args.check:
            check_path = pathlib.Path(
                args.check if args.check != str(DEFAULT_BASELINE) else SHARD_BASELINE
            )
            expected = json.loads(check_path.read_text())
            if expected["results"] != results:
                print(f"MISMATCH against {check_path}", file=sys.stderr)
                print(json.dumps(results, indent=2), file=sys.stderr)
                return 1
            print(f"baseline {check_path} verified", file=sys.stderr)
            return 0
        path = pathlib.Path(
            args.write
            if args.write and args.write != str(DEFAULT_BASELINE)
            else SHARD_BASELINE
        )
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {path}", file=sys.stderr)
        return 0

    if args.trace:
        from repro.obs import Tracer, export_jsonl

        tracer = Tracer(enabled=True, provenance=True)
        mediator = build_fig1(DB_SIZES[-1], True, tracer=tracer)
        mediator.enqueue_update("db1", fig1_delta(DELTA_SIZES[-1]))
        mediator.run_update_transaction()
        written = export_jsonl(tracer, args.trace)
        print(f"wrote {written} trace records to {args.trace}", file=sys.stderr)
        return 0

    times = [
        time_callable(
            lambda s=r["scenario"], db=r["db_size"], d=r["delta_rows"]: run_cell(s, db, d),
            repeats=1,
        )
        for r in (
            {"scenario": s, "db_size": db, "delta_rows": d}
            for s in SCENARIOS
            for d in DELTA_SIZES
            for db in DB_SIZES
        )
    ]
    results = collect()
    render(results, times=times)

    failed = [desc for desc, ok in check_shapes(results) if not ok]
    if failed:
        for desc in failed:
            print(f"SHAPE FAILED: {desc}", file=sys.stderr)
        return 1

    payload = {
        "experiment": "PS_propagation_scaling",
        "workload": {
            "db_sizes": DB_SIZES,
            "delta_sizes": DELTA_SIZES,
            "scenarios": sorted(SCENARIOS),
        },
        "results": results,
    }
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != results:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(results, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
