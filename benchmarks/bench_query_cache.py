"""Experiment QC — the delta-aware VAP temp cache and concurrent polling.

Squirrel's hybrid approach (§2, §6.3) buys query-time locality by keeping
part of the view materialized; this harness pins the two query-path
optimizations layered on top of it:

* **A — repeated-query window.**  On Figure 1 / Example 2.3, a hot query
  touching virtual ``r3`` is repeated while sources are quiescent.  With
  the cache on, only the *first* execution polls; a follow-up query with a
  strictly narrower predicate is answered by **subsumption** (the dual of
  the §6.3 step-(2b) merge).  With ``vap_cache_enabled=False`` every
  repetition re-polls — poll count grows linearly with the window.

* **B — precise invalidation.**  An update transaction through ``db2``
  whose rows pass the ``S'`` leaf-parent selection (``s3 < 50``) kills
  exactly the cached temps whose lineage touches ``S``; the surviving
  ``R'`` entry then serves the R-side of the next reconstruction, so only
  db2 is re-polled.  An update *outside* the selection (``s3 = 90``) is
  dropped by the §6.2 leaf-parent filter and invalidates nothing.

* **C — concurrent fan-out.**  Figure 4 under ``all_v`` polls four sources
  per query.  With a 50 ms injected per-source delay
  (:class:`~repro.core.DelayedLink`), serial polling costs ~sum over
  sources while the bounded thread-pool fan-out costs ~max — wall-clock
  speedup ≥ 3× with four sources, identical answers either way.

All counters reported are deterministic (fixed seeds, one-transaction-
per-source snapshots, sorted merge order), so ``BENCH_query_cache.json``
at the repo root is an exact regression baseline:
``python benchmarks/bench_query_cache.py --check`` recomputes and
compares.  Wall times (and the speedup derived from them) appear in the
printed table and shape checks only — never in the JSON.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.core import DelayedLink, TempRequest
from repro.relalg import TRUE
from repro.workloads import figure1_mediator, figure4_mediator

try:
    from _util import BENCH_SEED, report, time_callable
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import BENCH_SEED, report, time_callable

DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_query_cache.json"
)

WINDOW = 6  # repeated executions of the hot query in experiment A
HOT_QUERY = "project[r1, s1](select[r3 < 100](T))"
NARROW_QUERY = "project[r1, s1](select[r3 < 40](T))"
FANOUT_DELAY = 0.05  # injected per-source poll latency in experiment C


# ---------------------------------------------------------------------------
# A — repeated-query window: flat polls vs linear
# ---------------------------------------------------------------------------
def run_window(cache_enabled: bool) -> dict:
    mediator, _ = figure1_mediator(
        "ex23", seed=BENCH_SEED, vap_cache_enabled=cache_enabled
    )
    mediator.reset_stats()
    answers = [mediator.query(HOT_QUERY) for _ in range(WINDOW)]
    assert all(a == answers[0] for a in answers)
    polls_trajectory = []
    mediator.reset_stats()
    mediator.vap.clear_cache()
    for _ in range(WINDOW):
        mediator.query(HOT_QUERY)
        polls_trajectory.append(mediator.vap.stats.polls)
    narrow_before = mediator.vap.stats.polls
    mediator.query(NARROW_QUERY)
    stats = mediator.vap.stats
    return {
        "cache_enabled": cache_enabled,
        "window": WINDOW,
        "polls_first": polls_trajectory[0],
        "polls_window": polls_trajectory[-1],
        "polls_trajectory": polls_trajectory,
        "polls_for_narrow": stats.polls - narrow_before,
        "cache_hits": stats.cache_hits,
        "subsumption_hits": stats.subsumption_hits,
    }


# ---------------------------------------------------------------------------
# B — precise invalidation: only the touched subtree re-polls
# ---------------------------------------------------------------------------
def run_invalidation() -> dict:
    mediator, sources = figure1_mediator("ex23", seed=BENCH_SEED)
    mediator.reset_stats()
    # Warm a T entry and a full-width R' entry.
    mediator.query(HOT_QUERY)
    mediator.query_relation("R_p", ["r1", "r2", "r3"])
    entries_before = mediator.vap.cache.entry_count()

    # Relevant update: passes the S' selection (s3 < 50) → T's entry dies.
    sources["db2"].insert("S", s1=999_001, s2=1, s3=10)
    mediator.refresh()
    relevant_invalidations = mediator.vap.stats.cache_invalidations
    t_entries_after_relevant = len(mediator.vap.cache.entries_for("T"))
    rp_entries_after_relevant = len(mediator.vap.cache.entries_for("R_p"))
    polls = mediator.vap.stats.polls
    polled_sources = mediator.vap.stats.polled_sources
    # Needs S-side virtual attrs: re-polls db2 only (R' entry survives).
    mediator.query("project[r1, s2](select[r3 < 100](T))")
    repoll_polls = mediator.vap.stats.polls - polls
    repoll_sources = mediator.vap.stats.polled_sources - polled_sources

    # Irrelevant update: dropped by the leaf-parent filter (s3 = 90 ≥ 50).
    base_invalidations = mediator.vap.stats.cache_invalidations
    sources["db2"].insert("S", s1=999_002, s2=1, s3=90)
    mediator.refresh()
    irrelevant_invalidations = (
        mediator.vap.stats.cache_invalidations - base_invalidations
    )
    polls = mediator.vap.stats.polls
    mediator.query(HOT_QUERY)
    irrelevant_repoll_polls = mediator.vap.stats.polls - polls
    return {
        "entries_warm": entries_before,
        "relevant_invalidations": relevant_invalidations,
        "t_entries_after_relevant": t_entries_after_relevant,
        "rp_entries_after_relevant": rp_entries_after_relevant,
        "repoll_polls": repoll_polls,
        "repoll_sources": repoll_sources,
        "irrelevant_invalidations": irrelevant_invalidations,
        "irrelevant_repoll_polls": irrelevant_repoll_polls,
    }


# ---------------------------------------------------------------------------
# C — concurrent fan-out: wall ≈ max over sources, not sum
# ---------------------------------------------------------------------------
def build_fanout_mediator(parallel: bool):
    mediator, _ = figure4_mediator(
        "all_v", seed=BENCH_SEED, parallel_polls=parallel
    )
    for name, link in list(mediator.links.items()):
        delayed = DelayedLink(
            link.source,
            announcement_sink=link.announcement_sink,
            announces=link.announces,
            delay=FANOUT_DELAY,
        )
        # The VAP holds its own copy of the link table: swap both.
        mediator.links[name] = delayed
        mediator.vap.links[name] = delayed
    return mediator


def fanout_requests():
    return [
        TempRequest("E", frozenset({"a1", "a2", "b1"}), TRUE),
        TempRequest("G", frozenset({"a1", "b1"}), TRUE),
    ]


def run_fanout(parallel: bool):
    mediator = build_fanout_mediator(parallel)
    mediator.reset_stats()
    temps = mediator.vap.materialize(fanout_requests())
    stats = mediator.vap.stats
    counters = {
        "parallel": parallel,
        "polled_sources": stats.polled_sources,
        "polls": stats.polls,
        "parallel_poll_batches": stats.parallel_poll_batches,
    }
    snapshot = {
        name: sorted((tuple(sorted(dict(r).items())), n) for r, n in rel.items())
        for name, rel in temps.items()
    }
    wall = time_callable(
        lambda: mediator.vap.materialize(fanout_requests()), repeats=3
    )
    return counters, snapshot, wall


def collect():
    parallel_counters, parallel_state, parallel_wall = run_fanout(True)
    serial_counters, serial_state, serial_wall = run_fanout(False)
    assert parallel_state == serial_state, "fan-out modes produced different temps"
    results = {
        "window_cached": run_window(True),
        "window_ablation": run_window(False),
        "invalidation": run_invalidation(),
        "fanout": {
            "sources": 4,
            "delay_per_source_s": FANOUT_DELAY,
            "parallel": parallel_counters,
            "serial": serial_counters,
            "states_match": True,
        },
    }
    times = {"parallel_wall": parallel_wall, "serial_wall": serial_wall}
    return results, times


# ---------------------------------------------------------------------------
# Shape claims (asserted in tests and in --check/--write runs)
# ---------------------------------------------------------------------------
def check_shapes(results, times=None) -> list:
    cached = results["window_cached"]
    ablation = results["window_ablation"]
    inv = results["invalidation"]
    fan = results["fanout"]
    shapes = [
        (
            "with the cache, repeated quiescent queries poll only on the first execution",
            cached["polls_window"] == cached["polls_first"] > 0,
        ),
        (
            "without the cache, polls grow linearly with the query window",
            ablation["polls_window"] == WINDOW * ablation["polls_first"],
        ),
        (
            "a strictly narrower predicate is served by subsumption, zero polls",
            cached["polls_for_narrow"] == 0 and cached["subsumption_hits"] >= 1,
        ),
        (
            "a relevant update kills exactly the touched lineage (R' entry survives)",
            inv["relevant_invalidations"] >= 1
            and inv["t_entries_after_relevant"] == 0
            and inv["rp_entries_after_relevant"] == 1,
        ),
        (
            "reconstruction after invalidation re-polls only the touched source",
            inv["repoll_polls"] == 1 and inv["repoll_sources"] == 1,
        ),
        (
            "an update outside the leaf-parent selection invalidates and re-polls nothing",
            inv["irrelevant_invalidations"] == 0
            and inv["irrelevant_repoll_polls"] == 0,
        ),
        (
            "fan-out polls all four sources in both modes, batching only when parallel",
            fan["parallel"]["polled_sources"] == 4
            and fan["serial"]["polled_sources"] == 4
            and fan["parallel"]["parallel_poll_batches"] >= 1
            and fan["serial"]["parallel_poll_batches"] == 0,
        ),
        ("parallel and serial fan-out agree on every temp", fan["states_match"]),
    ]
    if times is not None:
        speedup = times["serial_wall"] / max(times["parallel_wall"], 1e-9)
        shapes.append(
            (
                "concurrent fan-out wall ≈ max over sources, not sum "
                f"(speedup ≥ 3.0 with 4×{int(FANOUT_DELAY * 1e3)}ms sources)",
                speedup >= 3.0,
            )
        )
    return shapes


def render(results, times=None) -> None:
    from repro.bench import shape_line

    cached = results["window_cached"]
    ablation = results["window_ablation"]
    inv = results["invalidation"]
    fan = results["fanout"]
    if times:
        speedup = times["serial_wall"] / max(times["parallel_wall"], 1e-9)
        print(f"fan-out speedup (serial/parallel): {speedup:.1f}x", file=sys.stderr)
    rows = [
        ["A", "cache on", cached["polls_window"], cached["cache_hits"],
         cached["subsumption_hits"], "-", "-", "-"],
        ["A", "cache off", ablation["polls_window"], ablation["cache_hits"],
         ablation["subsumption_hits"], "-", "-", "-"],
        ["B", "relevant update", inv["repoll_polls"], "-", "-",
         inv["relevant_invalidations"], "-", "-"],
        ["B", "filtered update", inv["irrelevant_repoll_polls"], "-", "-",
         inv["irrelevant_invalidations"], "-", "-"],
        ["C", "parallel polls", fan["parallel"]["polls"], "-", "-", "-",
         fan["parallel"]["parallel_poll_batches"],
         f"{times['parallel_wall'] * 1e3:.1f}" if times else "-"],
        ["C", "serial polls", fan["serial"]["polls"], "-", "-", "-",
         fan["serial"]["parallel_poll_batches"],
         f"{times['serial_wall'] * 1e3:.1f}" if times else "-"],
    ]
    report(
        "QC_query_cache",
        "QC: VAP temp cache (A window / B invalidation) + concurrent fan-out (C)",
        ["exp", "configuration", "polls", "cache hits", "subsumed",
         "invalidations", "batches", "wall ms"],
        rows,
        shapes=[shape_line(desc, ok) for desc, ok in check_shapes(results, times)],
        note=(
            f"window={WINDOW} repeated queries; counters are deterministic; "
            "JSON baseline: BENCH_query_cache.json"
        ),
    )


def test_query_cache_baseline():
    """Pytest entry point: regenerate the experiments, pin the shape claims
    (including the wall-clock fan-out speedup) and the counter baseline."""
    results, times = collect()
    render(results, times)
    for desc, ok in check_shapes(results, times):
        assert ok, desc
    baseline = DEFAULT_BASELINE
    if baseline.exists():
        assert json.loads(baseline.read_text())["results"] == results, (
            "deterministic counters diverged from BENCH_query_cache.json — "
            "regenerate with: python benchmarks/bench_query_cache.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    args = parser.parse_args(argv)

    results, times = collect()
    render(results, times)

    failed = [desc for desc, ok in check_shapes(results, times) if not ok]
    if failed:
        for desc in failed:
            print(f"SHAPE FAILED: {desc}", file=sys.stderr)
        return 1

    payload = {
        "experiment": "QC_query_cache",
        "workload": {
            "window": WINDOW,
            "hot_query": HOT_QUERY,
            "narrow_query": NARROW_QUERY,
            "fanout_delay_s": FANOUT_DELAY,
            "seed": BENCH_SEED,
        },
        "results": results,
    }
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != results:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(results, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
