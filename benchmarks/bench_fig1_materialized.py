"""Experiment F1 — Figure 1 / Example 2.1: fully materialized support.

Reproduces the paper's headline mechanism: with every relation (including
the auxiliaries R', S') materialized, the view T is maintained purely from
incremental updates and mediator-local data — "without polling of the
source databases".

Regenerated table: incremental maintenance cost vs full recomputation as
the source grows; expected shape — incremental wins by a growing factor,
and source polls are identically zero.
"""

import random

import pytest

from repro.correctness import assert_view_correct, recompute
from repro.workloads import UpdateStream, choice_of, figure1_mediator, uniform_int

from _util import report, time_callable

SIZES = [100, 400, 1600]
UPDATES_PER_ROUND = 20


def make_stream(sources, seed):
    return UpdateStream(
        sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 50),
            "r3": uniform_int(0, 1000),
            "r4": choice_of([100, 200]),
        },
        rng=random.Random(seed),
    )


def run_round(mediator, stream):
    """Commit updates (untimed workload), then time only the propagation."""
    stream.run(UPDATES_PER_ROUND)
    return lambda: mediator.refresh()


def test_fig1_incremental_vs_recompute():
    from repro.workloads import figure1_sources

    rows = []
    for size in SIZES:
        sources = figure1_sources(r_rows=size, s_rows=40, seed=13)
        mediator, _ = figure1_mediator("ex21", sources=sources)

        stream = make_stream(sources, seed=size + 1)
        mediator.reset_stats()
        refresh = run_round(mediator, stream)
        incr_time = time_callable(refresh, repeats=1)
        polls = mediator.vap.stats.polls
        recompute_time = time_callable(
            lambda: recompute(mediator.vdp, sources, "T"), repeats=2
        )
        per_update = incr_time / UPDATES_PER_ROUND
        rows.append(
            [
                size,
                f"{per_update * 1e3:.3f}",
                f"{recompute_time * 1e3:.3f}",
                f"{recompute_time / per_update:.1f}x",
                polls,
            ]
        )
        assert polls == 0, "Example 2.1 must never poll"
        assert_view_correct(mediator)

    large = float(rows[-1][3].rstrip("x"))
    report(
        "F1_fig1_materialized",
        "F1 (Figure 1 / Ex 2.1): fully materialized support — incremental vs recompute",
        ["|R|", "incr ms/update", "recompute ms", "recompute/incr", "source polls"],
        rows,
        volatile=("recompute/incr",),
        shapes=[
            _shape(
                "incremental maintenance beats recomputation, increasingly with size",
                large > 1.0 and float(rows[-1][3].rstrip("x")) >= float(rows[0][3].rstrip("x")),
            ),
            _shape("maintenance requires zero source polls", all(r[4] == 0 for r in rows)),
        ],
    )


def _shape(claim, holds):
    from repro.bench import shape_line

    return shape_line(claim, holds)


@pytest.fixture
def fig1_setup():
    mediator, sources = figure1_mediator("ex21", seed=21)
    stream = make_stream(sources, seed=77)
    return mediator, stream


def test_fig1_update_transaction_benchmark(benchmark, fig1_setup):
    """pytest-benchmark timing of one full update transaction."""
    mediator, stream = fig1_setup

    def one_round():
        stream.run(5)
        mediator.refresh()

    benchmark.pedantic(one_round, rounds=20, iterations=1)
    assert mediator.vap.stats.polls == 0


def test_fig1_materialized_query_benchmark(benchmark, fig1_setup):
    mediator, _ = fig1_setup
    result = benchmark(lambda: mediator.query("project[r1, s1](T)"))
    assert result.cardinality() >= 0
