"""Experiment CK — the raw-speed kernel: columnar layout and delta smash.

Two ablations over the Figure 4 mediator (``all_m``), both measured with
the deterministic task-work model used by the shard experiment —
``rows_scanned + rows_hashed + hash_probes + index_probes +
rows_produced`` out of fresh evaluator counters, never a wall clock:

* **layout sweep** — identical sources and deltas propagated through a
  row-layout and a columnar-layout (struct-of-arrays) mediator.  The row
  engine's set-difference rules re-evaluate operand chains on every
  firing, so its work grows with database size; the columnar engine
  answers the same transitions with slot probes against maintained
  indexes, so its work tracks the delta.  At the largest database the
  small-delta cells must clear a ≥10× end-to-end speedup.
* **smash sweep** — churn-heavy transactions (rows inserted then deleted
  across separate announcements, plus one surviving insert) propagated
  with ``smash_enabled=True`` (one pass over the queue-folded net delta)
  and ``smash_enabled=False`` (one pass per queued message, in arrival
  order).  The net effect is identical — asserted on full repository
  state — but the unsmashed kernel replays every bounced message, so the
  smashed kernel must win ≥2× on task work once churn dominates.

Both sweeps assert bit-identical repository states between their engine
pairs per cell, so the committed ``BENCH_columnar.json`` baseline is an
exact regression gate: ``python benchmarks/bench_columnar.py --check``
recomputes and compares.  Wall time appears in the printed table only.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.deltas import SetDelta
from repro.relalg import row
from repro.workloads import figure4_mediator, figure4_sources

try:
    from _util import report, time_callable
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import report, time_callable

DB_SIZES = [100, 400, 1600]
DELTA_SIZES = [1, 10, 100]
#: Cells that must clear the headline ≥10× bar: propagation is a
#: delta-sized workload, so the claim lives where deltas are small
#: relative to the database (the 100-row delta against the 1600-row
#: database still wins ~5× and is recorded, but is not the claim).
SMALL_DELTAS = [1, 10]
#: Smash sweep: bounce counts at a fixed mid-size database.  Each bounce
#: is an insert and a delete of the same row in *separate* announcements
#: (same-window bounces already cancel at the source accumulator, which
#: would measure the source, not the kernel).
BOUNCE_COUNTS = [2, 8, 32]
SMASH_DB_SIZE = 400
DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_columnar.json"
)


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------
def build(db_size: int, layout: str = "row", smash_enabled: bool = True):
    # A and B stay small — C and D carry the scaling, exactly as in the
    # propagation-scaling experiment, so the two baselines sweep the same
    # workload and differ only in the ablated knob.
    sources = figure4_sources(a_rows=30, b_rows=20, cd_rows=db_size, seed=11)
    return figure4_mediator(
        "all_m", sources=sources, layout=layout, smash_enabled=smash_enabled
    )


def fig4_delta(delta_rows: int, db_size: int) -> SetDelta:
    delta = SetDelta()
    for k in range(delta_rows):
        # c1 values land on existing d1 keys so F = C ⋈ D produces rows
        # and the difference node G fires.
        delta.insert("C", row(c1=k % db_size, c2=k % 30))
    return delta


def task_work(counters) -> int:
    """The shard experiment's work model: logical work only — the
    physical-layer counters (rows_materialized, cells_scanned) describe
    *how* a layout touched storage, not how much rule work it did."""
    return (
        counters.rows_scanned
        + counters.rows_hashed
        + counters.hash_probes
        + counters.index_probes
        + counters.rows_produced
    )


def repo_snapshot(mediator):
    out = {}
    for name, repo in mediator.store.repos().items():
        out[name] = sorted(
            (tuple(sorted(dict(r).items())), n) for r, n in repo.items()
        )
    return out


def counter_record(mediator) -> dict:
    c = mediator.store.counters
    stats = mediator.stats()
    return {
        "task_work": task_work(c),
        "rows_scanned": c.rows_scanned,
        "rows_hashed": c.rows_hashed,
        "hash_probes": c.hash_probes,
        "index_probes": c.index_probes,
        "rows_produced": c.rows_produced,
        "index_rebuilds": c.index_rebuilds,
        "rows_materialized": c.rows_materialized,
        "cells_scanned": c.cells_scanned,
        "propagation_passes": stats.propagation_passes,
        "deltas_compacted": stats.deltas_compacted,
    }


def run_layout_engine(layout: str, db_size: int, delta_rows: int):
    mediator, _ = build(db_size, layout=layout)
    # One warm-up insert/delete pair reaches steady state (probe indexes
    # built and maintained) and restores the initial repository contents,
    # so the measured transaction starts from identical state in both
    # layouts and pays no one-time index construction.
    warm = SetDelta()
    warm.insert("C", row(c1=0, c2=0))
    mediator.enqueue_update("dbC", warm)
    mediator.run_update_transaction()
    cool = SetDelta()
    cool.delete("C", row(c1=0, c2=0))
    mediator.enqueue_update("dbC", cool)
    mediator.run_update_transaction()
    mediator.reset_stats()
    mediator.enqueue_update("dbC", fig4_delta(delta_rows, db_size))
    mediator.run_update_transaction()
    return counter_record(mediator), repo_snapshot(mediator)


def run_layout_cell(db_size: int, delta_rows: int) -> dict:
    row_rec, row_state = run_layout_engine("row", db_size, delta_rows)
    col_rec, col_state = run_layout_engine("columnar", db_size, delta_rows)
    assert row_state == col_state, (
        f"layout sweep db={db_size} delta={delta_rows}: row and columnar "
        "engines diverged"
    )
    return {
        "db_size": db_size,
        "delta_rows": delta_rows,
        "row": row_rec,
        "columnar": col_rec,
        "speedup": round(row_rec["task_work"] / max(col_rec["task_work"], 1), 1),
        "states_match": True,
    }


def run_smash_engine(smash_enabled: bool, bounces: int):
    mediator, sources = build(SMASH_DB_SIZE, smash_enabled=smash_enabled)
    # Warm up (and reach steady-state indexes) with one unrelated insert.
    sources["dbA"].insert("A", a1=8_000, a2=1)
    mediator.collect_announcements()
    mediator.run_update_transaction()
    mediator.reset_stats()
    # Bounce churn: each insert and its delete land in separate queue
    # entries (collect between them), so the smashed kernel's queue fold —
    # not the source accumulator — does the cancelling.
    for i in range(bounces):
        sources["dbC"].insert("C", c1=9_000 + i, c2=i % 30)
        mediator.collect_announcements()
        sources["dbC"].delete("C", c1=9_000 + i, c2=i % 30)
        mediator.collect_announcements()
    sources["dbA"].insert("A", a1=9_100, a2=3)
    mediator.collect_announcements()
    mediator.run_update_transaction()
    return counter_record(mediator), repo_snapshot(mediator)


def run_smash_cell(bounces: int) -> dict:
    smashed, smashed_state = run_smash_engine(True, bounces)
    unsmashed, unsmashed_state = run_smash_engine(False, bounces)
    assert smashed_state == unsmashed_state, (
        f"smash sweep bounces={bounces}: smashed and unsmashed kernels diverged"
    )
    return {
        "bounces": bounces,
        "queued_messages": 2 * bounces + 1,
        "smashed": smashed,
        "unsmashed": unsmashed,
        "smash_win": round(
            unsmashed["task_work"] / max(smashed["task_work"], 1), 1
        ),
        "states_match": True,
    }


def collect() -> dict:
    return {
        "layout": [
            run_layout_cell(db, delta)
            for delta in DELTA_SIZES
            for db in DB_SIZES
        ],
        "smash": [run_smash_cell(bounces) for bounces in BOUNCE_COUNTS],
    }


# ---------------------------------------------------------------------------
# Shape claims (asserted in tests and in --check runs)
# ---------------------------------------------------------------------------
def check_shapes(results) -> list:
    """The load-bearing claims as (description, holds) pairs."""
    layout = results["layout"]
    smash = results["smash"]
    by_key = {(r["delta_rows"], r["db_size"]): r for r in layout}
    largest_small = [
        by_key[(delta, max(DB_SIZES))] for delta in SMALL_DELTAS
    ]
    monotone = all(
        by_key[(delta, a)]["speedup"] <= by_key[(delta, b)]["speedup"]
        for delta in DELTA_SIZES
        for a, b in zip(DB_SIZES, DB_SIZES[1:])
    )
    col_flat = all(
        by_key[(delta, max(DB_SIZES))]["columnar"]["task_work"]
        <= by_key[(delta, min(DB_SIZES))]["columnar"]["task_work"]
        for delta in DELTA_SIZES
    )
    churn_heavy = [r for r in smash if r["bounces"] >= 8]
    return [
        (
            "columnar clears ≥10× end-to-end task-work speedup at the "
            "largest database (small-delta cells)",
            all(r["speedup"] >= 10 for r in largest_small),
        ),
        (
            "columnar speedup grows with database size at fixed delta size",
            monotone,
        ),
        (
            "columnar task work does not grow with database size",
            col_flat,
        ),
        (
            "steady-state propagation never rebuilds an index (either layout)",
            all(
                r[eng]["index_rebuilds"] == 0
                for r in layout
                for eng in ("row", "columnar")
            ),
        ),
        (
            "row and columnar engines agree on every final state",
            all(r["states_match"] for r in layout),
        ),
        (
            "smash folds every churn transaction into one propagation pass",
            all(r["smashed"]["propagation_passes"] == 1 for r in smash),
        ),
        (
            "the unsmashed kernel replays one pass per queued message",
            all(
                r["unsmashed"]["propagation_passes"] == r["queued_messages"]
                for r in smash
            ),
        ),
        (
            "≥2× smash task-work win on churn-heavy transactions",
            all(r["smash_win"] >= 2 for r in churn_heavy),
        ),
        (
            "the smash win grows with churn",
            all(
                a["smash_win"] <= b["smash_win"]
                for a, b in zip(smash, smash[1:])
            ),
        ),
        (
            "smashed and unsmashed kernels agree on every final state",
            all(r["states_match"] for r in smash),
        ),
    ]


def render(results, times=None) -> None:
    from repro.bench import shape_line

    rows = []
    for i, r in enumerate(results["layout"]):
        rows.append(
            [
                "layout",
                r["db_size"],
                r["delta_rows"],
                r["row"]["task_work"],
                r["columnar"]["task_work"],
                f"{r['speedup']}x",
                r["columnar"]["index_probes"],
                f"{times[i] * 1e3:.1f}" if times else "-",
            ]
        )
    offset = len(results["layout"])
    for i, r in enumerate(results["smash"]):
        rows.append(
            [
                "smash",
                SMASH_DB_SIZE,
                r["queued_messages"],
                r["unsmashed"]["task_work"],
                r["smashed"]["task_work"],
                f"{r['smash_win']}x",
                r["smashed"]["deltas_compacted"],
                f"{times[offset + i] * 1e3:.1f}" if times else "-",
            ]
        )
    report(
        "CK_columnar_kernel",
        "CK: columnar layout and delta smash vs the row baseline (task work)",
        [
            "sweep",
            "db rows",
            "delta/msgs",
            "baseline work",
            "kernel work",
            "speedup",
            "probes/compacted",
            "wall ms",
        ],
        rows,
        shapes=[shape_line(desc, ok) for desc, ok in check_shapes(results)],
        note=(
            "task work = rows scanned + hashed + hash/index probes + rows "
            "produced (deterministic counters); layout baseline = row "
            "engine, smash baseline = one pass per queued message; "
            "JSON baseline: BENCH_columnar.json"
        ),
    )


def test_columnar_kernel_baseline():
    """Pytest entry point: regenerate both sweeps and pin their claims."""
    results = collect()
    render(results)
    for desc, ok in check_shapes(results):
        assert ok, desc
    if DEFAULT_BASELINE.exists():
        assert json.loads(DEFAULT_BASELINE.read_text())["results"] == results, (
            "deterministic counters diverged from BENCH_columnar.json — "
            "regenerate with: python benchmarks/bench_columnar.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    args = parser.parse_args(argv)

    times = [
        time_callable(lambda db=db, d=d: run_layout_cell(db, d), repeats=1)
        for d in DELTA_SIZES
        for db in DB_SIZES
    ] + [
        time_callable(lambda b=b: run_smash_cell(b), repeats=1)
        for b in BOUNCE_COUNTS
    ]
    results = collect()
    render(results, times=times)

    failed = [desc for desc, ok in check_shapes(results) if not ok]
    if failed:
        for desc in failed:
            print(f"SHAPE FAILED: {desc}", file=sys.stderr)
        return 1

    payload = {
        "experiment": "CK_columnar_kernel",
        "workload": {
            "db_sizes": DB_SIZES,
            "delta_sizes": DELTA_SIZES,
            "bounce_counts": BOUNCE_COUNTS,
            "smash_db_size": SMASH_DB_SIZE,
            "scenario": "fig4_all_m",
        },
        "results": results,
    }
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != results:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(results, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
