"""Experiment E23 — Example 2.3: hybrid views and key-based construction.

Two claims from the example are regenerated:

1. "The response time to the queries that only refer to r1 and s1 is not
   affected by the fact that r3 and s2 are virtual" — hot-attribute query
   latency under the hybrid annotation matches the fully materialized one.
2. "The key-based construction of T_tmp from R' and T is more efficient
   than the construction from R' and S', because π_{r1,s1}T is materialized
   while S' is fully virtual" — key-based construction answers the
   virtual-attribute query polling one source instead of two.
"""

import pytest

from repro.workloads import figure1_mediator

from _util import report, time_callable
from repro.bench import shape_line

HOT = "project[r1, s1](T)"
COLD = "project[r3, s1](select[r3 < 100](T))"


def measure(example, key_based=True):
    mediator, _ = figure1_mediator(example, seed=41, key_based_enabled=key_based)
    # Counters from exactly one execution of each query...
    mediator.reset_stats()
    mediator.query(HOT)
    hot_polls = mediator.vap.stats.polls
    mediator.reset_stats()
    mediator.query(COLD)
    cold = {
        "polls": mediator.vap.stats.polls,
        "sources": mediator.vap.stats.polled_sources,
        "key_based": mediator.vap.stats.key_based_used > 0,
        "rows": mediator.vap.stats.polled_rows,
    }
    # ...timings from best-of-N.
    hot_time = time_callable(lambda: mediator.query(HOT), repeats=5)
    cold_time = time_callable(lambda: mediator.query(COLD), repeats=5)
    return hot_time, hot_polls, cold_time, cold, mediator


def test_ex23_hybrid_query_profile():
    hot_m, hp_m, cold_m, coldinfo_m, _ = measure("ex21")           # fully materialized
    hot_h, hp_h, cold_h, coldinfo_h, med = measure("ex23")         # hybrid, key-based
    hot_c, hp_c, cold_c, coldinfo_c, _ = measure("ex23", False)    # hybrid, children-based

    rows = [
        ["ex 2.1 all materialized", f"{hot_m*1e3:.3f}", hp_m,
         f"{cold_m*1e3:.3f}", coldinfo_m["sources"], "n/a"],
        ["ex 2.3 hybrid + key-based", f"{hot_h*1e3:.3f}", hp_h,
         f"{cold_h*1e3:.3f}", coldinfo_h["sources"], coldinfo_h["key_based"]],
        ["ex 2.3 hybrid, children-based", f"{hot_c*1e3:.3f}", hp_c,
         f"{cold_c*1e3:.3f}", coldinfo_c["sources"], coldinfo_c["key_based"]],
    ]
    shapes = [
        shape_line(
            "hot-attribute queries are unaffected by virtual attributes (no polls)",
            hp_h == 0 and hot_h < 5 * max(hot_m, 1e-9),
            "0 polls, hot timings comparable",
        ),
        shape_line(
            "key-based construction polls fewer sources than children-based",
            coldinfo_h["sources"] < coldinfo_c["sources"],
            f"{coldinfo_h['sources']} vs {coldinfo_c['sources']} sources",
        ),
        shape_line(
            "virtual-attribute queries cost more than materialized ones",
            cold_h > hot_h,
        ),
    ]
    report(
        "E23_hybrid",
        "E23 (Example 2.3): hybrid T[r1^m,r3^v,s1^m,s2^v] query profile",
        ["configuration", "hot query ms", "hot polls",
         "cold query ms", "cold sources polled", "key-based used"],
        rows,
        shapes=shapes,
        note=f"hot = {HOT}   cold = {COLD}",
    )
    assert hp_h == 0
    assert coldinfo_h["key_based"] and not coldinfo_c["key_based"]
    assert coldinfo_h["sources"] == 1 and coldinfo_c["sources"] == 2


def test_ex23_hot_query_benchmark(benchmark):
    mediator, _ = figure1_mediator("ex23", seed=42)
    benchmark(lambda: mediator.query(HOT))
    assert mediator.vap.stats.polls == 0


def test_ex23_cold_query_key_based_benchmark(benchmark):
    mediator, _ = figure1_mediator("ex23", seed=42)
    benchmark(lambda: mediator.query(COLD))
    assert mediator.vap.stats.key_based_used > 0


def test_ex23_cold_query_children_based_benchmark(benchmark):
    mediator, _ = figure1_mediator("ex23", seed=42, key_based_enabled=False)
    benchmark(lambda: mediator.query(COLD))
    assert mediator.vap.stats.key_based_used == 0
