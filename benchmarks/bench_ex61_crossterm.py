"""Experiment E61 — Example 6.1: the ΔR' ⋈ ΔS' cross-term.

"It would be incorrect to compute ΔT = (R' ⋈ ΔS') ∪ (ΔR' ⋈ S') because
this will 'miss' the contribution of ΔR' ⋈ ΔS'."

This benchmark implements the naive simultaneous-firing scheme alongside
the kernel's process-node discipline and counts the rows the naive scheme
loses when both children change in one transaction.  Expected shape: the
kernel is exact for every batch; the naive scheme diverges exactly when
the cross-term ΔR' ⋈ ΔS' is non-empty.
"""

import random

import pytest

from repro.core.rules import spj_delta
from repro.correctness import recompute
from repro.deltas import BagDelta
from repro.relalg import BagRelation, row
from repro.workloads import figure1_mediator

from _util import report
from repro.bench import shape_line


def naive_delta(definition, deltas, catalog, schemas):
    """The incorrect rule firing: every rule reads PRE-update siblings."""
    total = BagDelta()
    for child, delta in deltas.items():
        contribution = spj_delta(
            definition, "T", child, delta, catalog, schemas[child]
        )
        total = total.smash(contribution)
    return total


def one_batch(seed, joint):
    """Drive one update batch; returns (naive missing rows, kernel exact?).

    ``joint=True`` inserts matching R- and S-rows in the same batch so the
    cross-term is non-empty; ``joint=False`` updates only one side.
    """
    mediator, sources = figure1_mediator("ex21", seed=seed)
    rng = random.Random(seed)
    vdp = mediator.vdp

    key = 77_000 + seed
    join_value = 900 + seed  # a fresh join key: guarantees the cross-term
    sources["db1"].insert("R", r1=key, r2=join_value, r3=rng.randrange(100), r4=100)
    if joint:
        sources["db2"].insert("S", s1=join_value, s2=rng.randrange(100), s3=5)

    # Snapshot the pre-update children repositories for the naive scheme.
    pre = {
        "R_p": mediator.store.repo("R_p").copy(),
        "S_p": mediator.store.repo("S_p").copy(),
    }
    t_before = mediator.store.repo("T").copy()

    # Compute the leaf-parent deltas the same way the kernel would.
    mediator.collect_announcements()
    combined, _ = mediator.queue.flush()
    from repro.core.rules import spj_delta as _spj
    from repro.deltas import set_to_bag

    deltas = {}
    for lp, leaf in (("R_p", "R"), ("S_p", "S")):
        leaf_delta = combined.restrict_to([leaf])
        if not leaf_delta.is_empty():
            deltas[lp] = _spj(
                vdp.node(lp).definition,
                lp,
                leaf,
                set_to_bag(leaf_delta),
                {},
                vdp.node(leaf).schema,
            )
            # re-key the delta to the leaf-parent name
            rekeyed = BagDelta()
            for _, r, n in deltas[lp].entries():
                rekeyed.add(lp, r, n)
            deltas[lp] = rekeyed

    naive = naive_delta(
        vdp.node("T").definition, deltas, pre, {n: vdp.node(n).schema for n in pre}
    )
    naive_t = t_before.copy()
    for r, n in naive.entries_for("T"):
        if n > 0:
            naive_t.insert(r, n)
        elif naive_t.count(r) >= -n:
            naive_t.delete(r, -n)

    # The kernel processes the same queue contents (re-enqueue the flushed
    # announcements; the kernel consumes raw source deltas, not ours).
    mediator.enqueue_update("db1", combined.restrict_to(["R"]))
    if not combined.restrict_to(["S"]).is_empty():
        mediator.enqueue_update("db2", combined.restrict_to(["S"]))
    mediator.run_update_transaction()

    truth = recompute(vdp, sources, "T")
    kernel_exact = mediator.store.repo("T") == truth
    missing = truth.cardinality() - naive_t.cardinality()
    return missing, kernel_exact


def test_ex61_crossterm_table():
    rows = []
    total_missing = 0
    for seed, joint in [(1, True), (2, True), (3, True), (4, False), (5, False)]:
        missing, kernel_exact = one_batch(seed, joint)
        total_missing += missing if joint else 0
        rows.append(
            [
                f"batch {seed}",
                "ΔR and ΔS together" if joint else "ΔR only",
                missing,
                kernel_exact,
            ]
        )
        assert kernel_exact
        if joint:
            assert missing > 0, "cross-term should be missed by the naive scheme"
        else:
            assert missing == 0

    report(
        "E61_crossterm",
        "E61 (Example 6.1): naive simultaneous firing vs the IUP kernel",
        ["batch", "update mix", "rows missed by naive ΔT", "kernel exact"],
        rows,
        shapes=[
            shape_line(
                "naive firing misses ΔR'⋈ΔS' exactly when both children change",
                total_missing > 0,
                f"{total_missing} rows lost across joint batches",
            ),
            shape_line("the process-node discipline is exact in every batch", True),
        ],
    )


def test_ex61_kernel_batch_benchmark(benchmark):
    """Timing a joint-update transaction through the kernel."""
    mediator, sources = figure1_mediator("ex21", seed=61)
    counter = [0]

    def setup():
        k = counter[0]
        counter[0] += 1
        join_value = 5000 + k
        sources["db1"].insert("R", r1=80_000 + k, r2=join_value, r3=1, r4=100)
        sources["db2"].insert("S", s1=join_value, s2=1, s3=5)
        mediator.collect_announcements()
        return (), {}

    benchmark.pedantic(mediator.run_update_transaction, setup=setup, rounds=25)
