"""Experiment FX — fault-injection overhead at 0% / 1% / 5% drop rates.

Runs the Figure 1 environment (ex21, fully materialized) through the same
scripted workload under increasingly lossy channels and measures what the
reliability layer costs: physical transmissions per logical announcement,
retransmissions, duplicate suppressions, and the extra update transactions
the mediator runs.  Convergence to a from-scratch rebuild is asserted at
every rate — losing messages must cost messages, never correctness.

All reported counters are deterministic (fault schedules are pure
functions of the plan seed; the simulator has no wall-clock anywhere), so
``BENCH_faults.json`` at the repo root is an exact regression baseline:
``python benchmarks/bench_fault_overhead.py --check BENCH_faults.json``
recomputes and compares.  Wall time appears in the printed table only.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.core import annotate
from repro.correctness import assert_materialized_correct, assert_view_correct
from repro.faults import ChannelFaults, FaultPlan
from repro.relalg import row
from repro.deltas import SetDelta
from repro.sim import EnvironmentDelays
from repro.runtime import SimulatedEnvironment
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp

try:
    from _util import report, time_callable
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _util import report, time_callable

DROP_RATES = [0.0, 0.01, 0.05]
N_UPDATES = 40
LAST_OP = 20.0
FAULTS_END = 25.0
DRAIN_UNTIL = 80.0
PLAN_SEED = 2024
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def build_env(drop_rate: float) -> SimulatedEnvironment:
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    sources = figure1_sources(r_rows=60, s_rows=30, seed=13)
    delays = EnvironmentDelays.uniform(
        ["db1", "db2"], ann_delay=0.2, comm_delay=0.1, u_hold_delay_med=1.0
    )
    faults = ChannelFaults(drop_rate=drop_rate)
    plan = FaultPlan(
        seed=PLAN_SEED,
        channels={"db1": faults, "db2": faults},
        active_until=FAULTS_END,
    )
    env = SimulatedEnvironment(
        annotated, sources, delays, fault_plan=plan, record_updates=False
    )

    # A deterministic workload: R inserts spread over the faulty window.
    for k in range(N_UPDATES):
        t = 0.5 + (LAST_OP - 0.5) * k / N_UPDATES
        delta = SetDelta()
        delta.insert("R", row(r1=10_000 + k, r2=k % 50, r3=k * 7 % 1000, r4=100))
        env.schedule_transaction(t, "db1", delta)
    return env


def run_rate(drop_rate: float) -> dict:
    env = build_env(drop_rate)
    env.run_until(DRAIN_UNTIL)
    env.mediator.run_update_transaction()
    assert env.drained(), env.fault_stats()
    assert_materialized_correct(env.mediator)
    assert_view_correct(env.mediator)

    stats = env.fault_stats()
    sent = sum(s["sent"] for s in stats.values())
    logical = sum(s["released_in_order"] for s in stats.values())
    return {
        "drop_rate": drop_rate,
        "announcements": logical,
        "physical_sends": sent,
        "dropped": sum(s["dropped"] for s in stats.values()),
        "retransmits": sum(s["retransmits"] for s in stats.values()),
        "dedup_dropped": sum(s["dedup_dropped"] for s in stats.values()),
        "gaps_detected": sum(s["gaps_detected"] for s in stats.values()),
        "update_transactions": env.mediator.iup.stats.transactions
        - env.mediator.iup.stats.empty_transactions,
        "deferred_transactions": env.mediator.iup.stats.deferred_transactions,
        "converged": True,  # the asserts above would have raised otherwise
    }


def collect() -> list:
    return [run_rate(rate) for rate in DROP_RATES]


def render(results, times=None) -> None:
    rows = []
    for i, r in enumerate(results):
        overhead = r["physical_sends"] / max(1, r["announcements"])
        rows.append(
            [
                f"{r['drop_rate']:.0%}",
                r["announcements"],
                r["physical_sends"],
                f"{overhead:.2f}x",
                r["retransmits"],
                r["dedup_dropped"],
                r["update_transactions"],
                f"{times[i] * 1e3:.1f}" if times else "-",
            ]
        )
    from repro.bench import shape_line

    clean, worst = results[0], results[-1]
    report(
        "FX_fault_overhead",
        "FX: reliability-layer overhead vs drop rate (Figure 1 / ex21 workload)",
        [
            "drop",
            "announcements",
            "physical sends",
            "send overhead",
            "retransmits",
            "dedup drops",
            "update txns",
            "wall ms",
        ],
        rows,
        shapes=[
            shape_line(
                "a clean channel pays zero reliability overhead",
                clean["retransmits"] == 0 and clean["physical_sends"] == clean["announcements"],
            ),
            shape_line(
                "losses cost retransmissions, not correctness",
                worst["retransmits"] > 0 and all(r["converged"] for r in results),
            ),
        ],
        note="counters are deterministic; JSON baseline: BENCH_faults.json",
    )


def test_fault_overhead_baseline():
    """Pytest entry point: regenerate the table and pin the shape claims."""
    results = collect()
    render(results)
    assert results[0]["retransmits"] == 0
    assert results[0]["physical_sends"] == results[0]["announcements"]
    assert results[-1]["dropped"] > 0, "5% drop over this workload must lose messages"
    assert results[-1]["retransmits"] >= results[-1]["dropped"]
    assert all(r["converged"] for r in results)
    baseline = DEFAULT_BASELINE
    if baseline.exists():
        assert json.loads(baseline.read_text())["results"] == results, (
            "deterministic counters diverged from BENCH_faults.json — "
            "regenerate with: python benchmarks/bench_fault_overhead.py --write"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="verify deterministic counters against a baseline JSON",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="(re)write the baseline JSON",
    )
    args = parser.parse_args(argv)

    times = [time_callable(lambda r=rate: run_rate(r), repeats=1) for rate in DROP_RATES]
    results = collect()
    render(results, times=times)

    payload = {
        "experiment": "FX_fault_overhead",
        "workload": {
            "updates": N_UPDATES,
            "drop_rates": DROP_RATES,
            "plan_seed": PLAN_SEED,
        },
        "results": results,
    }
    if args.check:
        expected = json.loads(pathlib.Path(args.check).read_text())
        if expected["results"] != results:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            print(json.dumps(results, indent=2), file=sys.stderr)
            return 1
        print(f"baseline {args.check} verified", file=sys.stderr)
        return 0
    path = pathlib.Path(args.write or DEFAULT_BASELINE)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
