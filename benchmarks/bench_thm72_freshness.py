"""Experiment T72 — Theorem 7.2: guaranteed freshness within f̄.

Sweep the environment delay parameters, measure the worst achieved
staleness per source over simulated runs, and compare with the analytic
bound the theorem computes from the same parameters.

Expected shape: measured ≤ bound in every cell, and both grow with the
announcement/holding delays.  The bound's headroom reflects its worst-case
terms (mediator/source processing times are effectively zero in the
simulator's instantaneous transactions).
"""

import random

import pytest

from repro.core import annotate
from repro.correctness import check_freshness, view_function_from_vdp
from repro.deltas import SetDelta
from repro.relalg import row
from repro.runtime import SimulatedEnvironment
from repro.sim import EnvironmentDelays
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp

from _util import report
from repro.bench import shape_line

SWEEP = [
    # (ann_delay, comm_delay, hold)
    (0.2, 0.1, 0.5),
    (0.5, 0.3, 1.0),
    (1.0, 0.5, 2.0),
    (2.0, 1.0, 4.0),
]
HORIZON = 60.0


def run_cell(ann, comm, hold, seed=5):
    delays = EnvironmentDelays.uniform(
        ["db1", "db2"], ann_delay=ann, comm_delay=comm, u_hold_delay_med=hold
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
    sources = figure1_sources(r_rows=25, s_rows=15, seed=seed)
    env = SimulatedEnvironment(annotated, sources, delays)

    rng = random.Random(seed)
    s_keys = sorted(r["s1"] for r in sources["db2"].relation("S").rows() if r["s3"] < 50)
    times = sorted(rng.uniform(0.5, HORIZON - 15) for _ in range(10))
    for k, t in enumerate(times):
        delta = SetDelta()
        delta.insert("R", row(r1=70_000 + k, r2=s_keys[k % len(s_keys)], r3=k, r4=100))
        env.schedule_transaction(t, "db1", delta)
        env.schedule_query(t + rng.uniform(0.1, ann + comm + hold))
    env.run_until(HORIZON)

    view_fn = view_function_from_vdp(env.mediator.vdp)
    bound = delays.freshness_bound(["db1", "db2"], [], [])
    return check_freshness(env.trace, view_fn, bound), bound


def test_thm72_measured_staleness_within_bound():
    rows = []
    previous_measured = -1.0
    monotone = True
    for ann, comm, hold in SWEEP:
        reportee, bound = run_cell(ann, comm, hold)
        measured = reportee.worst["db1"]
        rows.append(
            [
                ann,
                comm,
                hold,
                f"{measured:.2f}",
                f"{bound['db1']:.2f}",
                f"{bound['db1'] - measured:.2f}",
                reportee.within_bound,
            ]
        )
        assert reportee.within_bound, reportee.violations
        if measured < previous_measured:
            monotone = False
        previous_measured = measured

    report(
        "T72_freshness",
        "T72 (Theorem 7.2): measured worst staleness vs the analytic bound (db1)",
        ["ann_delay", "comm_delay", "hold", "measured", "bound f_i", "headroom", "within"],
        rows,
        shapes=[
            shape_line("measured staleness never exceeds the bound", True),
            shape_line("staleness grows with the delay parameters", monotone),
        ],
        note="f_i = ann + comm + u_hold + u_proc + Σ(q_proc_k + comm_k) + q_proc_med",
    )


def test_thm72_hybrid_contributor_bound():
    """The theorem's f_i differs by contributor kind: hybrid contributors
    add the polling round-trip terms.  Run the Example 2.3 configuration
    (both sources hybrid) and verify against the hybrid-kind bound."""
    delays = EnvironmentDelays.uniform(
        ["db1", "db2"],
        ann_delay=0.5,
        comm_delay=0.3,
        q_proc_delay=0.2,
        u_hold_delay_med=1.0,
    )
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex23"])
    sources = figure1_sources(r_rows=25, s_rows=15, seed=9)
    env = SimulatedEnvironment(annotated, sources, delays)

    rng = random.Random(9)
    s_keys = sorted(r["s1"] for r in sources["db2"].relation("S").rows() if r["s3"] < 50)
    for k in range(8):
        t = rng.uniform(0.5, 40.0)
        delta = SetDelta()
        delta.insert("R", row(r1=71_000 + k, r2=s_keys[k % len(s_keys)], r3=k, r4=100))
        env.schedule_transaction(t, "db1", delta)
        env.schedule_query(t + rng.uniform(0.1, 2.0))
    env.run_until(50.0)

    kinds = env.mediator.contributor_kinds
    hybrid = [s for s, k in kinds.items() if k.value == "hybrid-contributor"]
    assert set(hybrid) == {"db1", "db2"}
    bound = delays.freshness_bound([], hybrid, [])
    result = check_freshness(
        env.trace, view_function_from_vdp(env.mediator.vdp), bound
    )
    assert result.within_bound, result.violations
    # The hybrid bound includes the poll round-trip terms, so it strictly
    # dominates the materialized-only bound.
    tight = delays.materialized_only_bound("db1")
    assert bound["db1"] > tight


def test_thm72_cell_benchmark(benchmark):
    result, _ = benchmark.pedantic(lambda: run_cell(0.5, 0.3, 1.0), rounds=3)
    assert result.within_bound
