"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (figure, example, theorem, or
prose claim — see DESIGN.md's experiment index).  Results are printed AND
persisted under ``benchmarks/results/`` so EXPERIMENTS.md tables can be
refreshed from the files after a run.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.bench import render_table, shape_line

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def report(
    experiment: str,
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    shapes: Sequence[str] = (),
    note: Optional[str] = None,
) -> str:
    """Render, print, and persist one experiment's table."""
    text = render_table(title, columns, rows, note=note)
    for line in shapes:
        text += line + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    print("\n" + text, file=sys.stderr)
    return text


def time_callable(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` in seconds (coarse, for table columns;
    the pytest-benchmark fixture provides the precise timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
