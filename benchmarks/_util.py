"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (figure, example, theorem, or
prose claim — see DESIGN.md's experiment index).  Results are printed AND
persisted under ``benchmarks/results/`` so EXPERIMENTS.md tables can be
refreshed from the files after a run.

The persisted copies are meant to be committed, so they must be
reproducible run-to-run: benchmarks draw randomness through
:func:`seeded_rng` (one fixed base seed), and :func:`report` masks
wall-clock columns — deterministic counters are the durable record;
timings vary by machine and are printed to stderr only.
"""

from __future__ import annotations

import pathlib
import random
import re
import sys
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.bench import render_table, shape_line

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: One fixed seed for the whole suite.  Benchmarks derive their RNGs from it
#: (``seeded_rng(offset)``) so the committed ``results/*.txt`` files — and
#: the ``BENCH_*.json`` counter baselines — never churn between runs.
BENCH_SEED = 2063


def seeded_rng(offset: int = 0) -> random.Random:
    """A fresh RNG at the fixed suite-wide seed (plus a per-use offset)."""
    return random.Random(BENCH_SEED + offset)


#: Column names matching this are wall-clock-derived: real values are
#: printed, but the persisted copy shows ``~`` so committed files are
#: stable.  Matches "wall ms", "query ms", "ms/update", "speedup (wall)"…
_VOLATILE_COLUMN = re.compile(r"(^|[^a-z])ms([^a-z]|$)|wall|sec\b", re.IGNORECASE)


def _mask_volatile(
    columns: Sequence[str], rows: Sequence[Sequence[Any]], volatile: Sequence[str]
) -> Optional[List[List[Any]]]:
    masked_idx = {
        i
        for i, col in enumerate(columns)
        if _VOLATILE_COLUMN.search(str(col)) or col in volatile
    }
    if not masked_idx:
        return None
    return [
        [("~" if i in masked_idx else v) for i, v in enumerate(row)] for row in rows
    ]


def report(
    experiment: str,
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    shapes: Sequence[str] = (),
    note: Optional[str] = None,
    volatile: Sequence[str] = (),
) -> str:
    """Render and print one experiment's table; persist a stable copy.

    The printed table carries live values.  In the persisted
    ``results/<experiment>.txt`` every timing column (auto-detected by
    name, plus any listed in ``volatile`` — e.g. ratios *of* timings) is
    masked with ``~`` so the committed file only changes when the
    deterministic counters or shape verdicts do.
    """
    text = render_table(title, columns, rows, note=note)
    for line in shapes:
        text += line + "\n"
    masked_rows = _mask_volatile(columns, rows, volatile)
    if masked_rows is None:
        persisted = text
    else:
        stable_note = (
            (note + "; " if note else "")
            + "~ = wall-clock value, masked in the committed copy (run the "
            + "benchmark for live timings)"
        )
        persisted = render_table(title, columns, masked_rows, note=stable_note)
        for line in shapes:
            persisted += line + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(persisted)
    print("\n" + text, file=sys.stderr)
    return text


def time_callable(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` in seconds (coarse, for table columns;
    the pytest-benchmark fixture provides the precise timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
